//! The discrete-event scheduler.
//!
//! [`Sim<W>`] owns a priority queue of pending events over a user-supplied
//! world type `W`. Events are closures (or [`EventFn`] implementors) that
//! receive `&mut W` and `&mut Sim<W>` so they can mutate the world and
//! schedule further events. Two events scheduled for the same instant fire
//! in the order they were scheduled (stable FIFO tie-break), which keeps
//! runs bit-for-bit reproducible.
//!
//! # Fast path
//!
//! The queue is a slab-backed arena: the binary heap holds compact
//! `(time, key, seq, slot)` keys (32 bytes, `Copy`) while the event
//! payloads live in a slot arena indexed by the key. This buys three
//! things over the classic `BinaryHeap<Entry>` + cancelled-`HashSet`
//! design:
//!
//! - **Cancellation is O(1) and exact** — it flips the slot state; there
//!   is no hash-set probe on every pop and no tombstone that can outlive
//!   the queue and skew [`Sim::pending`].
//! - **Periodic timers re-arm in place** — the boxed closure moves back
//!   into its slot with a fresh sequence number, so steady-state timer
//!   ticks allocate nothing.
//! - **Heap traffic is cache-friendly** — sift operations move small
//!   `Copy` keys instead of fat entries carrying a `Box` each.
//!
//! The slab invariant: every occupied slot has exactly one key in the
//! heap, and a slot is only reclaimed when that key is popped. Handles
//! ([`EventId`]) carry a generation counter so stale ids (already fired,
//! already cancelled, or re-armed since) are rejected instead of
//! corrupting an unrelated event that reused the slot.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;

/// Emits a scheduler trace record when a telemetry session is live and
/// asked for scheduler detail. Disabled cost: one thread-local branch.
#[inline]
fn sched_record(at_ns: u64, kind: edp_telemetry::RecordKind) {
    if !edp_telemetry::on() {
        return;
    }
    edp_telemetry::with(|t| {
        if t.config.scheduler_records {
            t.emit(at_ns, kind);
        }
    });
}

/// Handle to a scheduled event, usable with [`Sim::cancel`].
///
/// Internally packs a slab slot index and a generation counter; a handle
/// goes stale the moment its event fires, is cancelled, or (for periodic
/// timers) re-arms, and stale handles are rejected by [`Sim::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn pack(slot: u32, generation: u32) -> Self {
        EventId((generation as u64) << 32 | slot as u64)
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A schedulable event over world `W`.
///
/// Blanket-implemented for all `FnOnce(&mut W, &mut Sim<W>)`, so most call
/// sites just pass a closure. Implement it manually for events that carry
/// state they want back after firing.
pub trait EventFn<W> {
    /// Consumes the event and applies it to the world.
    fn fire(self: Box<Self>, world: &mut W, sim: &mut Sim<W>);
}

impl<W, F: FnOnce(&mut W, &mut Sim<W>)> EventFn<W> for F {
    fn fire(self: Box<Self>, world: &mut W, sim: &mut Sim<W>) {
        self(world, sim)
    }
}

/// Whether a periodic event should keep firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Periodic {
    /// Re-arm for another period.
    Continue,
    /// Stop; the timer is dropped.
    Stop,
}

/// Ordering key for events that carry no cross-run ordering identity:
/// they sort after every keyed event at the same instant and fall back to
/// scheduling order (`seq`) among themselves. See [`Sim::schedule_keyed_at`].
pub const UNKEYED: u64 = u64::MAX;

/// Horizon class of a scheduled event, for window-driven execution
/// (see `shard::drive_windows` with [`crate::HorizonMode::Effects`]).
///
/// - [`EventClass::Bound`] (the default): firing the event may publish a
///   message toward another shard, so it participates in safe-horizon
///   negotiation.
/// - [`EventClass::Local`]: the scheduler's owner certifies that firing
///   the event — *including every event its cascade schedules* — cannot
///   publish anything cross-shard. Certified-local events are invisible
///   to [`Sim::peek_next_bound`], which is what lets the effects horizon
///   extend a window past runs of them without a rendezvous.
///
/// The class is pure metadata: it never changes firing order. An event
/// wrongly classed `Local` breaks the window invariant, which is why the
/// only producers of `Local` are sites backed by a lint-checked
/// `EffectSummary` certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventClass {
    /// May publish cross-shard; bounds the safe horizon.
    #[default]
    Bound,
    /// Certified local: the whole cascade stays inside the shard.
    Local,
}

/// Compact heap key; the payload lives in the slot arena.
#[derive(Clone, Copy, PartialEq, Eq)]
struct HeapKey {
    time: SimTime,
    /// Same-instant ordering class (see [`Sim::schedule_keyed_at`]);
    /// [`UNKEYED`] for ordinary events.
    key: u64,
    seq: u64,
    slot: u32,
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Earliest time first, then the explicit ordering key (keyed
        // events before unkeyed ones, since UNKEYED == u64::MAX), then
        // lowest sequence number first for FIFO among same-time events
        // (natural min ordering; the heap below is a min-heap, unlike
        // std's max-`BinaryHeap`).
        self.time
            .cmp(&other.time)
            .then_with(|| self.key.cmp(&other.key))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// An 8-ary min-heap of [`HeapKey`]s.
///
/// Versus `std::collections::BinaryHeap` this cuts the tree depth to a
/// third, so a pop on a deep queue takes far fewer dependent cache misses;
/// a node's children are consecutive 32-byte `Copy` keys (two cache
/// lines), which the hardware prefetcher streams while the min-scan
/// runs. Pushes in non-decreasing time order (the overwhelmingly common
/// pattern in a forward-running simulation) stay O(1) as in any sift-up
/// heap.
struct KeyHeap {
    keys: Vec<HeapKey>,
}

impl KeyHeap {
    const ARITY: usize = 4;

    fn new() -> Self {
        KeyHeap { keys: Vec::new() }
    }

    fn peek(&self) -> Option<&HeapKey> {
        self.keys.first()
    }

    fn push(&mut self, key: HeapKey) {
        self.keys.push(key);
        // Sift up with a hole: move parents down until `key` fits.
        let mut i = self.keys.len() - 1;
        while i > 0 {
            let parent = (i - 1) / Self::ARITY;
            if self.keys[parent] <= key {
                break;
            }
            self.keys[i] = self.keys[parent];
            i = parent;
        }
        self.keys[i] = key;
    }

    fn pop(&mut self) -> Option<HeapKey> {
        let top = *self.keys.first()?;
        let last = self.keys.pop().expect("non-empty");
        if self.keys.is_empty() {
            return Some(top);
        }
        // Sift the displaced last key down with a hole: pull the smallest
        // child up until `last` fits.
        let n = self.keys.len();
        let mut i = 0;
        loop {
            let first_child = i * Self::ARITY + 1;
            if first_child >= n {
                break;
            }
            let end = (first_child + Self::ARITY).min(n);
            let mut min_child = first_child;
            for c in first_child + 1..end {
                if self.keys[c] < self.keys[min_child] {
                    min_child = c;
                }
            }
            if self.keys[min_child] >= last {
                break;
            }
            self.keys[i] = self.keys[min_child];
            i = min_child;
        }
        self.keys[i] = last;
        Some(top)
    }
}

type PeriodicFn<W> = dyn FnMut(&mut W, &mut Sim<W>) -> Periodic;

/// A periodic timer's payload: one allocation reused across every re-arm.
struct Repeat<W> {
    period: SimDuration,
    tick: Box<PeriodicFn<W>>,
}

enum SlotState<W> {
    /// Free-list member; `next_free` chains to the next vacant slot.
    Vacant { next_free: u32 },
    /// A one-shot event waiting to fire.
    Once(Box<dyn EventFn<W>>),
    /// A periodic timer waiting for its next tick.
    Repeating(Box<Repeat<W>>),
    /// Cancelled, but its key is still in the heap; the slot is reclaimed
    /// when that key pops. Also the in-flight placeholder while a periodic
    /// tick runs (its key is already popped then, so the uses can't
    /// collide).
    Cancelled,
}

struct Slot<W> {
    /// Bumped every time the slot is freed or re-armed, invalidating any
    /// [`EventId`] handed out for the previous occupant.
    generation: u32,
    /// Horizon class of the current occupant; set on every arm (slots
    /// are reused, so a stale class must never survive a re-arm).
    class: EventClass,
    /// Sequence number of the heap key currently pointing at this slot
    /// (meaningful only while occupied; checks the slab invariant).
    #[cfg(debug_assertions)]
    armed_seq: u64,
    state: SlotState<W>,
}

const NO_FREE: u32 = u32::MAX;

/// A deterministic discrete-event simulator over world type `W`.
///
/// # Example
///
/// ```
/// use edp_evsim::{Sim, SimTime, SimDuration};
///
/// let mut sim = Sim::new();
/// let mut hits: Vec<u64> = Vec::new();
/// sim.schedule_at(SimTime::from_nanos(20), |w: &mut Vec<u64>, _: &mut _| w.push(20));
/// sim.schedule_at(SimTime::from_nanos(10), |w: &mut Vec<u64>, s: &mut Sim<Vec<u64>>| {
///     w.push(10);
///     s.schedule_in(SimDuration::from_nanos(5), |w: &mut Vec<u64>, _: &mut _| w.push(15));
/// });
/// sim.run(&mut hits);
/// assert_eq!(hits, vec![10, 15, 20]);
/// ```
pub struct Sim<W> {
    now: SimTime,
    heap: KeyHeap,
    slots: Vec<Slot<W>>,
    free_head: u32,
    /// Events currently armed (excludes cancelled-but-unpopped slots).
    live: usize,
    next_seq: u64,
    fired: u64,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// Creates an empty simulator at t = 0.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            heap: KeyHeap::new(),
            slots: Vec::new(),
            free_head: NO_FREE,
            live: 0,
            next_seq: 0,
            fired: 0,
        }
    }

    /// Current simulated time. Only advances inside [`Sim::run`] variants.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events currently pending. Exact: cancelled events leave
    /// the count immediately, and stale cancels cannot skew it.
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Grabs a vacant slot (reusing the free list when possible) and arms
    /// it with `state` and `class`. Returns the slot index.
    fn arm_slot(&mut self, seq: u64, class: EventClass, state: SlotState<W>) -> u32 {
        let _ = seq;
        if self.free_head != NO_FREE {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            match slot.state {
                SlotState::Vacant { next_free } => self.free_head = next_free,
                _ => unreachable!("free list points at an occupied slot"),
            }
            slot.state = state;
            slot.class = class;
            #[cfg(debug_assertions)]
            {
                slot.armed_seq = seq;
            }
            idx
        } else {
            let idx = u32::try_from(self.slots.len()).expect("more than u32::MAX live events");
            self.slots.push(Slot {
                generation: 0,
                class,
                #[cfg(debug_assertions)]
                armed_seq: seq,
                state,
            });
            idx
        }
    }

    /// Returns a slot to the free list and invalidates outstanding ids.
    fn free_slot(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        slot.generation = slot.generation.wrapping_add(1);
        slot.state = SlotState::Vacant {
            next_free: self.free_head,
        };
        self.free_head = idx;
    }

    /// Schedules `f` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time: scheduling into the past
    /// is always a logic error and silently reordering it would hide bugs.
    pub fn schedule_at(&mut self, at: SimTime, f: impl EventFn<W> + 'static) -> EventId {
        self.schedule_boxed(at, Box::new(f))
    }

    /// Schedules `f` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, f: impl EventFn<W> + 'static) -> EventId {
        self.schedule_boxed(self.now + delay, Box::new(f))
    }

    /// Schedules an already-boxed event (avoids double boxing for trait
    /// objects built elsewhere).
    pub fn schedule_boxed(&mut self, at: SimTime, f: Box<dyn EventFn<W>>) -> EventId {
        self.schedule_keyed_boxed(at, UNKEYED, f)
    }

    /// Schedules `f` at `at` with an explicit same-instant ordering key.
    ///
    /// Events at the same time fire in ascending `key` order, then in
    /// scheduling order among equal keys. Ordinary events use [`UNKEYED`]
    /// (`u64::MAX`), so keyed events always fire before unkeyed ones at the
    /// same instant. The point of a key is that it can be derived from
    /// *simulation state* (e.g. a wire sequence number) instead of from
    /// scheduling order, making same-instant ordering reproducible across
    /// execution strategies that arm the same events in different orders —
    /// this is what lets a sharded run merge to the exact single-threaded
    /// schedule.
    pub fn schedule_keyed_at(
        &mut self,
        at: SimTime,
        key: u64,
        f: impl EventFn<W> + 'static,
    ) -> EventId {
        self.schedule_keyed_boxed(at, key, Box::new(f))
    }

    /// [`Sim::schedule_keyed_at`] for an already-boxed event.
    pub fn schedule_keyed_boxed(
        &mut self,
        at: SimTime,
        key: u64,
        f: Box<dyn EventFn<W>>,
    ) -> EventId {
        self.schedule_classed_boxed(at, key, EventClass::Bound, f)
    }

    /// Schedules `f` at `at` with an ordering key *and* an explicit
    /// [`EventClass`]. Pass [`UNKEYED`] for events with no same-instant
    /// ordering identity. `Local` is a certificate — see [`EventClass`];
    /// callers without one must stay with the `Bound` default the other
    /// schedule variants apply.
    pub fn schedule_classed_at(
        &mut self,
        at: SimTime,
        key: u64,
        class: EventClass,
        f: impl EventFn<W> + 'static,
    ) -> EventId {
        self.schedule_classed_boxed(at, key, class, Box::new(f))
    }

    /// [`Sim::schedule_classed_at`] for an already-boxed event; the single
    /// funnel every one-shot schedule goes through.
    pub fn schedule_classed_boxed(
        &mut self,
        at: SimTime,
        key: u64,
        class: EventClass,
        f: Box<dyn EventFn<W>>,
    ) -> EventId {
        assert!(
            at >= self.now,
            "scheduled into the past: {} < {}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.arm_slot(seq, class, SlotState::Once(f));
        self.heap.push(HeapKey {
            time: at,
            key,
            seq,
            slot,
        });
        self.live += 1;
        sched_record(
            self.now.as_nanos(),
            edp_telemetry::RecordKind::SchedArm {
                seq,
                due_ns: at.as_nanos(),
            },
        );
        EventId::pack(slot, self.slots[slot as usize].generation)
    }

    /// Schedules `f` to fire every `period`, first at `start`.
    ///
    /// The closure returns [`Periodic::Stop`] to disarm itself. Returns the
    /// id of the *first* firing; cancelling it before it fires disarms the
    /// whole series. Once a tick has fired the id is stale (re-arming bumps
    /// the slot generation), so use `Periodic::Stop` from inside the
    /// closure to stop an armed series.
    ///
    /// Re-arming reuses the timer's slab slot and its boxed closure, so a
    /// steady-state periodic tick performs no allocation at all.
    pub fn schedule_periodic(
        &mut self,
        start: SimTime,
        period: SimDuration,
        f: impl FnMut(&mut W, &mut Sim<W>) -> Periodic + 'static,
    ) -> EventId
    where
        W: 'static,
    {
        assert!(!period.is_zero(), "zero-period timer would loop forever");
        assert!(
            start >= self.now,
            "scheduled into the past: {} < {}",
            start,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.arm_slot(
            seq,
            EventClass::Bound,
            SlotState::Repeating(Box::new(Repeat {
                period,
                tick: Box::new(f),
            })),
        );
        self.heap.push(HeapKey {
            time: start,
            key: UNKEYED,
            seq,
            slot,
        });
        self.live += 1;
        sched_record(
            self.now.as_nanos(),
            edp_telemetry::RecordKind::SchedArm {
                seq,
                due_ns: start.as_nanos(),
            },
        );
        EventId::pack(slot, self.slots[slot as usize].generation)
    }

    /// Cancels a pending event. Returns `false` — with no side effects —
    /// if the id is stale: already fired, already cancelled, re-armed
    /// since, or never issued by this simulator.
    ///
    /// Cancellation is O(1): the slot is flagged and its heap key is
    /// reclaimed lazily when it surfaces.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(slot) = self.slots.get_mut(id.slot() as usize) else {
            return false;
        };
        if slot.generation != id.generation() {
            return false;
        }
        match slot.state {
            SlotState::Once(_) | SlotState::Repeating { .. } => {
                slot.state = SlotState::Cancelled;
                self.live -= 1;
                sched_record(
                    self.now.as_nanos(),
                    edp_telemetry::RecordKind::SchedCancel { handle: id.0 },
                );
                true
            }
            SlotState::Vacant { .. } | SlotState::Cancelled => false,
        }
    }

    /// Fires the single earliest pending event. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        while let Some(key) = self.heap.pop() {
            let slot = &mut self.slots[key.slot as usize];
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                slot.armed_seq, key.seq,
                "heap key does not match its slot (slab invariant broken)"
            );
            // Leave `Cancelled` behind while the payload runs: the key is
            // already popped, so the slot is invisible to the heap, and a
            // (stale-generation) cancel arriving mid-fire stays a no-op.
            match std::mem::replace(&mut slot.state, SlotState::Cancelled) {
                SlotState::Vacant { .. } => {
                    unreachable!("vacant slot had a key in the heap")
                }
                SlotState::Cancelled => {
                    self.free_slot(key.slot);
                    continue;
                }
                SlotState::Once(f) => {
                    // Reclaim before firing so the handler sees an exact
                    // pending() and can immediately reuse the slot.
                    self.free_slot(key.slot);
                    self.live -= 1;
                    debug_assert!(key.time >= self.now);
                    self.now = key.time;
                    self.fired += 1;
                    sched_record(
                        self.now.as_nanos(),
                        edp_telemetry::RecordKind::SchedFire { seq: key.seq },
                    );
                    f.fire(world, self);
                    return true;
                }
                SlotState::Repeating(mut rep) => {
                    self.live -= 1;
                    debug_assert!(key.time >= self.now);
                    self.now = key.time;
                    self.fired += 1;
                    sched_record(
                        self.now.as_nanos(),
                        edp_telemetry::RecordKind::SchedFire { seq: key.seq },
                    );
                    match (rep.tick)(world, self) {
                        Periodic::Continue => {
                            // Re-arm in place: same slot, same box, fresh
                            // seq, bumped generation (stale ids must not
                            // cancel future ticks they never named). The
                            // class is kept: periodic timers only arm as
                            // `Bound` (schedule_periodic) and never
                            // reclassify.
                            let at = self.now + rep.period;
                            let seq = self.next_seq;
                            self.next_seq += 1;
                            let slot = &mut self.slots[key.slot as usize];
                            slot.generation = slot.generation.wrapping_add(1);
                            #[cfg(debug_assertions)]
                            {
                                slot.armed_seq = seq;
                            }
                            slot.state = SlotState::Repeating(rep);
                            self.heap.push(HeapKey {
                                time: at,
                                key: UNKEYED,
                                seq,
                                slot: key.slot,
                            });
                            self.live += 1;
                        }
                        Periodic::Stop => {
                            self.free_slot(key.slot);
                        }
                    }
                    return true;
                }
            }
        }
        false
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Time of the earliest live pending event, reclaiming any cancelled
    /// keys that have surfaced at the heap head on the way. `None` when
    /// nothing is pending.
    pub fn peek_next(&mut self) -> Option<SimTime> {
        loop {
            match self.heap.peek() {
                Some(key)
                    if matches!(self.slots[key.slot as usize].state, SlotState::Cancelled) =>
                {
                    // Reclaim cancelled keys without firing them, so a
                    // cancelled event cannot mask the real next event time.
                    let key = self.heap.pop().expect("peeked");
                    self.free_slot(key.slot);
                }
                Some(key) => break Some(key.time),
                None => break None,
            }
        }
    }

    /// Time of the earliest live pending event classed
    /// [`EventClass::Bound`], ignoring certified-local events. `None` when
    /// every pending event is local (or nothing is pending) — the state
    /// in which a shard no longer constrains the global safe horizon.
    ///
    /// A full scan of the heap's backing vector, not a pop: the effects
    /// horizon calls this once per window barrier, where O(pending) is
    /// noise next to the rendezvous it replaces; the hot firing path is
    /// untouched.
    pub fn peek_next_bound(&self) -> Option<SimTime> {
        self.heap
            .keys
            .iter()
            .filter(|k| {
                let slot = &self.slots[k.slot as usize];
                slot.class == EventClass::Bound && !matches!(slot.state, SlotState::Cancelled)
            })
            .map(|k| k.time)
            .min()
    }

    /// Runs until the queue drains or the next event is strictly after
    /// `deadline`. On return `now() == deadline` if the deadline was reached
    /// (time is advanced even if no event fires exactly then).
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        loop {
            match self.peek_next() {
                Some(t) if t <= deadline => {
                    self.step(world);
                }
                _ => {
                    if self.now < deadline {
                        self.now = deadline;
                    }
                    return;
                }
            }
        }
    }

    /// Fires every pending event strictly before `bound`, then stops.
    ///
    /// Unlike [`Sim::run_until`] the clock is *not* advanced past the last
    /// fired event: `bound` is a safe horizon, not a deadline, and events
    /// arriving from outside (cross-shard mailboxes) may still land exactly
    /// at `bound`. Use [`Sim::fast_forward`] to advance the clock once no
    /// more input can arrive.
    pub fn run_before(&mut self, world: &mut W, bound: SimTime) {
        while let Some(t) = self.peek_next() {
            if t >= bound {
                return;
            }
            self.step(world);
        }
    }

    /// Advances the clock to `t` if it is ahead of `now()`; never moves it
    /// backwards. Mirrors the implicit clock advance at the end of
    /// [`Sim::run_until`] for drivers that fire events in windows.
    pub fn fast_forward(&mut self, t: SimTime) {
        if self.now < t {
            self.now = t;
        }
    }

    /// Runs at most `n` events; returns how many actually fired.
    pub fn run_steps(&mut self, world: &mut W, n: u64) -> u64 {
        let mut fired = 0;
        while fired < n && self.step(world) {
            fired += 1;
        }
        fired
    }

    /// Fires up to `max` events that share the earliest pending timestamp
    /// — a batch dequeue in the `rx_burst` idiom. Returns how many fired.
    ///
    /// The head is re-peeked after every firing rather than popped in one
    /// sweep: a handler may schedule a *new* event at the burst instant
    /// with a smaller ordering key, and that event must fire inside this
    /// burst exactly where a [`Sim::step`] loop would have placed it. The
    /// executed schedule is therefore identical to single-stepping for
    /// every `max`; only the caller's per-event overhead is amortized.
    pub fn run_burst(&mut self, world: &mut W, max: u64) -> u64 {
        let Some(t0) = self.peek_next() else {
            return 0;
        };
        let mut fired = 0;
        while fired < max {
            match self.peek_next() {
                Some(t) if t == t0 => {
                    self.step(world);
                    fired += 1;
                }
                _ => break,
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut out = Vec::new();
        for &t in &[30u64, 10, 20] {
            sim.schedule_at(
                SimTime::from_nanos(t),
                move |w: &mut Vec<u64>, _: &mut _| w.push(t),
            );
        }
        sim.run(&mut out);
        assert_eq!(out, vec![10, 20, 30]);
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn run_burst_fires_only_the_head_timestamp() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut out = Vec::new();
        for &(t, tag) in &[(10u64, 1u64), (10, 2), (10, 3), (20, 4)] {
            sim.schedule_at(
                SimTime::from_nanos(t),
                move |w: &mut Vec<u64>, _: &mut _| w.push(tag),
            );
        }
        assert_eq!(sim.run_burst(&mut out, 64), 3, "burst stops at t=20");
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(sim.run_burst(&mut out, 64), 1);
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(sim.run_burst(&mut out, 64), 0, "empty queue fires none");
    }

    #[test]
    fn run_burst_caps_at_max_and_admits_same_instant_inserts() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut out = Vec::new();
        // The first handler schedules another event at the same instant;
        // the burst must pick it up in scheduling order, like step() would.
        sim.schedule_at(
            SimTime::from_nanos(5),
            |w: &mut Vec<u64>, s: &mut Sim<Vec<u64>>| {
                w.push(1);
                s.schedule_at(SimTime::from_nanos(5), |w: &mut Vec<u64>, _: &mut _| {
                    w.push(3)
                });
            },
        );
        sim.schedule_at(SimTime::from_nanos(5), |w: &mut Vec<u64>, _: &mut _| {
            w.push(2)
        });
        assert_eq!(sim.run_burst(&mut out, 2), 2, "max caps the batch");
        assert_eq!(out, vec![1, 2]);
        assert_eq!(sim.run_burst(&mut out, 8), 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut out = Vec::new();
        for i in 0..100u64 {
            sim.schedule_at(
                SimTime::from_nanos(5),
                move |w: &mut Vec<u64>, _: &mut _| w.push(i),
            );
        }
        sim.run(&mut out);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<u64> = Sim::new();
        let mut count = 0u64;
        sim.schedule_at(SimTime::from_nanos(1), |_w: &mut u64, s: &mut Sim<u64>| {
            s.schedule_in(SimDuration::from_nanos(1), |w: &mut u64, _: &mut _| {
                *w += 1;
            });
        });
        sim.run(&mut count);
        assert_eq!(count, 1);
        assert_eq!(sim.now(), SimTime::from_nanos(2));
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut sim: Sim<u64> = Sim::new();
        let mut count = 0u64;
        let id = sim.schedule_at(SimTime::from_nanos(5), |w: &mut u64, _: &mut _| *w += 1);
        sim.schedule_at(SimTime::from_nanos(6), |w: &mut u64, _: &mut _| *w += 10);
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double cancel reports false");
        sim.run(&mut count);
        assert_eq!(count, 10);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim: Sim<u64> = Sim::new();
        let mut count = 0u64;
        sim.schedule_at(SimTime::from_nanos(10), |w: &mut u64, _: &mut _| *w += 1);
        sim.schedule_at(SimTime::from_nanos(100), |w: &mut u64, _: &mut _| *w += 1);
        sim.run_until(&mut count, SimTime::from_nanos(50));
        assert_eq!(count, 1);
        assert_eq!(sim.now(), SimTime::from_nanos(50));
        assert_eq!(sim.pending(), 1);
        sim.run(&mut count);
        assert_eq!(count, 2);
    }

    #[test]
    fn periodic_fires_until_stopped() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut out = Vec::new();
        sim.schedule_periodic(
            SimTime::from_nanos(10),
            SimDuration::from_nanos(10),
            |w: &mut Vec<u64>, s: &mut Sim<Vec<u64>>| {
                w.push(s.now().as_nanos());
                if w.len() == 4 {
                    Periodic::Stop
                } else {
                    Periodic::Continue
                }
            },
        );
        sim.run(&mut out);
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn cancelling_periodic_before_first_fire_disarms() {
        let mut sim: Sim<u64> = Sim::new();
        let mut count = 0u64;
        let id = sim.schedule_periodic(
            SimTime::from_nanos(10),
            SimDuration::from_nanos(10),
            |w: &mut u64, _s: &mut Sim<u64>| {
                *w += 1;
                Periodic::Continue
            },
        );
        sim.cancel(id);
        sim.run_until(&mut count, SimTime::from_millis(1));
        assert_eq!(count, 0);
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<u64> = Sim::new();
        let mut w = 0u64;
        sim.schedule_at(SimTime::from_nanos(100), |_: &mut u64, s: &mut Sim<u64>| {
            s.schedule_at(SimTime::from_nanos(50), |_: &mut u64, _: &mut _| {});
        });
        sim.run(&mut w);
    }

    #[test]
    fn run_steps_limits() {
        let mut sim: Sim<u64> = Sim::new();
        let mut w = 0u64;
        for i in 0..10u64 {
            sim.schedule_at(SimTime::from_nanos(i), |w: &mut u64, _: &mut _| *w += 1);
        }
        assert_eq!(sim.run_steps(&mut w, 3), 3);
        assert_eq!(w, 3);
        assert_eq!(sim.pending(), 7);
    }

    #[test]
    fn pending_excludes_cancelled() {
        let mut sim: Sim<u64> = Sim::new();
        let a = sim.schedule_at(SimTime::from_nanos(1), |_: &mut u64, _: &mut _| {});
        let _b = sim.schedule_at(SimTime::from_nanos(2), |_: &mut u64, _: &mut _| {});
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
    }

    // --- regression tests for the stale-cancel tombstone leak ---

    #[test]
    fn cancel_after_fire_is_rejected_and_pending_stays_exact() {
        let mut sim: Sim<u64> = Sim::new();
        let mut w = 0u64;
        let id = sim.schedule_at(SimTime::from_nanos(1), |w: &mut u64, _: &mut _| *w += 1);
        sim.schedule_at(SimTime::from_nanos(2), |w: &mut u64, _: &mut _| *w += 1);
        assert!(sim.step(&mut w), "first event fires");
        // In the tombstone design this inserted a permanent tombstone and
        // pending() (heap.len() - cancelled.len()) drifted; now the stale
        // cancel must be rejected outright.
        assert!(!sim.cancel(id), "cancel of a fired event reports false");
        assert_eq!(sim.pending(), 1);
        sim.run(&mut w);
        assert_eq!(w, 2);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn cancel_of_foreign_or_spent_id_is_rejected() {
        let mut sim: Sim<u64> = Sim::new();
        let mut other: Sim<u64> = Sim::new();
        let foreign = other.schedule_at(SimTime::from_nanos(1), |_: &mut u64, _: &mut _| {});
        assert!(!sim.cancel(foreign), "id from another simulator");
        let a = sim.schedule_at(SimTime::from_nanos(1), |_: &mut u64, _: &mut _| {});
        assert!(sim.cancel(a));
        assert!(!sim.cancel(a), "second cancel is a no-op");
        assert_eq!(sim.pending(), 0);
        let mut w = 0u64;
        sim.run(&mut w);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn slot_reuse_does_not_resurrect_stale_ids() {
        let mut sim: Sim<u64> = Sim::new();
        let mut w = 0u64;
        let a = sim.schedule_at(SimTime::from_nanos(1), |_: &mut u64, _: &mut _| {});
        sim.run(&mut w);
        // `a`'s slot is free again; the next schedule reuses it with a new
        // generation. Cancelling the stale id must not touch the new event.
        let b = sim.schedule_at(SimTime::from_nanos(10), |w: &mut u64, _: &mut _| *w += 1);
        assert!(!sim.cancel(a), "stale id must not cancel the reused slot");
        assert_eq!(sim.pending(), 1);
        sim.run(&mut w);
        assert_eq!(w, 1, "event b still fired");
        assert!(!sim.cancel(b), "b is spent after firing");
    }

    #[test]
    fn cancelled_id_stays_stale_after_slot_reuse() {
        let mut sim: Sim<u64> = Sim::new();
        let a = sim.schedule_at(SimTime::from_nanos(5), |_: &mut u64, _: &mut _| {});
        assert!(sim.cancel(a));
        // Drain the cancelled key so the slot is actually reclaimed.
        let mut w = 0u64;
        sim.run(&mut w);
        let _b = sim.schedule_at(SimTime::from_nanos(6), |_: &mut u64, _: &mut _| {});
        assert!(!sim.cancel(a), "generation bump invalidates the old id");
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn periodic_rearm_invalidates_first_id() {
        let mut sim: Sim<u64> = Sim::new();
        let mut w = 0u64;
        let id = sim.schedule_periodic(
            SimTime::from_nanos(10),
            SimDuration::from_nanos(10),
            |w: &mut u64, _: &mut Sim<u64>| {
                *w += 1;
                Periodic::Continue
            },
        );
        sim.run_until(&mut w, SimTime::from_nanos(35));
        assert_eq!(w, 3);
        // The series re-armed; the first-firing id no longer names it.
        assert!(!sim.cancel(id), "id of a fired tick is stale");
        assert_eq!(sim.pending(), 1, "series is still armed");
        sim.run_until(&mut w, SimTime::from_nanos(45));
        assert_eq!(w, 4, "series keeps firing after the stale cancel");
    }

    #[test]
    fn run_until_reclaims_cancelled_heads() {
        let mut sim: Sim<u64> = Sim::new();
        let mut w = 0u64;
        let a = sim.schedule_at(SimTime::from_nanos(100), |w: &mut u64, _: &mut _| *w += 1);
        sim.cancel(a);
        // The only key is cancelled and beyond the deadline: run_until must
        // still advance the clock and reclaim it.
        sim.run_until(&mut w, SimTime::from_nanos(50));
        assert_eq!(sim.now(), SimTime::from_nanos(50));
        assert_eq!(w, 0);
        sim.run(&mut w);
        assert_eq!(w, 0);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn scheduler_telemetry_records_arm_fire_cancel() {
        use edp_telemetry::RecordKind;
        edp_telemetry::enable(edp_telemetry::TelemetryConfig::default());
        let mut sim: Sim<u64> = Sim::new();
        let mut w = 0u64;
        sim.schedule_at(SimTime::from_nanos(5), |w: &mut u64, _: &mut _| *w += 1);
        let b = sim.schedule_at(SimTime::from_nanos(9), |_: &mut u64, _: &mut _| {});
        sim.cancel(b);
        sim.run(&mut w);
        let t = edp_telemetry::disable().expect("session");
        let kinds: Vec<RecordKind> = t.ring.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                RecordKind::SchedArm { seq: 0, due_ns: 5 },
                RecordKind::SchedArm { seq: 1, due_ns: 9 },
                RecordKind::SchedCancel { handle: b.0 },
                RecordKind::SchedFire { seq: 0 },
            ]
        );
        assert_eq!(w, 1);
    }

    #[test]
    fn scheduler_telemetry_disabled_by_config() {
        edp_telemetry::enable(edp_telemetry::TelemetryConfig {
            scheduler_records: false,
            ..edp_telemetry::TelemetryConfig::default()
        });
        let mut sim: Sim<u64> = Sim::new();
        let mut w = 0u64;
        sim.schedule_at(SimTime::from_nanos(5), |w: &mut u64, _: &mut _| *w += 1);
        sim.run(&mut w);
        let t = edp_telemetry::disable().expect("session");
        assert!(t.ring.is_empty(), "config gate must suppress sched records");
    }

    #[test]
    fn handler_can_reuse_slot_mid_fire() {
        // The firing slot is reclaimed before the handler runs, so a
        // schedule from inside the handler may land in the same slot; its
        // id must be valid and cancellable.
        let mut sim: Sim<Vec<EventId>> = Sim::new();
        let mut ids: Vec<EventId> = Vec::new();
        sim.schedule_at(
            SimTime::from_nanos(1),
            |ids: &mut Vec<EventId>, s: &mut Sim<Vec<EventId>>| {
                let id = s.schedule_in(
                    SimDuration::from_nanos(1),
                    |_: &mut Vec<EventId>, _: &mut _| panic!("must be cancelled"),
                );
                ids.push(id);
            },
        );
        assert!(sim.step(&mut ids));
        assert!(sim.cancel(ids[0]), "fresh id from reused slot is live");
        sim.run(&mut ids);
    }

    // --- keyed ordering + window-execution APIs (sharded engine) ---

    #[test]
    fn keyed_events_order_by_key_then_seq_at_same_instant() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut out = Vec::new();
        let t = SimTime::from_nanos(5);
        // Armed out of key order; an unkeyed event armed first must still
        // fire last at the same instant.
        sim.schedule_at(t, |w: &mut Vec<u64>, _: &mut _| w.push(999));
        sim.schedule_keyed_at(t, 7, |w: &mut Vec<u64>, _: &mut _| w.push(7));
        sim.schedule_keyed_at(t, 3, |w: &mut Vec<u64>, _: &mut _| w.push(3));
        sim.schedule_keyed_at(t, 7, |w: &mut Vec<u64>, _: &mut _| w.push(70));
        sim.run(&mut out);
        assert_eq!(out, vec![3, 7, 70, 999]);
    }

    #[test]
    fn keyed_order_is_independent_of_arm_order() {
        let fire = |arm: &[u64]| {
            let mut sim: Sim<Vec<u64>> = Sim::new();
            let mut out = Vec::new();
            for &k in arm {
                sim.schedule_keyed_at(
                    SimTime::from_nanos(1),
                    k,
                    move |w: &mut Vec<u64>, _: &mut _| w.push(k),
                );
            }
            sim.run(&mut out);
            out
        };
        assert_eq!(fire(&[2, 0, 1]), fire(&[0, 1, 2]));
        assert_eq!(fire(&[2, 0, 1]), vec![0, 1, 2]);
    }

    #[test]
    fn time_still_dominates_keys() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut out = Vec::new();
        sim.schedule_keyed_at(SimTime::from_nanos(2), 0, |w: &mut Vec<u64>, _: &mut _| {
            w.push(2)
        });
        sim.schedule_keyed_at(SimTime::from_nanos(1), 9, |w: &mut Vec<u64>, _: &mut _| {
            w.push(1)
        });
        sim.run(&mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn run_before_is_exclusive_and_keeps_clock() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut out = Vec::new();
        sim.schedule_at(SimTime::from_nanos(10), |w: &mut Vec<u64>, _: &mut _| {
            w.push(10)
        });
        sim.schedule_at(SimTime::from_nanos(20), |w: &mut Vec<u64>, _: &mut _| {
            w.push(20)
        });
        sim.run_before(&mut out, SimTime::from_nanos(20));
        assert_eq!(out, vec![10], "event exactly at the bound must not fire");
        assert_eq!(
            sim.now(),
            SimTime::from_nanos(10),
            "clock stays at last fired event"
        );
        // An external message may now land exactly at the bound.
        sim.schedule_at(SimTime::from_nanos(20), |w: &mut Vec<u64>, _: &mut _| {
            w.push(21)
        });
        sim.run(&mut out);
        assert_eq!(out, vec![10, 20, 21]);
    }

    #[test]
    fn peek_next_bound_ignores_local_events_but_fires_them_in_order() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut out = Vec::new();
        sim.schedule_classed_at(
            SimTime::from_nanos(5),
            UNKEYED,
            EventClass::Local,
            |w: &mut Vec<u64>, _: &mut _| w.push(5),
        );
        sim.schedule_at(SimTime::from_nanos(9), |w: &mut Vec<u64>, _: &mut _| {
            w.push(9)
        });
        // The local event is earlier, but only the bound one constrains
        // the horizon — and the class never changes firing order.
        assert_eq!(sim.peek_next(), Some(SimTime::from_nanos(5)));
        assert_eq!(sim.peek_next_bound(), Some(SimTime::from_nanos(9)));
        sim.run(&mut out);
        assert_eq!(out, vec![5, 9]);
    }

    #[test]
    fn peek_next_bound_skips_cancelled_and_reused_slots_honestly() {
        let mut sim: Sim<u64> = Sim::new();
        let a = sim.schedule_at(SimTime::from_nanos(3), |_: &mut u64, _: &mut _| {});
        sim.cancel(a);
        assert_eq!(sim.peek_next_bound(), None, "cancelled bound event");
        // Drain so the slot is reclaimed, then reuse it for a local event:
        // the stale Bound class must not leak through.
        let mut w = 0u64;
        sim.run(&mut w);
        sim.schedule_classed_at(
            SimTime::from_nanos(7),
            UNKEYED,
            EventClass::Local,
            |_: &mut u64, _: &mut _| {},
        );
        assert_eq!(sim.peek_next_bound(), None, "reused slot re-classed local");
        assert_eq!(sim.peek_next(), Some(SimTime::from_nanos(7)));
    }

    #[test]
    fn peek_next_skips_cancelled_and_fast_forward_is_monotone() {
        let mut sim: Sim<u64> = Sim::new();
        assert_eq!(sim.peek_next(), None);
        let a = sim.schedule_at(SimTime::from_nanos(5), |_: &mut u64, _: &mut _| {});
        sim.schedule_at(SimTime::from_nanos(9), |_: &mut u64, _: &mut _| {});
        assert_eq!(sim.peek_next(), Some(SimTime::from_nanos(5)));
        sim.cancel(a);
        assert_eq!(sim.peek_next(), Some(SimTime::from_nanos(9)));
        sim.fast_forward(SimTime::from_nanos(7));
        assert_eq!(sim.now(), SimTime::from_nanos(7));
        sim.fast_forward(SimTime::from_nanos(3));
        assert_eq!(sim.now(), SimTime::from_nanos(7), "never moves backwards");
    }
}
