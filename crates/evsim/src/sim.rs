//! The discrete-event scheduler.
//!
//! [`Sim<W>`] owns a priority queue of pending events over a user-supplied
//! world type `W`. Events are closures (or [`EventFn`] implementors) that
//! receive `&mut W` and `&mut Sim<W>` so they can mutate the world and
//! schedule further events. Two events scheduled for the same instant fire
//! in the order they were scheduled (stable FIFO tie-break), which keeps
//! runs bit-for-bit reproducible.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, usable with [`Sim::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// A schedulable event over world `W`.
///
/// Blanket-implemented for all `FnOnce(&mut W, &mut Sim<W>)`, so most call
/// sites just pass a closure. Implement it manually for self-rescheduling
/// events (see [`Sim::schedule_periodic`] for the canonical example).
pub trait EventFn<W> {
    /// Consumes the event and applies it to the world.
    fn fire(self: Box<Self>, world: &mut W, sim: &mut Sim<W>);
}

impl<W, F: FnOnce(&mut W, &mut Sim<W>)> EventFn<W> for F {
    fn fire(self: Box<Self>, world: &mut W, sim: &mut Sim<W>) {
        self(world, sim)
    }
}

/// Whether a periodic event should keep firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Periodic {
    /// Re-arm for another period.
    Continue,
    /// Stop; the timer is dropped.
    Stop,
}

struct Entry<W> {
    time: SimTime,
    seq: u64,
    id: EventId,
    f: Box<dyn EventFn<W>>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, then lowest
        // sequence number first for FIFO among same-time events.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulator over world type `W`.
///
/// # Example
///
/// ```
/// use edp_evsim::{Sim, SimTime, SimDuration};
///
/// let mut sim = Sim::new();
/// let mut hits: Vec<u64> = Vec::new();
/// sim.schedule_at(SimTime::from_nanos(20), |w: &mut Vec<u64>, _: &mut _| w.push(20));
/// sim.schedule_at(SimTime::from_nanos(10), |w: &mut Vec<u64>, s: &mut Sim<Vec<u64>>| {
///     w.push(10);
///     s.schedule_in(SimDuration::from_nanos(5), |w: &mut Vec<u64>, _: &mut _| w.push(15));
/// });
/// sim.run(&mut hits);
/// assert_eq!(hits, vec![10, 15, 20]);
/// ```
pub struct Sim<W> {
    now: SimTime,
    heap: BinaryHeap<Entry<W>>,
    next_seq: u64,
    cancelled: HashSet<EventId>,
    fired: u64,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// Creates an empty simulator at t = 0.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            fired: 0,
        }
    }

    /// Current simulated time. Only advances inside [`Sim::run`] variants.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events currently pending (including cancelled tombstones).
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Schedules `f` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time: scheduling into the past
    /// is always a logic error and silently reordering it would hide bugs.
    pub fn schedule_at(&mut self, at: SimTime, f: impl EventFn<W> + 'static) -> EventId {
        self.schedule_boxed(at, Box::new(f))
    }

    /// Schedules `f` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, f: impl EventFn<W> + 'static) -> EventId {
        self.schedule_boxed(self.now + delay, Box::new(f))
    }

    /// Schedules an already-boxed event (avoids double boxing for trait
    /// objects that are re-armed, e.g. periodic timers).
    pub fn schedule_boxed(&mut self, at: SimTime, f: Box<dyn EventFn<W>>) -> EventId {
        assert!(
            at >= self.now,
            "scheduled into the past: {} < {}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(Entry {
            time: at,
            seq,
            id,
            f,
        });
        id
    }

    /// Schedules `f` to fire every `period`, first at `start`.
    ///
    /// The closure returns [`Periodic::Stop`] to disarm itself. Returns the
    /// id of the *first* firing; cancelling it before it fires disarms the
    /// whole series (later firings get fresh ids and self-reschedule, so use
    /// `Periodic::Stop` from inside the closure to stop an armed series).
    pub fn schedule_periodic(
        &mut self,
        start: SimTime,
        period: SimDuration,
        f: impl FnMut(&mut W, &mut Sim<W>) -> Periodic + 'static,
    ) -> EventId
    where
        W: 'static,
    {
        assert!(!period.is_zero(), "zero-period timer would loop forever");
        struct Tick<W, F> {
            period: SimDuration,
            f: F,
            _w: std::marker::PhantomData<fn(&mut W)>,
        }
        impl<W: 'static, F: FnMut(&mut W, &mut Sim<W>) -> Periodic + 'static> EventFn<W>
            for Tick<W, F>
        {
            fn fire(mut self: Box<Self>, world: &mut W, sim: &mut Sim<W>) {
                if (self.f)(world, sim) == Periodic::Continue {
                    let at = sim.now() + self.period;
                    sim.schedule_boxed(at, self);
                }
            }
        }
        self.schedule_boxed(
            start,
            Box::new(Tick {
                period,
                f,
                _w: std::marker::PhantomData,
            }),
        )
    }

    /// Cancels a pending event. Returns `false` if it already fired or was
    /// already cancelled. Cancellation is lazy (tombstoned) and O(1).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // An id that already fired is not in the heap; inserting a tombstone
        // for it would leak, so track live ids via the heap scan only when
        // firing. We accept a tombstone here and clean it on pop or never
        // (bounded by one entry per cancel call).
        self.cancelled.insert(id)
    }

    /// Fires the single earliest pending event. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.time >= self.now);
            self.now = entry.time;
            self.fired += 1;
            entry.f.fire(world, self);
            return true;
        }
        false
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Runs until the queue drains or the next event is strictly after
    /// `deadline`. On return `now() == deadline` if the deadline was reached
    /// (time is advanced even if no event fires exactly then).
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        loop {
            // Skip tombstoned entries without firing them.
            let next = loop {
                match self.heap.peek() {
                    Some(e) if self.cancelled.contains(&e.id) => {
                        let e = self.heap.pop().expect("peeked");
                        self.cancelled.remove(&e.id);
                    }
                    Some(e) => break Some(e.time),
                    None => break None,
                }
            };
            match next {
                Some(t) if t <= deadline => {
                    self.step(world);
                }
                _ => {
                    if self.now < deadline {
                        self.now = deadline;
                    }
                    return;
                }
            }
        }
    }

    /// Runs at most `n` events; returns how many actually fired.
    pub fn run_steps(&mut self, world: &mut W, n: u64) -> u64 {
        let mut fired = 0;
        while fired < n && self.step(world) {
            fired += 1;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut out = Vec::new();
        for &t in &[30u64, 10, 20] {
            sim.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, _: &mut _| {
                w.push(t)
            });
        }
        sim.run(&mut out);
        assert_eq!(out, vec![10, 20, 30]);
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut out = Vec::new();
        for i in 0..100u64 {
            sim.schedule_at(SimTime::from_nanos(5), move |w: &mut Vec<u64>, _: &mut _| {
                w.push(i)
            });
        }
        sim.run(&mut out);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<u64> = Sim::new();
        let mut count = 0u64;
        sim.schedule_at(SimTime::from_nanos(1), |_w: &mut u64, s: &mut Sim<u64>| {
            s.schedule_in(SimDuration::from_nanos(1), |w: &mut u64, _: &mut _| {
                *w += 1;
            });
        });
        sim.run(&mut count);
        assert_eq!(count, 1);
        assert_eq!(sim.now(), SimTime::from_nanos(2));
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut sim: Sim<u64> = Sim::new();
        let mut count = 0u64;
        let id = sim.schedule_at(SimTime::from_nanos(5), |w: &mut u64, _: &mut _| *w += 1);
        sim.schedule_at(SimTime::from_nanos(6), |w: &mut u64, _: &mut _| *w += 10);
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double cancel reports false");
        sim.run(&mut count);
        assert_eq!(count, 10);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim: Sim<u64> = Sim::new();
        let mut count = 0u64;
        sim.schedule_at(SimTime::from_nanos(10), |w: &mut u64, _: &mut _| *w += 1);
        sim.schedule_at(SimTime::from_nanos(100), |w: &mut u64, _: &mut _| *w += 1);
        sim.run_until(&mut count, SimTime::from_nanos(50));
        assert_eq!(count, 1);
        assert_eq!(sim.now(), SimTime::from_nanos(50));
        assert_eq!(sim.pending(), 1);
        sim.run(&mut count);
        assert_eq!(count, 2);
    }

    #[test]
    fn periodic_fires_until_stopped() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut out = Vec::new();
        sim.schedule_periodic(
            SimTime::from_nanos(10),
            SimDuration::from_nanos(10),
            |w: &mut Vec<u64>, s: &mut Sim<Vec<u64>>| {
                w.push(s.now().as_nanos());
                if w.len() == 4 {
                    Periodic::Stop
                } else {
                    Periodic::Continue
                }
            },
        );
        sim.run(&mut out);
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn cancelling_periodic_before_first_fire_disarms() {
        let mut sim: Sim<u64> = Sim::new();
        let mut count = 0u64;
        let id = sim.schedule_periodic(
            SimTime::from_nanos(10),
            SimDuration::from_nanos(10),
            |w: &mut u64, _s: &mut Sim<u64>| {
                *w += 1;
                Periodic::Continue
            },
        );
        sim.cancel(id);
        sim.run_until(&mut count, SimTime::from_millis(1));
        assert_eq!(count, 0);
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<u64> = Sim::new();
        let mut w = 0u64;
        sim.schedule_at(SimTime::from_nanos(100), |_: &mut u64, s: &mut Sim<u64>| {
            s.schedule_at(SimTime::from_nanos(50), |_: &mut u64, _: &mut _| {});
        });
        sim.run(&mut w);
    }

    #[test]
    fn run_steps_limits() {
        let mut sim: Sim<u64> = Sim::new();
        let mut w = 0u64;
        for i in 0..10u64 {
            sim.schedule_at(SimTime::from_nanos(i), |w: &mut u64, _: &mut _| *w += 1);
        }
        assert_eq!(sim.run_steps(&mut w, 3), 3);
        assert_eq!(w, 3);
        assert_eq!(sim.pending(), 7);
    }

    #[test]
    fn pending_excludes_cancelled() {
        let mut sim: Sim<u64> = Sim::new();
        let a = sim.schedule_at(SimTime::from_nanos(1), |_: &mut u64, _: &mut _| {});
        let _b = sim.schedule_at(SimTime::from_nanos(2), |_: &mut u64, _: &mut _| {});
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
    }
}
