//! Parallel parameter sweeps.
//!
//! Individual simulations are single-threaded and deterministic; experiment
//! harnesses, however, sweep parameters (pipeline speedup factors, load
//! levels, probe periods). [`sweep`] fans the points out over a fixed-size
//! thread pool with crossbeam's scoped threads and returns results in input
//! order, so a parallel sweep is byte-identical to a sequential one.

use parking_lot::Mutex;

/// Runs `f` once per input point across `threads` worker threads.
///
/// Results come back in the order of `points`, independent of scheduling.
/// `f` must be `Sync` (it is shared by reference across workers); per-run
/// state, including RNG seeds, should be derived from the point itself.
pub fn sweep<P, R, F>(points: Vec<P>, threads: usize, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let threads = threads.max(1);
    let n = points.len();
    let work: Mutex<std::vec::IntoIter<(usize, P)>> =
        Mutex::new(points.into_iter().enumerate().collect::<Vec<_>>().into_iter());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|_| loop {
                let item = work.lock().next();
                match item {
                    Some((idx, p)) => {
                        let r = f(p);
                        *slots[idx].lock() = Some(r);
                    }
                    None => break,
                }
            });
        }
    })
    .expect("sweep worker panicked");

    slots
        .into_iter()
        .map(|s| s.into_inner().expect("sweep slot unfilled"))
        .collect()
}

/// A sensible default worker count: available parallelism capped at 8
/// (simulation sweeps are memory-bandwidth-bound beyond that).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let points: Vec<u64> = (0..64).collect();
        let out = sweep(points.clone(), 4, |p| p * 2);
        assert_eq!(out, points.iter().map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_multi() {
        let points: Vec<u64> = (0..32).collect();
        let a = sweep(points.clone(), 1, |p| p * p + 1);
        let b = sweep(points, 7, |p| p * p + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = sweep(Vec::<u64>::new(), 4, |p| p);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_points() {
        let out = sweep(vec![1u32, 2], 16, |p| p + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
