//! Parallel parameter sweeps.
//!
//! Individual simulations are single-threaded and deterministic; experiment
//! harnesses, however, sweep parameters (pipeline speedup factors, load
//! levels, probe periods). [`sweep`] fans the points out over a fixed-size
//! pool of scoped threads and returns results in input order, so a parallel
//! sweep is byte-identical to a sequential one.
//!
//! Work distribution is a single shared atomic cursor over the input slice:
//! each worker claims the next index with `fetch_add`, so there is no lock
//! to contend on the hot path and no allocation per claim.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A worker panic captured by [`sweep`]: the offending point index plus
/// the original payload, so the failure can be re-raised with context.
struct SweepPanic {
    point: usize,
    payload: Box<dyn std::any::Any + Send>,
}

/// Runs `f` once per input point across `threads` worker threads.
///
/// Results come back in the order of `points`, independent of scheduling.
/// `f` must be `Sync` (it is shared by reference across workers); per-run
/// state, including RNG seeds, should be derived from the point itself.
///
/// # Panics
///
/// If `f` panics for some point, the sweep stops handing out new work,
/// waits for in-flight points, and re-raises the *first* (lowest-index)
/// captured panic with the offending point index prepended to string
/// payloads — instead of the opaque poisoned-mutex abort this used to
/// produce.
pub fn sweep<P, R, F>(points: Vec<P>, threads: usize, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let threads = threads.max(1);
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    // Points move into per-slot cells so workers can take ownership of a
    // claimed point; each cell is touched exactly once, so the per-slot
    // mutexes are uncontended by construction.
    let work: Vec<Mutex<Option<P>>> = points.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let panics: Mutex<Vec<SweepPanic>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let p = match work[idx].lock() {
                    Ok(mut cell) => cell.take().expect("sweep point claimed twice"),
                    // Another worker panicked while holding this cell;
                    // its own capture carries the real payload.
                    Err(_) => break,
                };
                // Capture the panic instead of letting it poison the slot
                // mutexes: the payload (with its point index) is what the
                // caller needs, not a "sweep point poisoned" abort.
                match std::panic::catch_unwind(AssertUnwindSafe(|| f(p))) {
                    Ok(r) => {
                        if let Ok(mut slot) = slots[idx].lock() {
                            *slot = Some(r);
                        }
                    }
                    Err(payload) => {
                        failed.store(true, Ordering::Relaxed);
                        if let Ok(mut ps) = panics.lock() {
                            ps.push(SweepPanic {
                                point: idx,
                                payload,
                            });
                        }
                    }
                }
            });
        }
    });

    let mut captured = panics.into_inner().unwrap_or_default();
    if !captured.is_empty() {
        captured.sort_by_key(|p| p.point);
        let SweepPanic { point, payload } = captured.remove(0);
        // Re-raise with the point index attached when the payload is a
        // plain message; otherwise resume the original payload untouched
        // (typed payloads may be downcast by the caller).
        if let Some(msg) = payload.downcast_ref::<&str>() {
            panic!("sweep point {point} panicked: {msg}");
        }
        if let Some(msg) = payload.downcast_ref::<String>() {
            panic!("sweep point {point} panicked: {msg}");
        }
        eprintln!("sweep point {point} panicked (non-string payload)");
        std::panic::resume_unwind(payload);
    }

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("sweep slot poisoned")
                .expect("sweep slot unfilled: worker exited without a result")
        })
        .collect()
}

/// A sensible default worker count: available parallelism capped at 8
/// (simulation sweeps are memory-bandwidth-bound beyond that). The cap can
/// be overridden with the `EDP_SWEEP_THREADS` environment variable, e.g.
/// to pin CI boxes to a single worker or to use a bigger machine fully.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("EDP_SWEEP_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let points: Vec<u64> = (0..64).collect();
        let out = sweep(points.clone(), 4, |p| p * 2);
        assert_eq!(out, points.iter().map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_multi() {
        let points: Vec<u64> = (0..32).collect();
        let a = sweep(points.clone(), 1, |p| p * p + 1);
        let b = sweep(points, 7, |p| p * p + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = sweep(Vec::<u64>::new(), 4, |p| p);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_points() {
        let out = sweep(vec![1u32, 2], 16, |p| p + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn worker_panic_carries_point_index_and_payload() {
        let err = std::panic::catch_unwind(|| {
            sweep(vec![0u64, 1, 2, 3], 2, |p| {
                if p == 2 {
                    panic!("boom at load {p}");
                }
                p
            })
        })
        .expect_err("sweep must propagate the worker panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload");
        assert!(
            msg.contains("sweep point 2") && msg.contains("boom at load 2"),
            "panic message must name the point and original payload, got: {msg}"
        );
    }

    #[test]
    fn panic_on_every_point_reports_lowest_index() {
        let err = std::panic::catch_unwind(|| {
            sweep(vec![0u64, 1, 2, 3], 1, |p: u64| -> u64 { panic!("p{p}") })
        })
        .expect_err("sweep must propagate");
        let msg = err.downcast_ref::<String>().cloned().expect("string");
        assert!(msg.contains("sweep point 0"), "got: {msg}");
    }

    #[test]
    fn env_var_overrides_default_threads() {
        // Serialized against other env readers by Rust's test harness only
        // per-process; keep the touched variable unique to this test.
        std::env::set_var("EDP_SWEEP_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("EDP_SWEEP_THREADS", "0");
        assert_eq!(default_threads(), 1, "zero clamps to one worker");
        std::env::remove_var("EDP_SWEEP_THREADS");
        assert!(default_threads() >= 1);
    }
}
