//! Parallel parameter sweeps.
//!
//! Individual simulations are single-threaded and deterministic; experiment
//! harnesses, however, sweep parameters (pipeline speedup factors, load
//! levels, probe periods). [`sweep`] fans the points out over a fixed-size
//! pool of scoped threads and returns results in input order, so a parallel
//! sweep is byte-identical to a sequential one.
//!
//! Work distribution is a single shared atomic cursor over the input slice:
//! each worker claims the next index with `fetch_add`, so there is no lock
//! to contend on the hot path and no allocation per claim.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` once per input point across `threads` worker threads.
///
/// Results come back in the order of `points`, independent of scheduling.
/// `f` must be `Sync` (it is shared by reference across workers); per-run
/// state, including RNG seeds, should be derived from the point itself.
pub fn sweep<P, R, F>(points: Vec<P>, threads: usize, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let threads = threads.max(1);
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    // Points move into per-slot cells so workers can take ownership of a
    // claimed point; each cell is touched exactly once, so the per-slot
    // mutexes are uncontended by construction.
    let work: Vec<Mutex<Option<P>>> = points.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let p = work[idx]
                    .lock()
                    .expect("sweep point poisoned")
                    .take()
                    .expect("sweep point claimed twice");
                let r = f(p);
                *slots[idx].lock().expect("sweep slot poisoned") = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("sweep slot poisoned")
                .expect("sweep slot unfilled")
        })
        .collect()
}

/// A sensible default worker count: available parallelism capped at 8
/// (simulation sweeps are memory-bandwidth-bound beyond that). The cap can
/// be overridden with the `EDP_SWEEP_THREADS` environment variable, e.g.
/// to pin CI boxes to a single worker or to use a bigger machine fully.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("EDP_SWEEP_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let points: Vec<u64> = (0..64).collect();
        let out = sweep(points.clone(), 4, |p| p * 2);
        assert_eq!(out, points.iter().map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_multi() {
        let points: Vec<u64> = (0..32).collect();
        let a = sweep(points.clone(), 1, |p| p * p + 1);
        let b = sweep(points, 7, |p| p * p + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = sweep(Vec::<u64>::new(), 4, |p| p);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_points() {
        let out = sweep(vec![1u32, 2], 16, |p| p + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn env_var_overrides_default_threads() {
        // Serialized against other env readers by Rust's test harness only
        // per-process; keep the touched variable unique to this test.
        std::env::set_var("EDP_SWEEP_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("EDP_SWEEP_THREADS", "0");
        assert_eq!(default_threads(), 1, "zero clamps to one worker");
        std::env::remove_var("EDP_SWEEP_THREADS");
        assert!(default_threads() >= 1);
    }
}
