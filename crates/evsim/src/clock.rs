//! Clock-domain conversion between cycles and simulated time.
//!
//! The SUME Event Switch datapath in `edp-core` is modelled at cycle
//! granularity (the FPGA design runs at 200 MHz; one 5 ns cycle moves one
//! pipeline word). [`ClockDomain`] converts between cycle counts and
//! [`SimTime`]/[`SimDuration`] without accumulating rounding error: it keeps
//! the period as an exact rational (ns numerator / denominator).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Cycle count within one clock domain.
pub type Cycles = u64;

/// A fixed-frequency clock domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockDomain {
    /// Frequency in hertz.
    freq_hz: u64,
}

impl ClockDomain {
    /// The NetFPGA SUME datapath clock (200 MHz, 5 ns/cycle).
    pub const SUME: ClockDomain = ClockDomain {
        freq_hz: 200_000_000,
    };

    /// Creates a clock domain; panics on zero frequency.
    pub const fn from_hz(freq_hz: u64) -> Self {
        assert!(freq_hz > 0, "zero-frequency clock");
        ClockDomain { freq_hz }
    }

    /// Creates a clock domain from megahertz.
    pub const fn from_mhz(mhz: u64) -> Self {
        Self::from_hz(mhz * 1_000_000)
    }

    /// Frequency in hertz.
    pub const fn freq_hz(self) -> u64 {
        self.freq_hz
    }

    /// Exact duration of `cycles` clock cycles (rounded to nearest ns,
    /// computed in one shot so errors do not accumulate per-cycle).
    pub fn cycles_to_duration(self, cycles: Cycles) -> SimDuration {
        let ns = (cycles as u128 * 1_000_000_000 + self.freq_hz as u128 / 2) / self.freq_hz as u128;
        SimDuration::from_nanos(ns.min(u64::MAX as u128) as u64)
    }

    /// Number of *complete* cycles elapsed at instant `t`.
    pub fn time_to_cycles(self, t: SimTime) -> Cycles {
        (t.as_nanos() as u128 * self.freq_hz as u128 / 1_000_000_000) as u64
    }

    /// Number of complete cycles that fit in `d`.
    pub fn duration_to_cycles(self, d: SimDuration) -> Cycles {
        (d.as_nanos() as u128 * self.freq_hz as u128 / 1_000_000_000) as u64
    }

    /// Cycles needed to cover `d`, rounding up (e.g. a timer period).
    pub fn duration_to_cycles_ceil(self, d: SimDuration) -> Cycles {
        (d.as_nanos() as u128 * self.freq_hz as u128).div_ceil(1_000_000_000) as u64
    }

    /// Bytes of line capacity that pass in one cycle at `bits_per_sec`.
    ///
    /// The SUME pipeline moves 32 B/cycle at 200 MHz, exactly 4×10GbE plus
    /// headroom; this helper lets models compute how many "wire bytes" each
    /// cycle represents when deciding whether a cycle is idle.
    pub fn bytes_per_cycle(self, bits_per_sec: u64) -> f64 {
        bits_per_sec as f64 / 8.0 / self.freq_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sume_cycle_is_5ns() {
        assert_eq!(
            ClockDomain::SUME.cycles_to_duration(1),
            SimDuration::from_nanos(5)
        );
        assert_eq!(
            ClockDomain::SUME.cycles_to_duration(200_000_000),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    fn time_cycle_round_trip() {
        let c = ClockDomain::from_mhz(250); // 4 ns period
        assert_eq!(c.time_to_cycles(SimTime::from_nanos(12)), 3);
        assert_eq!(c.time_to_cycles(SimTime::from_nanos(13)), 3);
        assert_eq!(c.duration_to_cycles(SimDuration::from_nanos(13)), 3);
        assert_eq!(c.duration_to_cycles_ceil(SimDuration::from_nanos(13)), 4);
    }

    #[test]
    fn odd_frequency_rounds_not_truncates() {
        let c = ClockDomain::from_hz(3); // 333,333,333.33 ns period
        assert_eq!(c.cycles_to_duration(3), SimDuration::from_secs(1));
        // One cycle rounds to nearest ns rather than truncating.
        assert_eq!(c.cycles_to_duration(1).as_nanos(), 333_333_333);
    }

    #[test]
    fn bytes_per_cycle_sume_10g() {
        // 10 Gb/s over 200 MHz = 6.25 B/cycle per port.
        let b = ClockDomain::SUME.bytes_per_cycle(10_000_000_000);
        assert!((b - 6.25).abs() < 1e-12);
    }
}
