//! # edp-evsim — deterministic discrete-event simulation kernel
//!
//! The foundation of the *Event-Driven Packet Processing* reproduction:
//! every model in the workspace (links, switches, the SUME Event Switch
//! datapath, control-plane agents) runs on this kernel.
//!
//! Design rules, chosen for reproducibility of the paper's experiments:
//!
//! * **Integer time.** [`SimTime`]/[`SimDuration`] are nanoseconds in `u64`;
//!   event order never depends on floating-point rounding.
//! * **Stable ordering.** Events at the same instant fire in scheduling
//!   order ([`Sim`] keeps a FIFO sequence number), so a run is a pure
//!   function of (program, seed).
//! * **Explicit randomness.** All stochastic inputs flow from [`SimRng`]
//!   seeds; forked streams keep components independent.
//! * **Cycle models welcome.** [`ClockDomain`] and [`TimerWheel`] support
//!   hardware-shaped, cycle-granular models alongside event-granular ones.
//!
//! ```
//! use edp_evsim::{Sim, SimTime, SimDuration, Periodic};
//!
//! // A world counting timer ticks.
//! let mut sim: Sim<u32> = Sim::new();
//! sim.schedule_periodic(SimTime::from_micros(10), SimDuration::from_micros(10), |n, _| {
//!     *n += 1;
//!     Periodic::Continue
//! });
//! let mut ticks = 0;
//! sim.run_until(&mut ticks, SimTime::from_millis(1));
//! assert_eq!(ticks, 100);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod clock;
mod parallel;
mod rng;
pub mod shard;
mod sim;
pub mod stats;
mod time;
mod wheel;

pub use clock::{ClockDomain, Cycles};
pub use parallel::{default_threads, sweep};
pub use rng::{SimRng, Zipf};
pub use shard::{
    burst_from_env, drive_windows, env_config_error, horizon_from_env, safe_horizon, DriveStats,
    HorizonMode, WindowSync,
};
pub use sim::{EventClass, EventFn, EventId, Periodic, Sim, UNKEYED};
pub use stats::{jain_fairness, percentile, Counter, Histogram, TimeSeries, Welford};
pub use time::{SimDuration, SimTime};
pub use wheel::{TimerId, TimerWheel};
