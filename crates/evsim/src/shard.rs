//! Conservative safe-horizon window execution for sharded simulations.
//!
//! A sharded run partitions the world across worker threads, each owning a
//! [`Sim`] of its own. The classic conservative parallel-discrete-event
//! argument applies: if every cross-shard interaction takes at least
//! `lookahead` of simulated time to arrive, then once the shards agree on
//! the globally earliest pending event time `global_next`, every event
//! strictly before `global_next + lookahead` can be executed without ever
//! receiving a message that should have pre-empted it. The shards therefore
//! proceed in *windows*:
//!
//! 1. accept messages delivered at the previous window's close,
//! 2. publish the local earliest pending-event time and take the global
//!    minimum ([`WindowSync::negotiate`]),
//! 3. fire everything strictly before the safe horizon
//!    ([`Sim::run_before`]),
//! 4. hand outbound messages to their destination shards and barrier
//!    ([`WindowSync::exchange`]) so step 1 of the next window sees them.
//!
//! When burst mode is on (`EDP_BURST > 1`, see [`burst_from_env`]) a
//! negotiated window is stretched into up to that many lookahead-sized
//! sub-windows, each closed by a single combined exchange-and-vote barrier
//! ([`WindowSync::exchange_vote`]) instead of a fresh negotiation — see
//! [`drive_windows`] for the induction that keeps this conservative.
//!
//! The *effects horizon* (`EDP_HORIZON=effects`, see [`HorizonMode`])
//! goes further by spending static analysis: events whose whole cascade
//! is certified emission-free (classed [`crate::EventClass::Local`] under
//! an `EffectSummary` certificate) stop bounding the window at all, and
//! each barrier extends the horizon from the group's earliest *bound*
//! event instead of its earliest event of any kind.
//!
//! The loop ends when no shard has an event at or before the deadline;
//! messages cannot appear out of thin air, so the shards agree on that
//! state. What makes the merged schedule *byte-identical* to a
//! single-threaded run is not this module but the ordering keys carried by
//! the messages themselves (see [`Sim::schedule_keyed_at`]).
//!
//! The rendezvous is poisonable: a worker that panics mid-window calls
//! [`WindowSync::poison`] before unwinding, which wakes every peer blocked
//! at a barrier and makes it panic too — the run fails loudly instead of
//! deadlocking on a barrier that will never fill.

use crate::sim::Sim;
use crate::time::{SimDuration, SimTime};
use edp_telemetry::prof;
use std::sync::{Condvar, Mutex, MutexGuard};

struct SyncState {
    /// Per-shard earliest-pending-event slots for the negotiation.
    next: Vec<Option<SimTime>>,
    /// Threads currently parked at the barrier.
    arrived: usize,
    /// Bumped each time the barrier fills; waiters leave when it changes.
    generation: u64,
    /// Set by [`WindowSync::poison`]; every waiter panics on observing it.
    poisoned: bool,
    /// OR-accumulator for the in-progress [`WindowSync::exchange_vote`]
    /// (also the `active` bit of [`WindowSync::exchange_horizon`]).
    vote_accum: bool,
    /// The accumulated vote of the barrier round that last filled.
    vote_latched: bool,
    /// Min-accumulator for the in-progress
    /// [`WindowSync::exchange_horizon`]: earliest horizon-bounding time
    /// (pending bound event or in-flight message arrival) over the group.
    emit_accum: Option<SimTime>,
    /// The accumulated emit floor of the barrier round that last filled.
    emit_latched: Option<SimTime>,
}

fn min_opt(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Shared barrier state for one sharded run: a reusable, poisonable
/// rendezvous plus a per-shard slot for the earliest-pending-event
/// negotiation.
pub struct WindowSync {
    state: Mutex<SyncState>,
    cv: Condvar,
    shards: usize,
}

impl WindowSync {
    /// Creates synchronization state for `shards` worker threads.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a sharded run needs at least one shard");
        WindowSync {
            state: Mutex::new(SyncState {
                next: vec![None; shards],
                arrived: 0,
                generation: 0,
                poisoned: false,
                vote_accum: false,
                vote_latched: false,
                emit_accum: None,
                emit_latched: None,
            }),
            cv: Condvar::new(),
            shards,
        }
    }

    /// Number of participating shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    fn lock(&self) -> MutexGuard<'_, SyncState> {
        // A peer that panicked while holding the lock poisons the mutex;
        // the explicit `poisoned` flag below is the real signal, so keep
        // going and let the flag check raise the meaningful panic.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Marks the run as failed and wakes every thread blocked at a
    /// barrier. Call from a worker that is about to unwind so its peers
    /// panic instead of waiting forever for a rendezvous it will never
    /// join.
    pub fn poison(&self) {
        let mut st = self.lock();
        st.poisoned = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut st = self.lock();
        assert!(!st.poisoned, "sharded run poisoned: a peer shard panicked");
        st.arrived += 1;
        if st.arrived == self.shards {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return;
        }
        let generation = st.generation;
        while st.generation == generation && !st.poisoned {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        assert!(!st.poisoned, "sharded run poisoned: a peer shard panicked");
    }

    /// Publishes this shard's earliest pending event time and returns the
    /// global minimum over all shards. Every shard must call this once per
    /// window; all callers return the same value.
    pub fn negotiate(&self, shard: usize, local_next: Option<SimTime>) -> Option<SimTime> {
        {
            let mut st = self.lock();
            assert!(!st.poisoned, "sharded run poisoned: a peer shard panicked");
            st.next[shard] = local_next;
        }
        self.wait();
        let global = {
            let st = self.lock();
            st.next.iter().filter_map(|t| *t).min()
        };
        // Second rendezvous so no shard can overwrite its slot for the
        // next window while a peer is still reading this one.
        self.wait();
        global
    }

    /// Barrier after the outbound mailboxes are filled, so the next
    /// window's accept phase on every shard sees all of this window's
    /// messages.
    pub fn exchange(&self) {
        self.wait();
    }

    /// Exchange barrier that doubles as a one-bit vote: every shard
    /// contributes `active` and all shards receive the OR over the group.
    ///
    /// This is the sub-window fast path (see [`drive_windows`]): a single
    /// rendezvous both publishes mailbox visibility *and* decides whether
    /// any shard still has work before the next sub-horizon. One wait
    /// suffices — the latched result can only be overwritten by the next
    /// barrier fill, which requires every shard (including the slowest
    /// reader, which reads under the same lock it wakes with) to have
    /// arrived again.
    pub fn exchange_vote(&self, active: bool) -> bool {
        let mut st = self.lock();
        assert!(!st.poisoned, "sharded run poisoned: a peer shard panicked");
        st.vote_accum |= active;
        st.arrived += 1;
        if st.arrived == self.shards {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            st.vote_latched = st.vote_accum;
            st.vote_accum = false;
            self.cv.notify_all();
            return st.vote_latched;
        }
        let generation = st.generation;
        while st.generation == generation && !st.poisoned {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        assert!(!st.poisoned, "sharded run poisoned: a peer shard panicked");
        st.vote_latched
    }

    /// Exchange barrier for the effects horizon: every shard contributes
    /// its `active` bit and its *emit floor* — the earliest time at which
    /// it could still cause a cross-shard transmission (its earliest
    /// pending [`crate::EventClass::Bound`] event, folded with the
    /// earliest arrival it just published). All shards receive the OR of
    /// the bits and the min of the floors.
    ///
    /// The same single-wait latch argument as [`WindowSync::exchange_vote`]
    /// applies: the latched pair can only be overwritten by the next
    /// barrier fill, which needs every shard to arrive again.
    pub fn exchange_horizon(
        &self,
        active: bool,
        emit_next: Option<SimTime>,
    ) -> (bool, Option<SimTime>) {
        let mut st = self.lock();
        assert!(!st.poisoned, "sharded run poisoned: a peer shard panicked");
        st.vote_accum |= active;
        st.emit_accum = min_opt(st.emit_accum, emit_next);
        st.arrived += 1;
        if st.arrived == self.shards {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            st.vote_latched = st.vote_accum;
            st.emit_latched = st.emit_accum;
            st.vote_accum = false;
            st.emit_accum = None;
            self.cv.notify_all();
            return (st.vote_latched, st.emit_latched);
        }
        let generation = st.generation;
        while st.generation == generation && !st.poisoned {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        assert!(!st.poisoned, "sharded run poisoned: a peer shard panicked");
        (st.vote_latched, st.emit_latched)
    }
}

/// How [`drive_windows`] bounds each execution window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HorizonMode {
    /// Every pending event bounds the horizon: negotiated windows of
    /// `lookahead`, optionally stretched into burst sub-windows. Needs no
    /// certificates; the PR-6 behavior.
    #[default]
    Classic,
    /// Certificate-aware: events classed [`crate::EventClass::Local`] are
    /// invisible to the horizon, which extends from the group's *emit
    /// floor* (earliest bound event or in-flight arrival) instead of from
    /// the earliest event of any kind. Requires the scheduler's `Local`
    /// classifications to be backed by effect-summary certificates.
    Effects,
}

/// Horizon mode from the `EDP_HORIZON` environment variable: `effects`
/// selects [`HorizonMode::Effects`]; anything else (or unset) is the
/// conservative [`HorizonMode::Classic`] default.
pub fn horizon_from_env() -> HorizonMode {
    match std::env::var("EDP_HORIZON") {
        Ok(v) if v.trim() == "effects" => HorizonMode::Effects,
        _ => HorizonMode::Classic,
    }
}

/// Counters returned by [`drive_windows`]; identical on every shard of a
/// run (each counted step is a full-group rendezvous).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveStats {
    /// Negotiated windows executed.
    pub windows: u64,
    /// Barrier rendezvous joined (a negotiation counts its two waits;
    /// every exchange/vote/horizon barrier counts one). The true
    /// synchronization cost of the run.
    pub barriers: u64,
}

/// Burst size from the `EDP_BURST` environment variable (default 1 —
/// exactly today's one-at-a-time behavior). The knob sizes both packet
/// bursts on the switch fast path and the number of lookahead-sized
/// sub-windows a sharded run executes per negotiated window.
pub fn burst_from_env() -> usize {
    std::env::var("EDP_BURST")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// The exclusive event-execution bound for one window: events strictly
/// before the returned time are safe to fire.
///
/// `lookahead` is the minimum simulated-time delay of any cross-shard
/// interaction; `None` means the shards cannot interact at all (no
/// cross-shard links), in which case the whole run up to the deadline is
/// one window. The bound is capped just past `deadline` so an
/// inclusive-deadline run (`t <= deadline`, matching [`Sim::run_until`])
/// never fires later events.
pub fn safe_horizon(
    global_next: SimTime,
    lookahead: Option<SimDuration>,
    deadline: SimTime,
) -> SimTime {
    let cap = deadline.as_nanos().saturating_add(1);
    let h = match lookahead {
        Some(la) => global_next.as_nanos().saturating_add(la.as_nanos()),
        None => cap,
    };
    SimTime::from_nanos(h.min(cap))
}

/// Runs one shard's event loop to `deadline` in conservative windows of up
/// to `subwindows` lookahead-sized sub-steps each (classic mode), or in
/// certificate-extended windows ([`HorizonMode::Effects`]).
///
/// `accept` schedules messages handed over at the previous barrier into
/// `sim`; `publish` moves outbound messages into the shared mailboxes and
/// returns the earliest *arrival time* among the messages it just
/// published (`None` when it published nothing). Both run on the shard's
/// own thread. Returns [`DriveStats`], identical on every shard.
///
/// # Sub-windows (classic mode)
///
/// A full window negotiates the global earliest event time (two waits) and
/// then fires everything before `global_next + lookahead` (one exchange
/// wait). But once that window closes, a cheaper induction holds: every
/// message that can arrive before `horizon + lookahead` was sent strictly
/// before `horizon`, and the closing exchange already made it visible. So
/// the shards may keep advancing one lookahead at a time with only a
/// single combined exchange-and-vote barrier per sub-step — no
/// renegotiation — for up to `subwindows` sub-steps. The vote is the
/// early exit: when no shard has a pending event before the next
/// sub-horizon and none published this round, every shard breaks back to
/// negotiation in lockstep and the negotiated minimum jumps the idle gap
/// in one hop. The executed event schedule is identical for every
/// `subwindows >= 1`; `subwindows == 1` is exactly the legacy protocol.
///
/// # The effects horizon
///
/// [`HorizonMode::Effects`] replaces the fixed sub-window budget with an
/// uncapped continuation driven by *certificates*: events classed
/// [`crate::EventClass::Local`] are guaranteed (by their scheduler's
/// effect summary) never to publish cross-shard, so they need not bound
/// the window. Each round ends with one [`WindowSync::exchange_horizon`]
/// barrier where every shard contributes its emit floor — the min of its
/// earliest pending *bound* event ([`Sim::peek_next_bound`]) and the
/// earliest arrival it published this round — and the next bound becomes
/// `global_emit + lookahead` (the deadline cap when no floor exists
/// anywhere). Soundness is the window induction specialized to the floor:
///
/// * every pending bound event on any shard is `>= global_emit` (it is a
///   min over exactly those), so any future transmission happens at
///   `t >= global_emit` and arrives at `t + lookahead >= global_emit +
///   lookahead` — at or past the next bound;
/// * messages published this round had their arrivals folded into the
///   floor, were made visible at this barrier, and are accepted before
///   the next round runs, so an arrival inside the next window is already
///   scheduled when that window fires;
/// * local events may fire anywhere inside the extended window: their
///   cascades publish nothing, and certified cranks schedule their
///   successors as local again.
///
/// Progress is strict: the floor is never below the horizon just run
/// (remaining bound events were not fired, published arrivals are at
/// least one lookahead past the *previous* floor), so each round advances
/// the bound by at least `lookahead`. The executed schedule is identical
/// to classic mode — classes never reorder events, they only decide how
/// often the shards rendezvous.
#[allow(clippy::too_many_arguments)] // deliberate: the low-level engine entry point takes the full window protocol
pub fn drive_windows<W>(
    world: &mut W,
    sim: &mut Sim<W>,
    shard: usize,
    sync: &WindowSync,
    lookahead: Option<SimDuration>,
    deadline: SimTime,
    mode: HorizonMode,
    subwindows: usize,
    mut accept: impl FnMut(&mut W, &mut Sim<W>),
    mut publish: impl FnMut(&mut W, &mut Sim<W>, SimTime) -> Option<SimTime>,
) -> DriveStats {
    let subwindows = subwindows.max(1) as u64;
    let cap = deadline.as_nanos().saturating_add(1);
    let cap_t = SimTime::from_nanos(cap);
    // Effects mode is meaningful only with cross-shard links; with no
    // lookahead the classic path already runs the whole span as one
    // window, which no certificate can improve on.
    let effects = mode == HorizonMode::Effects && lookahead.is_some();
    let mut stats = DriveStats::default();
    loop {
        accept(world, sim);
        prof::lap(prof::Phase::Mailbox);
        let local = sim.peek_next();
        let global = sync.negotiate(shard, local);
        stats.barriers += 2;
        prof::lap(prof::Phase::Negotiate);
        prof::rendezvous(2);
        let Some(global) = global else {
            break;
        };
        if global > deadline {
            break;
        }
        stats.windows += 1;
        prof::window_begin();
        let mut horizon = safe_horizon(global, lookahead, deadline);
        if effects {
            let la = lookahead.expect("effects horizon requires lookahead");
            loop {
                sim.run_before(world, horizon);
                prof::lap(prof::Phase::Execute);
                let published = publish(world, sim, horizon);
                prof::lap(prof::Phase::Mailbox);
                let emit_next = min_opt(sim.peek_next_bound(), published);
                // A shard stays active while anything at or before the
                // deadline remains (bound or local) or it just published;
                // the window keeps extending until the whole group drains.
                let active = published.is_some() || sim.peek_next().is_some_and(|t| t < cap_t);
                let (any_active, global_emit) = sync.exchange_horizon(active, emit_next);
                stats.barriers += 1;
                prof::lap(prof::Phase::Barrier);
                prof::rendezvous(1);
                if !any_active {
                    break;
                }
                let next = match global_emit {
                    Some(e) => {
                        SimTime::from_nanos(e.as_nanos().saturating_add(la.as_nanos()).min(cap))
                    }
                    // No bound event and nothing in flight anywhere:
                    // whatever remains is certified local, run it out.
                    None => cap_t,
                };
                accept(world, sim);
                prof::lap(prof::Phase::Extend);
                horizon = next;
            }
        } else {
            let mut remaining = subwindows;
            loop {
                sim.run_before(world, horizon);
                prof::lap(prof::Phase::Execute);
                let published = publish(world, sim, horizon).is_some();
                prof::lap(prof::Phase::Mailbox);
                remaining -= 1;
                // Extend by one more lookahead without renegotiating,
                // unless the sub-window budget or the deadline cap is
                // exhausted.
                let next = match lookahead {
                    Some(la) if remaining > 0 && horizon.as_nanos() < cap => SimTime::from_nanos(
                        horizon.as_nanos().saturating_add(la.as_nanos()).min(cap),
                    ),
                    _ => {
                        sync.exchange();
                        stats.barriers += 1;
                        prof::lap(prof::Phase::Barrier);
                        prof::rendezvous(1);
                        break;
                    }
                };
                let active = published || sim.peek_next().is_some_and(|t| t < next);
                let vote = sync.exchange_vote(active);
                stats.barriers += 1;
                prof::lap(prof::Phase::Barrier);
                prof::rendezvous(1);
                if !vote {
                    // Every shard idle below `next` and nothing in flight:
                    // renegotiate so the global minimum jumps the gap.
                    break;
                }
                accept(world, sim);
                prof::lap(prof::Phase::Extend);
                horizon = next;
            }
        }
        prof::window_end();
    }
    // Mirror run_until's clock semantics once the shards agree that
    // nothing at or before the deadline remains.
    sim.fast_forward(deadline);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{EventClass, UNKEYED};

    #[test]
    fn horizon_is_lookahead_past_next_capped_at_deadline() {
        let d = SimTime::from_nanos(1000);
        assert_eq!(
            safe_horizon(
                SimTime::from_nanos(100),
                Some(SimDuration::from_nanos(50)),
                d
            ),
            SimTime::from_nanos(150)
        );
        assert_eq!(
            safe_horizon(
                SimTime::from_nanos(990),
                Some(SimDuration::from_nanos(50)),
                d
            ),
            SimTime::from_nanos(1001),
            "cap is one past the deadline so t == deadline still fires"
        );
        assert_eq!(
            safe_horizon(SimTime::from_nanos(0), None, d),
            SimTime::from_nanos(1001)
        );
    }

    /// Runs the two-shard ping-pong under `subwindows`/`mode` and returns
    /// the per-shard fired-time logs plus the (identical-across-shards)
    /// drive stats.
    fn ping_pong_mode(subwindows: usize, mode: HorizonMode) -> (Vec<u64>, Vec<u64>, DriveStats) {
        use std::sync::Mutex as StdMutex;
        let lookahead = SimDuration::from_nanos(10);
        let deadline = SimTime::from_nanos(200);
        let sync = WindowSync::new(2);
        let mailbox: [StdMutex<Vec<SimTime>>; 2] =
            [StdMutex::new(Vec::new()), StdMutex::new(Vec::new())];
        let log: [StdMutex<Vec<u64>>; 2] = [StdMutex::new(Vec::new()), StdMutex::new(Vec::new())];
        let wins: [StdMutex<DriveStats>; 2] = [
            StdMutex::new(DriveStats::default()),
            StdMutex::new(DriveStats::default()),
        ];

        std::thread::scope(|scope| {
            for me in 0..2usize {
                let sync = &sync;
                let mailbox = &mailbox;
                let log = &log;
                let wins = &wins;
                scope.spawn(move || {
                    // World = (outbox of arrival-times, fired-times log).
                    type World = (Vec<SimTime>, Vec<u64>);
                    let mut world: World = (Vec::new(), Vec::new());
                    let mut sim: Sim<World> = Sim::new();
                    if me == 0 {
                        // Shard 0 serves: every received ping fires a pong.
                        sim.schedule_at(SimTime::ZERO, |w: &mut World, s: &mut Sim<World>| {
                            w.1.push(s.now().as_nanos());
                            w.0.push(s.now() + SimDuration::from_nanos(10));
                        });
                    }
                    let stats = drive_windows(
                        &mut world,
                        &mut sim,
                        me,
                        sync,
                        Some(lookahead),
                        deadline,
                        mode,
                        subwindows,
                        |_w, s| {
                            let mut inbox = mailbox[me].lock().unwrap();
                            for at in inbox.drain(..) {
                                s.schedule_keyed_at(
                                    at,
                                    0,
                                    move |w: &mut World, s: &mut Sim<World>| {
                                        w.1.push(s.now().as_nanos());
                                        let reply = s.now() + SimDuration::from_nanos(10);
                                        if reply <= SimTime::from_nanos(100) {
                                            w.0.push(reply);
                                        }
                                    },
                                );
                            }
                        },
                        |w, _s, _horizon| {
                            let peer = 1 - me;
                            let min_arrival = w.0.iter().copied().min();
                            mailbox[peer].lock().unwrap().append(&mut w.0);
                            min_arrival
                        },
                    );
                    assert!(stats.windows >= 1 || me == 1);
                    *wins[me].lock().unwrap() = stats;
                    *log[me].lock().unwrap() = world.1;
                });
            }
        });

        let l0 = log[0].lock().unwrap().clone();
        let l1 = log[1].lock().unwrap().clone();
        let (w0, w1) = (*wins[0].lock().unwrap(), *wins[1].lock().unwrap());
        assert_eq!(w0, w1, "drive stats must agree across shards");
        (l0, l1, w0)
    }

    fn ping_pong(subwindows: usize) -> (Vec<u64>, Vec<u64>, u64) {
        let (l0, l1, stats) = ping_pong_mode(subwindows, HorizonMode::Classic);
        (l0, l1, stats.windows)
    }

    #[test]
    fn two_shards_exchange_messages_deterministically() {
        // Shard 0 fired at 0, 20, 40, ... and shard 1 at 10, 30, ... until
        // the reply cutoff at t=100.
        let (l0, l1, _) = ping_pong(1);
        assert_eq!(l0, vec![0, 20, 40, 60, 80, 100]);
        assert_eq!(l1, vec![10, 30, 50, 70, 90]);
    }

    #[test]
    fn subwindows_preserve_the_schedule_and_collapse_negotiations() {
        let (l0_base, l1_base, w_base) = ping_pong(1);
        for sub in [2usize, 8, 32] {
            let (l0, l1, w) = ping_pong(sub);
            assert_eq!(l0, l0_base, "subwindows={sub} changed shard 0's schedule");
            assert_eq!(l1, l1_base, "subwindows={sub} changed shard 1's schedule");
            assert!(
                w < w_base,
                "subwindows={sub} should negotiate fewer windows ({w} vs {w_base})"
            );
        }
    }

    #[test]
    fn effects_horizon_preserves_the_schedule_and_collapses_negotiations() {
        let (l0_base, l1_base, w_base) = ping_pong(1);
        let (l0, l1, stats) = ping_pong_mode(1, HorizonMode::Effects);
        assert_eq!(l0, l0_base, "effects horizon changed shard 0's schedule");
        assert_eq!(l1, l1_base, "effects horizon changed shard 1's schedule");
        assert!(
            stats.windows < w_base,
            "effects horizon should negotiate fewer windows ({} vs {w_base})",
            stats.windows
        );
    }

    /// A shard whose whole frontier is certified local must not drag its
    /// peer through per-event rendezvous: the effects horizon runs the
    /// local chain out in one extended window.
    fn local_chain(mode: HorizonMode) -> (Vec<u64>, DriveStats) {
        use std::sync::Mutex as StdMutex;
        let sync = WindowSync::new(2);
        let log: StdMutex<Vec<u64>> = StdMutex::new(Vec::new());
        let stats_out: StdMutex<DriveStats> = StdMutex::new(DriveStats::default());

        std::thread::scope(|scope| {
            for me in 0..2usize {
                let sync = &sync;
                let log = &log;
                let stats_out = &stats_out;
                scope.spawn(move || {
                    type World = Vec<u64>;
                    let mut world: World = Vec::new();
                    let mut sim: Sim<World> = Sim::new();
                    if me == 0 {
                        // A self-perpetuating certified-local chain: fires
                        // every 5 ns, never publishes anything.
                        fn tick(w: &mut Vec<u64>, s: &mut Sim<Vec<u64>>) {
                            w.push(s.now().as_nanos());
                            let next = s.now() + SimDuration::from_nanos(5);
                            if next <= SimTime::from_nanos(100) {
                                s.schedule_classed_at(next, UNKEYED, EventClass::Local, tick);
                            }
                        }
                        sim.schedule_classed_at(SimTime::ZERO, UNKEYED, EventClass::Local, tick);
                    }
                    let stats = drive_windows(
                        &mut world,
                        &mut sim,
                        me,
                        sync,
                        Some(SimDuration::from_nanos(10)),
                        SimTime::from_nanos(200),
                        mode,
                        1,
                        |_w, _s| {},
                        |_w, _s, _horizon| None,
                    );
                    if me == 0 {
                        *log.lock().unwrap() = world;
                        *stats_out.lock().unwrap() = stats;
                    }
                });
            }
        });

        let l = log.lock().unwrap().clone();
        let stats = *stats_out.lock().unwrap();
        (l, stats)
    }

    #[test]
    fn certified_local_chain_runs_in_one_extended_window() {
        let (l_classic, s_classic) = local_chain(HorizonMode::Classic);
        let (l_effects, s_effects) = local_chain(HorizonMode::Effects);
        assert_eq!(l_effects, l_classic, "schedule must not change");
        assert_eq!(l_classic, (0..=100).step_by(5).collect::<Vec<u64>>());
        assert_eq!(
            s_effects.windows, 1,
            "one negotiation covers the whole certified-local chain"
        );
        assert!(
            s_effects.barriers < s_classic.barriers,
            "effects barriers {} must undercut classic {}",
            s_effects.barriers,
            s_classic.barriers
        );
    }

    #[test]
    fn exchange_horizon_ors_votes_and_mins_floors() {
        let sync = std::sync::Arc::new(WindowSync::new(2));
        let t = SimTime::from_nanos;
        let peer = {
            let sync = std::sync::Arc::clone(&sync);
            std::thread::spawn(move || {
                [
                    sync.exchange_horizon(false, Some(t(10))),
                    sync.exchange_horizon(true, Some(t(30))),
                    sync.exchange_horizon(false, None),
                ]
            })
        };
        let got = [
            sync.exchange_horizon(false, None),
            sync.exchange_horizon(false, Some(t(20))),
            sync.exchange_horizon(false, None),
        ];
        let want = [(false, Some(t(10))), (true, Some(t(20))), (false, None)];
        assert_eq!(got, want);
        assert_eq!(peer.join().unwrap(), want);
    }

    #[test]
    fn horizon_env_defaults_to_classic() {
        if std::env::var("EDP_HORIZON").is_err() {
            assert_eq!(horizon_from_env(), HorizonMode::Classic);
        }
    }

    #[test]
    fn exchange_vote_ors_across_shards() {
        let sync = std::sync::Arc::new(WindowSync::new(2));
        let peer = {
            let sync = std::sync::Arc::clone(&sync);
            std::thread::spawn(move || {
                let rounds = [false, true, false];
                rounds.map(|mine| sync.exchange_vote(mine))
            })
        };
        let got = [false, false, true].map(|mine| sync.exchange_vote(mine));
        assert_eq!(got, [false, true, true]);
        assert_eq!(peer.join().unwrap(), [false, true, true]);
    }

    #[test]
    fn burst_env_defaults_to_one() {
        // The suite must not mutate process-global env (tests run in
        // parallel); with the variable unset the default is the legacy
        // single-packet behavior.
        if std::env::var("EDP_BURST").is_err() {
            assert_eq!(burst_from_env(), 1);
        }
    }

    #[test]
    fn poison_wakes_a_blocked_peer_and_panics_it() {
        let sync = std::sync::Arc::new(WindowSync::new(2));
        let peer = {
            let sync = std::sync::Arc::clone(&sync);
            std::thread::spawn(move || sync.negotiate(0, Some(SimTime::ZERO)))
        };
        // Give the peer time to park at the first rendezvous, then poison
        // instead of joining it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        sync.poison();
        let out = peer.join();
        assert!(out.is_err(), "poisoned waiter must panic, not hang");
        // Later arrivals see the poison immediately.
        let late = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sync.exchange()));
        assert!(late.is_err());
    }
}
