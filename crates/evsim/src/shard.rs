//! Conservative safe-horizon window execution for sharded simulations.
//!
//! A sharded run partitions the world across worker threads, each owning a
//! [`Sim`] of its own. The classic conservative parallel-discrete-event
//! argument applies: if every cross-shard interaction takes at least
//! `lookahead` of simulated time to arrive, then once the shards agree on
//! the globally earliest pending event time `global_next`, every event
//! strictly before `global_next + lookahead` can be executed without ever
//! receiving a message that should have pre-empted it. The shards therefore
//! proceed in *windows*:
//!
//! 1. accept messages delivered at the previous window's close,
//! 2. publish the local earliest pending-event time and take the global
//!    minimum ([`WindowSync::negotiate`]),
//! 3. fire everything strictly before the safe horizon
//!    ([`Sim::run_before`]),
//! 4. hand outbound messages to their destination shards and barrier
//!    ([`WindowSync::exchange`]) so step 1 of the next window sees them.
//!
//! The loop ends when no shard has an event at or before the deadline;
//! messages cannot appear out of thin air, so the shards agree on that
//! state. What makes the merged schedule *byte-identical* to a
//! single-threaded run is not this module but the ordering keys carried by
//! the messages themselves (see [`Sim::schedule_keyed_at`]).
//!
//! The rendezvous is poisonable: a worker that panics mid-window calls
//! [`WindowSync::poison`] before unwinding, which wakes every peer blocked
//! at a barrier and makes it panic too — the run fails loudly instead of
//! deadlocking on a barrier that will never fill.

use crate::sim::Sim;
use crate::time::{SimDuration, SimTime};
use std::sync::{Condvar, Mutex, MutexGuard};

struct SyncState {
    /// Per-shard earliest-pending-event slots for the negotiation.
    next: Vec<Option<SimTime>>,
    /// Threads currently parked at the barrier.
    arrived: usize,
    /// Bumped each time the barrier fills; waiters leave when it changes.
    generation: u64,
    /// Set by [`WindowSync::poison`]; every waiter panics on observing it.
    poisoned: bool,
}

/// Shared barrier state for one sharded run: a reusable, poisonable
/// rendezvous plus a per-shard slot for the earliest-pending-event
/// negotiation.
pub struct WindowSync {
    state: Mutex<SyncState>,
    cv: Condvar,
    shards: usize,
}

impl WindowSync {
    /// Creates synchronization state for `shards` worker threads.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a sharded run needs at least one shard");
        WindowSync {
            state: Mutex::new(SyncState {
                next: vec![None; shards],
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
            shards,
        }
    }

    /// Number of participating shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    fn lock(&self) -> MutexGuard<'_, SyncState> {
        // A peer that panicked while holding the lock poisons the mutex;
        // the explicit `poisoned` flag below is the real signal, so keep
        // going and let the flag check raise the meaningful panic.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Marks the run as failed and wakes every thread blocked at a
    /// barrier. Call from a worker that is about to unwind so its peers
    /// panic instead of waiting forever for a rendezvous it will never
    /// join.
    pub fn poison(&self) {
        let mut st = self.lock();
        st.poisoned = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut st = self.lock();
        assert!(!st.poisoned, "sharded run poisoned: a peer shard panicked");
        st.arrived += 1;
        if st.arrived == self.shards {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return;
        }
        let generation = st.generation;
        while st.generation == generation && !st.poisoned {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        assert!(!st.poisoned, "sharded run poisoned: a peer shard panicked");
    }

    /// Publishes this shard's earliest pending event time and returns the
    /// global minimum over all shards. Every shard must call this once per
    /// window; all callers return the same value.
    pub fn negotiate(&self, shard: usize, local_next: Option<SimTime>) -> Option<SimTime> {
        {
            let mut st = self.lock();
            assert!(!st.poisoned, "sharded run poisoned: a peer shard panicked");
            st.next[shard] = local_next;
        }
        self.wait();
        let global = {
            let st = self.lock();
            st.next.iter().filter_map(|t| *t).min()
        };
        // Second rendezvous so no shard can overwrite its slot for the
        // next window while a peer is still reading this one.
        self.wait();
        global
    }

    /// Barrier after the outbound mailboxes are filled, so the next
    /// window's accept phase on every shard sees all of this window's
    /// messages.
    pub fn exchange(&self) {
        self.wait();
    }
}

/// The exclusive event-execution bound for one window: events strictly
/// before the returned time are safe to fire.
///
/// `lookahead` is the minimum simulated-time delay of any cross-shard
/// interaction; `None` means the shards cannot interact at all (no
/// cross-shard links), in which case the whole run up to the deadline is
/// one window. The bound is capped just past `deadline` so an
/// inclusive-deadline run (`t <= deadline`, matching [`Sim::run_until`])
/// never fires later events.
pub fn safe_horizon(
    global_next: SimTime,
    lookahead: Option<SimDuration>,
    deadline: SimTime,
) -> SimTime {
    let cap = deadline.as_nanos().saturating_add(1);
    let h = match lookahead {
        Some(la) => global_next.as_nanos().saturating_add(la.as_nanos()),
        None => cap,
    };
    SimTime::from_nanos(h.min(cap))
}

/// Runs one shard's event loop to `deadline` in conservative windows.
///
/// `accept` schedules messages handed over at the previous window's close
/// into `sim`; `publish` moves this window's outbound messages into the
/// shared mailboxes. Both run on the shard's own thread. Returns the
/// number of windows executed (identical on every shard).
#[allow(clippy::too_many_arguments)] // deliberate: the low-level engine entry point takes the full window protocol
pub fn drive_windows<W>(
    world: &mut W,
    sim: &mut Sim<W>,
    shard: usize,
    sync: &WindowSync,
    lookahead: Option<SimDuration>,
    deadline: SimTime,
    mut accept: impl FnMut(&mut W, &mut Sim<W>),
    mut publish: impl FnMut(&mut W, &mut Sim<W>),
) -> u64 {
    let mut windows = 0u64;
    loop {
        accept(world, sim);
        let local = sim.peek_next();
        let Some(global) = sync.negotiate(shard, local) else {
            break;
        };
        if global > deadline {
            break;
        }
        windows += 1;
        let horizon = safe_horizon(global, lookahead, deadline);
        sim.run_before(world, horizon);
        publish(world, sim);
        sync.exchange();
    }
    // Mirror run_until's clock semantics once the shards agree that
    // nothing at or before the deadline remains.
    sim.fast_forward(deadline);
    windows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_is_lookahead_past_next_capped_at_deadline() {
        let d = SimTime::from_nanos(1000);
        assert_eq!(
            safe_horizon(
                SimTime::from_nanos(100),
                Some(SimDuration::from_nanos(50)),
                d
            ),
            SimTime::from_nanos(150)
        );
        assert_eq!(
            safe_horizon(
                SimTime::from_nanos(990),
                Some(SimDuration::from_nanos(50)),
                d
            ),
            SimTime::from_nanos(1001),
            "cap is one past the deadline so t == deadline still fires"
        );
        assert_eq!(
            safe_horizon(SimTime::from_nanos(0), None, d),
            SimTime::from_nanos(1001)
        );
    }

    #[test]
    fn two_shards_exchange_messages_deterministically() {
        // A ping-pong across two shards: each shard's world is a counter
        // plus an outbox; messages take exactly `lookahead` to cross.
        use std::sync::Mutex as StdMutex;
        let lookahead = SimDuration::from_nanos(10);
        let deadline = SimTime::from_nanos(200);
        let sync = WindowSync::new(2);
        let mailbox: [StdMutex<Vec<SimTime>>; 2] =
            [StdMutex::new(Vec::new()), StdMutex::new(Vec::new())];
        let log: [StdMutex<Vec<u64>>; 2] = [StdMutex::new(Vec::new()), StdMutex::new(Vec::new())];

        std::thread::scope(|scope| {
            for me in 0..2usize {
                let sync = &sync;
                let mailbox = &mailbox;
                let log = &log;
                scope.spawn(move || {
                    // World = (outbox of send-times, fired-times log).
                    type World = (Vec<SimTime>, Vec<u64>);
                    let mut world: World = (Vec::new(), Vec::new());
                    let mut sim: Sim<World> = Sim::new();
                    if me == 0 {
                        // Shard 0 serves: every received ping fires a pong.
                        sim.schedule_at(SimTime::ZERO, |w: &mut World, s: &mut Sim<World>| {
                            w.1.push(s.now().as_nanos());
                            w.0.push(s.now() + SimDuration::from_nanos(10));
                        });
                    }
                    let windows = drive_windows(
                        &mut world,
                        &mut sim,
                        me,
                        sync,
                        Some(lookahead),
                        deadline,
                        |_w, s| {
                            let mut inbox = mailbox[me].lock().unwrap();
                            for at in inbox.drain(..) {
                                s.schedule_keyed_at(
                                    at,
                                    0,
                                    move |w: &mut World, s: &mut Sim<World>| {
                                        w.1.push(s.now().as_nanos());
                                        let reply = s.now() + SimDuration::from_nanos(10);
                                        if reply <= SimTime::from_nanos(100) {
                                            w.0.push(reply);
                                        }
                                    },
                                );
                            }
                        },
                        |w, _s| {
                            let peer = 1 - me;
                            mailbox[peer].lock().unwrap().append(&mut w.0);
                        },
                    );
                    assert!(windows >= 1 || me == 1);
                    *log[me].lock().unwrap() = world.1;
                });
            }
        });

        // Shard 0 fired at 0, 20, 40, ... and shard 1 at 10, 30, ... until
        // the reply cutoff at t=100.
        let l0 = log[0].lock().unwrap().clone();
        let l1 = log[1].lock().unwrap().clone();
        assert_eq!(l0, vec![0, 20, 40, 60, 80, 100]);
        assert_eq!(l1, vec![10, 30, 50, 70, 90]);
    }

    #[test]
    fn poison_wakes_a_blocked_peer_and_panics_it() {
        let sync = std::sync::Arc::new(WindowSync::new(2));
        let peer = {
            let sync = std::sync::Arc::clone(&sync);
            std::thread::spawn(move || sync.negotiate(0, Some(SimTime::ZERO)))
        };
        // Give the peer time to park at the first rendezvous, then poison
        // instead of joining it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        sync.poison();
        let out = peer.join();
        assert!(out.is_err(), "poisoned waiter must panic, not hang");
        // Later arrivals see the poison immediately.
        let late = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sync.exchange()));
        assert!(late.is_err());
    }
}
