//! Conservative safe-horizon window execution for sharded simulations.
//!
//! A sharded run partitions the world across worker threads, each owning a
//! [`Sim`] of its own. The classic conservative parallel-discrete-event
//! argument applies: if every cross-shard interaction takes at least
//! `lookahead` of simulated time to arrive, then once the shards agree on
//! the globally earliest pending event time `global_next`, every event
//! strictly before `global_next + lookahead` can be executed without ever
//! receiving a message that should have pre-empted it. The shards therefore
//! proceed in *windows*:
//!
//! 1. accept messages delivered at the previous window's close,
//! 2. publish the local earliest pending-event time and take the global
//!    minimum ([`WindowSync::negotiate`]),
//! 3. fire everything strictly before the safe horizon
//!    ([`Sim::run_before`]),
//! 4. hand outbound messages to their destination shards and barrier
//!    ([`WindowSync::exchange`]) so step 1 of the next window sees them.
//!
//! When burst mode is on (`EDP_BURST > 1`, see [`burst_from_env`]) a
//! negotiated window is stretched into up to that many lookahead-sized
//! sub-windows, each closed by a single combined exchange-and-vote barrier
//! ([`WindowSync::exchange_vote`]) instead of a fresh negotiation — see
//! [`drive_windows`] for the induction that keeps this conservative.
//! Sub-steps that provably cannot carry traffic anywhere — every event
//! below the group's negotiated *bound floor* is certified emission-free —
//! skip even that barrier and free-run to the next sub-horizon
//! (*exchange elision*, counted in [`DriveStats::elided`]).
//!
//! The *effects horizon* (`EDP_HORIZON=effects`, see [`HorizonMode`])
//! goes further and drops the per-round rendezvous entirely: shards
//! exchange through lock-free per-shard *frontier* atomics and
//! per-destination mailbox sequence counters, each shard executing up to
//! `min(peer frontiers) + lookahead` and draining its inbox whenever the
//! shared traffic counter moves. Barriers remain only at the opening
//! negotiation and the closing one that confirms termination. See
//! [`drive_windows`] for the induction.
//!
//! The loop ends when no shard has an event at or before the deadline;
//! messages cannot appear out of thin air, so the shards agree on that
//! state. What makes the merged schedule *byte-identical* to a
//! single-threaded run is not this module but the ordering keys carried by
//! the messages themselves (see [`Sim::schedule_keyed_at`]).
//!
//! The rendezvous is poisonable: a worker that panics mid-window calls
//! [`WindowSync::poison`] before unwinding, which wakes every peer blocked
//! at a barrier (or spinning on a frontier) and makes it panic too — the
//! run fails loudly instead of deadlocking on a rendezvous that will
//! never fill.

use crate::sim::Sim;
use crate::time::{SimDuration, SimTime};
use edp_telemetry::prof;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Sentinel for "no time" in the atomic negotiation slots and
/// accumulators.
const NONE_NS: u64 = u64::MAX;

fn pack(t: Option<SimTime>) -> u64 {
    t.map_or(NONE_NS, |t| t.as_nanos())
}

fn unpack(v: u64) -> Option<SimTime> {
    (v != NONE_NS).then(|| SimTime::from_nanos(v))
}

/// A cache-line-padded atomic so per-shard frontier and sequence slots
/// never false-share under the spin-heavy exchange path.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    fn new(v: u64) -> Self {
        PaddedU64(AtomicU64::new(v))
    }
}

/// Shared synchronization state for one sharded run: a reusable,
/// poisonable sense-reversing spin-then-park barrier, per-shard slots for
/// the earliest-pending-event negotiation, and the lock-free exchange
/// state (per-shard frontiers, per-destination inbox sequence counters,
/// and the shared round-traffic counter).
pub struct WindowSync {
    shards: usize,
    /// Threads currently arrived at the in-progress barrier.
    arrived: AtomicUsize,
    /// The barrier's sense ticket: bumped by the last arriver; waiters
    /// spin (then park) until it changes.
    generation: AtomicU64,
    /// Set by [`WindowSync::poison`]; every waiter panics on observing it.
    poisoned: AtomicBool,
    /// OR-accumulator for the in-progress [`WindowSync::exchange_vote`]
    /// (also the `active` bit of [`WindowSync::exchange_horizon`]).
    vote_accum: AtomicBool,
    /// The accumulated vote of the barrier round that last filled.
    vote_latched: AtomicBool,
    /// Min-accumulator for the in-progress
    /// [`WindowSync::exchange_horizon`] (ns; [`NONE_NS`] = no floor).
    emit_accum: AtomicU64,
    /// The accumulated emit floor of the barrier round that last filled.
    emit_latched: AtomicU64,
    /// Per-shard earliest-pending-event slots for the negotiation.
    next: Vec<PaddedU64>,
    /// Per-shard earliest *bound* (emission-capable) event slots, folded
    /// by [`WindowSync::negotiate_bound`] into the elision floor.
    bound: Vec<PaddedU64>,
    /// Per-shard execution/emission frontiers (ns) for the lock-free
    /// effects-mode exchange; monotone over the whole run.
    frontier: Vec<PaddedU64>,
    /// Per-destination publish sequence counters: bumped after a message
    /// lands in that destination's mailbox, so receivers drain only when
    /// something actually arrived.
    inbox_seq: Vec<PaddedU64>,
    /// The shared "round has traffic" counter: total publish marks so
    /// far, bumped on every publish.
    traffic: AtomicU64,
    /// Parking fallback for oversubscribed hosts: waiters that exhaust
    /// the spin budget sleep here until the generation ticket moves.
    park: Mutex<()>,
    cv: Condvar,
}

impl WindowSync {
    /// Iterations of busy-spin before a barrier waiter starts yielding —
    /// sized for sub-microsecond window closes.
    const SPIN: u32 = 128;
    /// `yield_now` rounds after the spin budget, before parking on the
    /// condvar. Short: on an oversubscribed host the peer needs the CPU.
    const YIELDS: u32 = 64;

    /// Creates synchronization state for `shards` worker threads.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a sharded run needs at least one shard");
        WindowSync {
            shards,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            vote_accum: AtomicBool::new(false),
            vote_latched: AtomicBool::new(false),
            emit_accum: AtomicU64::new(NONE_NS),
            emit_latched: AtomicU64::new(NONE_NS),
            next: (0..shards).map(|_| PaddedU64::new(NONE_NS)).collect(),
            bound: (0..shards).map(|_| PaddedU64::new(NONE_NS)).collect(),
            frontier: (0..shards).map(|_| PaddedU64::new(0)).collect(),
            inbox_seq: (0..shards).map(|_| PaddedU64::new(0)).collect(),
            traffic: AtomicU64::new(0),
            park: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Number of participating shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Marks the run as failed and wakes every thread blocked at a
    /// barrier. Call from a worker that is about to unwind so its peers
    /// panic instead of waiting forever for a rendezvous it will never
    /// join.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        // Take and drop the park lock so a waiter between its generation
        // check and its condvar wait cannot miss the wake.
        drop(self.park.lock().unwrap_or_else(|e| e.into_inner()));
        self.cv.notify_all();
    }

    /// Whether [`WindowSync::poison`] has been called. Lock-free loops
    /// (frontier spins) poll this so a peer's panic still fails the run
    /// loudly.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    fn check_poison(&self) {
        assert!(
            !self.is_poisoned(),
            "sharded run poisoned: a peer shard panicked"
        );
    }

    /// One rendezvous of the sense-reversing barrier. The last arriver
    /// runs `latch` (publishing any accumulator results) before releasing
    /// the generation ticket, then wakes parked waiters. Everyone else
    /// spins on the ticket, yields a while, and finally parks.
    fn wait_with(&self, latch: impl FnOnce(&Self)) {
        self.check_poison();
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.shards {
            // Safe to reset before the ticket moves: peers leave on the
            // generation, not the arrival count, and cannot re-arrive
            // until the ticket releases them.
            self.arrived.store(0, Ordering::Release);
            latch(self);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            // Close the park race: a waiter either re-checks the ticket
            // under this lock before sleeping or is already waiting.
            drop(self.park.lock().unwrap_or_else(|e| e.into_inner()));
            self.cv.notify_all();
            return;
        }
        let mut rounds = 0u32;
        loop {
            if self.generation.load(Ordering::Acquire) != gen || self.is_poisoned() {
                break;
            }
            rounds += 1;
            if rounds <= Self::SPIN {
                std::hint::spin_loop();
            } else if rounds <= Self::SPIN + Self::YIELDS {
                std::thread::yield_now();
            } else {
                let mut g = self.park.lock().unwrap_or_else(|e| e.into_inner());
                while self.generation.load(Ordering::Acquire) == gen && !self.is_poisoned() {
                    g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
                }
                break;
            }
        }
        self.check_poison();
    }

    fn wait(&self) {
        self.wait_with(|_| {});
    }

    /// Publishes this shard's earliest pending event time and returns the
    /// global minimum over all shards. Every shard must call this once per
    /// window; all callers return the same value.
    pub fn negotiate(&self, shard: usize, local_next: Option<SimTime>) -> Option<SimTime> {
        self.negotiate_bound(shard, local_next, local_next).0
    }

    /// [`WindowSync::negotiate`] that additionally folds each shard's
    /// earliest *bound* (emission-capable) event time. The second
    /// returned value is the group's emission floor: no shard can publish
    /// a message from an event strictly before it, so sub-steps entirely
    /// below it need no rendezvous at all (see [`drive_windows`]).
    pub fn negotiate_bound(
        &self,
        shard: usize,
        local_next: Option<SimTime>,
        local_bound: Option<SimTime>,
    ) -> (Option<SimTime>, Option<SimTime>) {
        self.check_poison();
        self.next[shard]
            .0
            .store(pack(local_next), Ordering::Release);
        self.bound[shard]
            .0
            .store(pack(local_bound), Ordering::Release);
        self.wait();
        let mut g_next = NONE_NS;
        let mut g_bound = NONE_NS;
        for s in 0..self.shards {
            g_next = g_next.min(self.next[s].0.load(Ordering::Acquire));
            g_bound = g_bound.min(self.bound[s].0.load(Ordering::Acquire));
        }
        // Second rendezvous so no shard can overwrite its slot for the
        // next window while a peer is still reading this one.
        self.wait();
        (unpack(g_next), unpack(g_bound))
    }

    /// Barrier after the outbound mailboxes are filled, so the next
    /// window's accept phase on every shard sees all of this window's
    /// messages.
    pub fn exchange(&self) {
        self.wait();
    }

    /// Exchange barrier that doubles as a one-bit vote: every shard
    /// contributes `active` and all shards receive the OR over the group.
    ///
    /// This is the sub-window fast path (see [`drive_windows`]): a single
    /// rendezvous both publishes mailbox visibility *and* decides whether
    /// any shard still has work before the next sub-horizon. One wait
    /// suffices — the latched result can only be overwritten by the next
    /// barrier fill, which requires every shard (including the slowest
    /// reader) to have arrived again.
    pub fn exchange_vote(&self, active: bool) -> bool {
        if active {
            self.vote_accum.store(true, Ordering::Release);
        }
        self.wait_with(|s| {
            s.vote_latched.store(
                s.vote_accum.swap(false, Ordering::AcqRel),
                Ordering::Release,
            );
        });
        self.vote_latched.load(Ordering::Acquire)
    }

    /// Exchange barrier for a horizon fold: every shard contributes its
    /// `active` bit and its *emit floor* — the earliest time at which it
    /// could still cause a cross-shard transmission. All shards receive
    /// the OR of the bits and the min of the floors.
    ///
    /// The same single-wait latch argument as [`WindowSync::exchange_vote`]
    /// applies: the latched pair can only be overwritten by the next
    /// barrier fill, which needs every shard to arrive again.
    pub fn exchange_horizon(
        &self,
        active: bool,
        emit_next: Option<SimTime>,
    ) -> (bool, Option<SimTime>) {
        if active {
            self.vote_accum.store(true, Ordering::Release);
        }
        if let Some(t) = emit_next {
            self.emit_accum.fetch_min(t.as_nanos(), Ordering::AcqRel);
        }
        self.wait_with(|s| {
            s.vote_latched.store(
                s.vote_accum.swap(false, Ordering::AcqRel),
                Ordering::Release,
            );
            s.emit_latched.store(
                s.emit_accum.swap(NONE_NS, Ordering::AcqRel),
                Ordering::Release,
            );
        });
        (
            self.vote_latched.load(Ordering::Acquire),
            unpack(self.emit_latched.load(Ordering::Acquire)),
        )
    }

    /// Raises this shard's execution/emission frontier (monotone): a
    /// promise that it will never again publish a message arriving before
    /// `ns + lookahead`. Store *after* the publishes it covers so a peer
    /// that reads the new frontier also sees their traffic bumps.
    pub fn set_frontier(&self, shard: usize, ns: u64) {
        self.frontier[shard].0.fetch_max(ns, Ordering::AcqRel);
    }

    /// Minimum frontier over the other shards — the receive-bound
    /// certificate: nothing can arrive here before `min + lookahead`.
    /// Read *before* the traffic counter so a drain never misses a
    /// message published under a frontier this call observed.
    pub fn peer_frontier_min(&self, me: usize) -> u64 {
        let mut m = u64::MAX;
        for (s, f) in self.frontier.iter().enumerate() {
            if s != me {
                m = m.min(f.0.load(Ordering::Acquire));
            }
        }
        m
    }

    /// Marks a publish to `dst`: bumps the destination's inbox sequence
    /// and the shared round-traffic counter. Call after the message is in
    /// the mailbox and before raising the frontier.
    pub fn mark_traffic(&self, dst: usize) {
        self.inbox_seq[dst].0.fetch_add(1, Ordering::AcqRel);
        self.traffic.fetch_add(1, Ordering::AcqRel);
    }

    /// Bumps only the shared round-traffic counter (generic callers whose
    /// publish hooks do not track destinations).
    pub fn note_publish(&self) {
        self.traffic.fetch_add(1, Ordering::AcqRel);
    }

    /// Inbox sequence for `shard` — a drain is needed only when this has
    /// moved since the last one.
    pub fn inbox_seq(&self, shard: usize) -> u64 {
        self.inbox_seq[shard].0.load(Ordering::Acquire)
    }

    /// The shared round-traffic counter: total publish marks so far.
    pub fn traffic(&self) -> u64 {
        self.traffic.load(Ordering::Acquire)
    }
}

/// How [`drive_windows`] bounds each execution window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HorizonMode {
    /// Every pending event bounds the horizon: negotiated windows of
    /// `lookahead`, optionally stretched into burst sub-windows (with
    /// rendezvous elided below the negotiated bound floor). Needs no
    /// certificates; the PR-6 behavior plus elision.
    #[default]
    Classic,
    /// Rendezvous-free: shards exchange through lock-free frontier
    /// atomics instead of per-round barriers, and events classed
    /// [`crate::EventClass::Local`] are invisible to the negotiated
    /// emission floor. The `Local` classifications must be backed by
    /// effect-summary certificates.
    Effects,
}

/// Diagnostic exit for a misconfigured environment knob, matching the
/// engine's misconfiguration policy: name the variable and the bad value,
/// never silently coerce.
pub fn env_config_error(var: &str, got: &str, want: &str) -> ! {
    eprintln!("error: {var} must be {want}, got `{got}`");
    std::process::exit(2);
}

/// Horizon mode from the `EDP_HORIZON` environment variable:
/// case-insensitive `effects` selects [`HorizonMode::Effects`] and
/// `classic` the conservative default; unset (or empty) is `classic`.
/// Any other value exits with a diagnostic naming it — a typo must not
/// silently fall back to the slow path.
pub fn horizon_from_env() -> HorizonMode {
    match std::env::var("EDP_HORIZON") {
        Err(std::env::VarError::NotPresent) => HorizonMode::Classic,
        Err(std::env::VarError::NotUnicode(_)) => {
            env_config_error("EDP_HORIZON", "<non-unicode>", "`classic` or `effects`")
        }
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "" => HorizonMode::Classic,
            "classic" => HorizonMode::Classic,
            "effects" => HorizonMode::Effects,
            _ => env_config_error("EDP_HORIZON", &v, "`classic` or `effects`"),
        },
    }
}

/// Counters returned by [`drive_windows`]; identical on every shard of a
/// run (each counted step is a pure function of group-agreed state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveStats {
    /// Negotiated windows executed.
    pub windows: u64,
    /// Barrier rendezvous joined (a negotiation counts its two waits;
    /// every exchange/vote barrier counts one). The true synchronization
    /// cost of the run — the lock-free frontier exchange of
    /// [`HorizonMode::Effects`] joins none inside a window.
    pub barriers: u64,
    /// Sub-steps advanced with *no* rendezvous because the whole span lay
    /// at or below the group's negotiated bound floor (classic-mode
    /// exchange elision). Deterministic: the skip set is a pure function
    /// of the negotiated floor, so every shard counts the same elisions.
    pub elided: u64,
}

/// Burst size from the `EDP_BURST` environment variable (default 1 —
/// exactly the one-sub-window-at-a-time legacy behavior). The knob sizes
/// both packet bursts on the switch fast path and the number of
/// lookahead-sized sub-windows a sharded run executes per negotiated
/// window. Unset (or empty) means 1; anything that is not a positive
/// integer exits with a diagnostic naming the bad value instead of
/// silently running the slow path.
pub fn burst_from_env() -> usize {
    match std::env::var("EDP_BURST") {
        Err(std::env::VarError::NotPresent) => 1,
        Err(std::env::VarError::NotUnicode(_)) => {
            env_config_error("EDP_BURST", "<non-unicode>", "a positive integer")
        }
        Ok(v) => match v.trim() {
            "" => 1,
            t => match t.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => env_config_error("EDP_BURST", &v, "a positive integer"),
            },
        },
    }
}

/// The exclusive event-execution bound for one window: events strictly
/// before the returned time are safe to fire.
///
/// `lookahead` is the minimum simulated-time delay of any cross-shard
/// interaction; `None` means the shards cannot interact at all (no
/// cross-shard links), in which case the whole run up to the deadline is
/// one window. The bound is capped just past `deadline` so an
/// inclusive-deadline run (`t <= deadline`, matching [`Sim::run_until`])
/// never fires later events.
pub fn safe_horizon(
    global_next: SimTime,
    lookahead: Option<SimDuration>,
    deadline: SimTime,
) -> SimTime {
    let cap = deadline.as_nanos().saturating_add(1);
    let h = match lookahead {
        Some(la) => global_next.as_nanos().saturating_add(la.as_nanos()),
        None => cap,
    };
    SimTime::from_nanos(h.min(cap))
}

/// Runs one shard's event loop to `deadline` in conservative windows of up
/// to `subwindows` lookahead-sized sub-steps each (classic mode), or
/// through the lock-free frontier exchange ([`HorizonMode::Effects`]).
///
/// `accept` schedules messages handed over by peers into `sim`; `publish`
/// moves outbound messages into the shared mailboxes and returns the
/// earliest *arrival time* among the messages it just published (`None`
/// when it published nothing). Both run on the shard's own thread.
/// Returns [`DriveStats`], identical on every shard.
///
/// # Sub-windows and elision (classic mode)
///
/// A full window negotiates the global earliest event time (two waits) and
/// then fires everything before `global_next + lookahead` (one exchange
/// wait). But once that window closes, a cheaper induction holds: every
/// message that can arrive before `horizon + lookahead` was sent strictly
/// before `horizon`, and the closing exchange already made it visible. So
/// the shards may keep advancing one lookahead at a time with only a
/// single combined exchange-and-vote barrier per sub-step — no
/// renegotiation — for up to `subwindows` sub-steps. The vote is the
/// early exit: when no shard has a pending event before the next
/// sub-horizon and none published this round, every shard breaks back to
/// negotiation in lockstep and the negotiated minimum jumps the idle gap
/// in one hop.
///
/// *Exchange elision* removes the barrier from sub-steps that provably
/// cannot carry traffic: the negotiation also folds the group's earliest
/// **bound** (emission-capable) event ([`WindowSync::negotiate_bound`]).
/// Every event strictly below that floor is certified emission-free, so a
/// sub-step whose extended horizon stays at or below the floor publishes
/// nothing on any shard — there is nothing to exchange and no vote worth
/// taking, and every shard derives the identical skip from the identical
/// floor. Those sub-steps merge into one free-running span (counted in
/// [`DriveStats::elided`]); the first sub-step past the floor resumes the
/// per-round vote. The executed schedule is identical for every
/// `subwindows >= 1`; `subwindows == 1` is exactly the legacy protocol.
///
/// # The effects horizon: lock-free frontier exchange
///
/// [`HorizonMode::Effects`] replaces the per-round rendezvous with one
/// continuous *frontier session* spanning the whole run. Each shard
/// maintains an atomic frontier `F` — a promise that it will never again
/// publish a message arriving before `F + lookahead` — and repeats, with
/// no barrier:
///
/// 1. read the peers' frontiers; the receive bound is
///    `min(peer F) + lookahead` (nothing can arrive here before it);
/// 2. if the shared traffic counter moved, drain the inbox (messages are
///    published *before* the sender's covering frontier raise, so a
///    reader of the frontier also sees their traffic bumps);
/// 3. fire everything strictly before the receive bound and publish —
///    every fired event is at or past the previous promise, so published
///    arrivals respect it;
/// 4. raise `F` to the receive bound.
///
/// Soundness is the window induction applied per message: a message
/// published after a peer read `F = f` from this shard arrives at or past
/// `f + lookahead`, which is exactly the bound the peer executes below;
/// a message published *before* that read is visible to the peer's
/// traffic check (the publish precedes the frontier raise the peer
/// observed) and is drained before the peer executes. Progress is the
/// classic lookahead argument: the globally smallest frontier always
/// advances, because its owner's receive bound exceeds it. The session
/// ends when every frontier reaches the deadline cap and the traffic
/// counter has quiesced; because a promise is only meaningful while the
/// session lasts, the frontiers are never reused — one session covers the
/// run, and the closing negotiation (which finds no event left at or
/// before the deadline) confirms termination group-wide. The executed
/// schedule is identical to classic mode — the protocol only changes how
/// the shards synchronize, never which events fire.
#[allow(clippy::too_many_arguments)] // deliberate: the low-level engine entry point takes the full window protocol
pub fn drive_windows<W>(
    world: &mut W,
    sim: &mut Sim<W>,
    shard: usize,
    sync: &WindowSync,
    lookahead: Option<SimDuration>,
    deadline: SimTime,
    mode: HorizonMode,
    subwindows: usize,
    mut accept: impl FnMut(&mut W, &mut Sim<W>),
    mut publish: impl FnMut(&mut W, &mut Sim<W>, SimTime) -> Option<SimTime>,
) -> DriveStats {
    let subwindows = subwindows.max(1) as u64;
    let cap = deadline.as_nanos().saturating_add(1);
    // The frontier session needs a finite lookahead; with none the
    // classic path already runs the whole span as one window, which no
    // frontier can improve on.
    let effects = mode == HorizonMode::Effects && lookahead.is_some();
    let mut stats = DriveStats::default();
    loop {
        accept(world, sim);
        prof::lap(prof::Phase::Mailbox);
        let local = sim.peek_next();
        let local_bound = sim.peek_next_bound();
        let (global, global_bound) = sync.negotiate_bound(shard, local, local_bound);
        stats.barriers += 2;
        prof::lap(prof::Phase::Negotiate);
        prof::rendezvous(2);
        let Some(global) = global else {
            break;
        };
        if global > deadline {
            break;
        }
        stats.windows += 1;
        prof::window_begin();
        if effects {
            // One frontier session runs the whole remaining span; every
            // arrival it leaves behind is past the deadline, so the next
            // negotiation terminates the loop (the frontiers, being
            // monotone promises, are never reused).
            drive_frontier_session(
                world,
                sim,
                shard,
                sync,
                lookahead,
                cap,
                &mut accept,
                &mut publish,
            );
            prof::window_end();
            continue;
        }
        let mut horizon = safe_horizon(global, lookahead, deadline);
        let bound_ns = global_bound.map_or(cap, |b| b.as_nanos());
        let mut remaining = subwindows;
        loop {
            // Exchange elision: sub-steps whose whole span stays at or
            // below the group's bound floor cannot publish on any shard —
            // extend the horizon with no rendezvous at all. Every shard
            // derives the same span from the same negotiated floor, so
            // the skip set (and the counters) stay identical group-wide.
            let mut elided_here = 0u64;
            if let Some(la) = lookahead {
                while remaining > 1 && horizon.as_nanos() < cap {
                    let next = horizon.as_nanos().saturating_add(la.as_nanos()).min(cap);
                    if next > bound_ns {
                        break;
                    }
                    horizon = SimTime::from_nanos(next);
                    remaining -= 1;
                    elided_here += 1;
                }
                if elided_here > 0 {
                    stats.elided += elided_here;
                    prof::lap(prof::Phase::Elide);
                }
            }
            sim.run_before(world, horizon);
            prof::lap(prof::Phase::Execute);
            let published = publish(world, sim, horizon).is_some();
            if published {
                sync.note_publish();
            }
            prof::lap(prof::Phase::Mailbox);
            // The dynamic face of the elision proof: a span at or below
            // the bound floor is certified emission-free, so publishing
            // inside one means an effect summary lied (EDP-E007).
            assert!(
                !(published && horizon.as_nanos() <= bound_ns),
                "a message was published inside an elided span ending at {horizon}: \
                 an event below the negotiated bound floor emitted after all (EDP-E007)"
            );
            remaining -= 1;
            // Extend by one more lookahead without renegotiating, unless
            // the sub-window budget or the deadline cap is exhausted.
            let next = match lookahead {
                Some(la) if remaining > 0 && horizon.as_nanos() < cap => {
                    SimTime::from_nanos(horizon.as_nanos().saturating_add(la.as_nanos()).min(cap))
                }
                _ => {
                    sync.exchange();
                    stats.barriers += 1;
                    prof::lap(prof::Phase::Barrier);
                    prof::rendezvous(1);
                    break;
                }
            };
            let active = published || sim.peek_next().is_some_and(|t| t < next);
            let vote = sync.exchange_vote(active);
            stats.barriers += 1;
            prof::lap(prof::Phase::Barrier);
            prof::rendezvous(1);
            if !vote {
                // Every shard idle below `next` and nothing in flight:
                // renegotiate so the global minimum jumps the gap.
                break;
            }
            accept(world, sim);
            prof::lap(prof::Phase::Extend);
            horizon = next;
        }
        prof::window_end();
    }
    // Mirror run_until's clock semantics once the shards agree that
    // nothing at or before the deadline remains.
    sim.fast_forward(deadline);
    stats
}

/// The effects-mode frontier session (see [`drive_windows`]): runs this
/// shard to the deadline cap through the lock-free frontier exchange,
/// joining no barriers. Returns once every shard's frontier has reached
/// the cap and the traffic counter has quiesced past this shard's last
/// drain.
#[allow(clippy::too_many_arguments)]
fn drive_frontier_session<W>(
    world: &mut W,
    sim: &mut Sim<W>,
    shard: usize,
    sync: &WindowSync,
    lookahead: Option<SimDuration>,
    cap: u64,
    accept: &mut impl FnMut(&mut W, &mut Sim<W>),
    publish: &mut impl FnMut(&mut W, &mut Sim<W>, SimTime) -> Option<SimTime>,
) {
    let la = lookahead
        .expect("effects frontier requires lookahead")
        .as_nanos();
    // Stall ladder for waiting on a slow peer's frontier: tuned for
    // sub-microsecond rounds, with a sleep fallback so an oversubscribed
    // host is not starved by busy loops. There is no wake channel on the
    // frontier atomics, so the park is a timed backoff, not a condvar.
    const SPIN: u32 = 64;
    const YIELDS: u32 = 4096;
    // Force a drain on the first iteration: a peer already in its session
    // may have published between this shard's negotiation-top accept and
    // here, and that publish must not be absorbed into the baseline.
    let mut seen_traffic: Option<u64> = None;
    // The exclusive bound this shard has executed to, which is also the
    // frontier value it last promised (both monotone).
    let mut exec_bound: u64 = 0;
    let mut dirty = false;
    let mut stalls = 0u32;
    loop {
        // Order matters: read peer frontiers before the traffic counter,
        // so any message published under an observed frontier raise is
        // seen by the drain below.
        let recv = sync.peer_frontier_min(shard);
        let bound = recv.saturating_add(la).min(cap);
        let traffic_now = sync.traffic();
        if seen_traffic != Some(traffic_now) {
            seen_traffic = Some(traffic_now);
            prof::lap(prof::Phase::Elide);
            accept(world, sim);
            prof::lap(prof::Phase::Mailbox);
            dirty = true;
        }
        let mut progressed = false;
        if bound > exec_bound || dirty {
            prof::lap(prof::Phase::Elide);
            sim.run_before(world, SimTime::from_nanos(bound));
            prof::lap(prof::Phase::Execute);
            // Everything just fired was at or past the previous promise
            // (drained arrivals included — they postdate it), so published
            // arrivals land at or past promise + lookahead.
            let promise_t = SimTime::from_nanos(exec_bound.saturating_add(la).min(cap));
            if publish(world, sim, promise_t).is_some() {
                sync.note_publish();
            }
            prof::lap(prof::Phase::Mailbox);
            progressed = dirty || bound > exec_bound;
            dirty = false;
            if bound > exec_bound {
                exec_bound = bound;
                // Raise the promise only after the publishes it must
                // cover are marked in the traffic counter.
                sync.set_frontier(shard, bound);
            }
        }
        if exec_bound >= cap
            && sync.peer_frontier_min(shard) >= cap
            && Some(sync.traffic()) == seen_traffic
        {
            prof::lap(prof::Phase::Elide);
            break;
        }
        prof::lap(prof::Phase::Elide);
        if progressed {
            stalls = 0;
            continue;
        }
        assert!(
            !sync.is_poisoned(),
            "sharded run poisoned: a peer shard panicked"
        );
        stalls = stalls.saturating_add(1);
        if stalls <= SPIN {
            std::hint::spin_loop();
        } else if stalls <= SPIN + YIELDS {
            std::thread::yield_now();
        } else {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        prof::lap(prof::Phase::Barrier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{EventClass, UNKEYED};

    #[test]
    fn horizon_is_lookahead_past_next_capped_at_deadline() {
        let d = SimTime::from_nanos(1000);
        assert_eq!(
            safe_horizon(
                SimTime::from_nanos(100),
                Some(SimDuration::from_nanos(50)),
                d
            ),
            SimTime::from_nanos(150)
        );
        assert_eq!(
            safe_horizon(
                SimTime::from_nanos(990),
                Some(SimDuration::from_nanos(50)),
                d
            ),
            SimTime::from_nanos(1001),
            "cap is one past the deadline so t == deadline still fires"
        );
        assert_eq!(
            safe_horizon(SimTime::from_nanos(0), None, d),
            SimTime::from_nanos(1001)
        );
    }

    /// Runs the two-shard ping-pong under `subwindows`/`mode` and returns
    /// the per-shard fired-time logs plus the (identical-across-shards)
    /// drive stats.
    fn ping_pong_mode(subwindows: usize, mode: HorizonMode) -> (Vec<u64>, Vec<u64>, DriveStats) {
        use std::sync::Mutex as StdMutex;
        let lookahead = SimDuration::from_nanos(10);
        let deadline = SimTime::from_nanos(200);
        let sync = WindowSync::new(2);
        let mailbox: [StdMutex<Vec<SimTime>>; 2] =
            [StdMutex::new(Vec::new()), StdMutex::new(Vec::new())];
        let log: [StdMutex<Vec<u64>>; 2] = [StdMutex::new(Vec::new()), StdMutex::new(Vec::new())];
        let wins: [StdMutex<DriveStats>; 2] = [
            StdMutex::new(DriveStats::default()),
            StdMutex::new(DriveStats::default()),
        ];

        std::thread::scope(|scope| {
            for me in 0..2usize {
                let sync = &sync;
                let mailbox = &mailbox;
                let log = &log;
                let wins = &wins;
                scope.spawn(move || {
                    // World = (outbox of arrival-times, fired-times log).
                    type World = (Vec<SimTime>, Vec<u64>);
                    let mut world: World = (Vec::new(), Vec::new());
                    let mut sim: Sim<World> = Sim::new();
                    if me == 0 {
                        // Shard 0 serves: every received ping fires a pong.
                        sim.schedule_at(SimTime::ZERO, |w: &mut World, s: &mut Sim<World>| {
                            w.1.push(s.now().as_nanos());
                            w.0.push(s.now() + SimDuration::from_nanos(10));
                        });
                    }
                    let stats = drive_windows(
                        &mut world,
                        &mut sim,
                        me,
                        sync,
                        Some(lookahead),
                        deadline,
                        mode,
                        subwindows,
                        |_w, s| {
                            let mut inbox = mailbox[me].lock().unwrap();
                            for at in inbox.drain(..) {
                                s.schedule_keyed_at(
                                    at,
                                    0,
                                    move |w: &mut World, s: &mut Sim<World>| {
                                        w.1.push(s.now().as_nanos());
                                        let reply = s.now() + SimDuration::from_nanos(10);
                                        if reply <= SimTime::from_nanos(100) {
                                            w.0.push(reply);
                                        }
                                    },
                                );
                            }
                        },
                        |w, _s, _horizon| {
                            if w.0.is_empty() {
                                return None;
                            }
                            let peer = 1 - me;
                            let min_arrival = w.0.iter().copied().min();
                            mailbox[peer].lock().unwrap().append(&mut w.0);
                            sync.mark_traffic(peer);
                            min_arrival
                        },
                    );
                    assert!(stats.windows >= 1 || me == 1);
                    *wins[me].lock().unwrap() = stats;
                    *log[me].lock().unwrap() = world.1;
                });
            }
        });

        let l0 = log[0].lock().unwrap().clone();
        let l1 = log[1].lock().unwrap().clone();
        let (w0, w1) = (*wins[0].lock().unwrap(), *wins[1].lock().unwrap());
        assert_eq!(w0, w1, "drive stats must agree across shards");
        (l0, l1, w0)
    }

    fn ping_pong(subwindows: usize) -> (Vec<u64>, Vec<u64>, u64) {
        let (l0, l1, stats) = ping_pong_mode(subwindows, HorizonMode::Classic);
        (l0, l1, stats.windows)
    }

    #[test]
    fn two_shards_exchange_messages_deterministically() {
        // Shard 0 fired at 0, 20, 40, ... and shard 1 at 10, 30, ... until
        // the reply cutoff at t=100.
        let (l0, l1, _) = ping_pong(1);
        assert_eq!(l0, vec![0, 20, 40, 60, 80, 100]);
        assert_eq!(l1, vec![10, 30, 50, 70, 90]);
    }

    #[test]
    fn subwindows_preserve_the_schedule_and_collapse_negotiations() {
        let (l0_base, l1_base, w_base) = ping_pong(1);
        for sub in [2usize, 8, 32] {
            let (l0, l1, w) = ping_pong(sub);
            assert_eq!(l0, l0_base, "subwindows={sub} changed shard 0's schedule");
            assert_eq!(l1, l1_base, "subwindows={sub} changed shard 1's schedule");
            assert!(
                w < w_base,
                "subwindows={sub} should negotiate fewer windows ({w} vs {w_base})"
            );
        }
    }

    #[test]
    fn effects_horizon_preserves_the_schedule_and_collapses_negotiations() {
        let (l0_base, l1_base, w_base) = ping_pong(1);
        let (l0, l1, stats) = ping_pong_mode(1, HorizonMode::Effects);
        assert_eq!(l0, l0_base, "effects horizon changed shard 0's schedule");
        assert_eq!(l1, l1_base, "effects horizon changed shard 1's schedule");
        assert!(
            stats.windows < w_base,
            "effects horizon should negotiate fewer windows ({} vs {w_base})",
            stats.windows
        );
    }

    #[test]
    fn effects_frontier_joins_no_barriers_inside_the_session() {
        let (_, _, base) = ping_pong_mode(1, HorizonMode::Classic);
        let (_, _, stats) = ping_pong_mode(1, HorizonMode::Effects);
        // Two negotiations (opening + termination), two waits each — the
        // session itself is rendezvous-free.
        assert_eq!(stats.barriers, 4, "frontier session must not rendezvous");
        assert!(stats.barriers * 4 < base.barriers);
    }

    /// A shard whose whole frontier is certified local must not drag its
    /// peer through per-event rendezvous: the effects horizon runs the
    /// chain out with no barriers at all, and the classic loop elides the
    /// barrier for every sub-step below the negotiated bound floor.
    fn local_chain(mode: HorizonMode, subwindows: usize) -> (Vec<u64>, DriveStats) {
        use std::sync::Mutex as StdMutex;
        let sync = WindowSync::new(2);
        let log: StdMutex<Vec<u64>> = StdMutex::new(Vec::new());
        let stats_out: StdMutex<DriveStats> = StdMutex::new(DriveStats::default());

        std::thread::scope(|scope| {
            for me in 0..2usize {
                let sync = &sync;
                let log = &log;
                let stats_out = &stats_out;
                scope.spawn(move || {
                    type World = Vec<u64>;
                    let mut world: World = Vec::new();
                    let mut sim: Sim<World> = Sim::new();
                    if me == 0 {
                        // A self-perpetuating certified-local chain: fires
                        // every 5 ns, never publishes anything.
                        fn tick(w: &mut Vec<u64>, s: &mut Sim<Vec<u64>>) {
                            w.push(s.now().as_nanos());
                            let next = s.now() + SimDuration::from_nanos(5);
                            if next <= SimTime::from_nanos(100) {
                                s.schedule_classed_at(next, UNKEYED, EventClass::Local, tick);
                            }
                        }
                        sim.schedule_classed_at(SimTime::ZERO, UNKEYED, EventClass::Local, tick);
                    }
                    let stats = drive_windows(
                        &mut world,
                        &mut sim,
                        me,
                        sync,
                        Some(SimDuration::from_nanos(10)),
                        SimTime::from_nanos(200),
                        mode,
                        subwindows,
                        |_w, _s| {},
                        |_w, _s, _horizon| None,
                    );
                    if me == 0 {
                        *log.lock().unwrap() = world;
                        *stats_out.lock().unwrap() = stats;
                    }
                });
            }
        });

        let l = log.lock().unwrap().clone();
        let stats = *stats_out.lock().unwrap();
        (l, stats)
    }

    #[test]
    fn certified_local_chain_runs_in_one_extended_window() {
        let (l_classic, s_classic) = local_chain(HorizonMode::Classic, 1);
        let (l_effects, s_effects) = local_chain(HorizonMode::Effects, 1);
        assert_eq!(l_effects, l_classic, "schedule must not change");
        assert_eq!(l_classic, (0..=100).step_by(5).collect::<Vec<u64>>());
        assert_eq!(
            s_effects.windows, 1,
            "one negotiation covers the whole certified-local chain"
        );
        assert!(
            s_effects.barriers < s_classic.barriers,
            "effects barriers {} must undercut classic {}",
            s_effects.barriers,
            s_classic.barriers
        );
    }

    #[test]
    fn classic_elision_skips_barriers_below_the_bound_floor() {
        // With no bound event anywhere, every burst sub-step lies below
        // the (absent) floor: the whole budget free-runs with a single
        // closing exchange per window instead of a vote per sub-step.
        let (l_base, s_base) = local_chain(HorizonMode::Classic, 1);
        let (l, s) = local_chain(HorizonMode::Classic, 32);
        assert_eq!(l, l_base, "elision changed the schedule");
        assert!(s.elided > 0, "certified-local span must elide sub-steps");
        assert!(
            s.barriers * 4 < s_base.barriers,
            "elided barriers {} vs per-step {}",
            s.barriers,
            s_base.barriers
        );
    }

    #[test]
    fn exchange_horizon_ors_votes_and_mins_floors() {
        let sync = std::sync::Arc::new(WindowSync::new(2));
        let t = SimTime::from_nanos;
        let peer = {
            let sync = std::sync::Arc::clone(&sync);
            std::thread::spawn(move || {
                [
                    sync.exchange_horizon(false, Some(t(10))),
                    sync.exchange_horizon(true, Some(t(30))),
                    sync.exchange_horizon(false, None),
                ]
            })
        };
        let got = [
            sync.exchange_horizon(false, None),
            sync.exchange_horizon(false, Some(t(20))),
            sync.exchange_horizon(false, None),
        ];
        let want = [(false, Some(t(10))), (true, Some(t(20))), (false, None)];
        assert_eq!(got, want);
        assert_eq!(peer.join().unwrap(), want);
    }

    #[test]
    fn horizon_env_defaults_to_classic() {
        if std::env::var("EDP_HORIZON").is_err() {
            assert_eq!(horizon_from_env(), HorizonMode::Classic);
        }
    }

    #[test]
    fn exchange_vote_ors_across_shards() {
        let sync = std::sync::Arc::new(WindowSync::new(2));
        let peer = {
            let sync = std::sync::Arc::clone(&sync);
            std::thread::spawn(move || {
                let rounds = [false, true, false];
                rounds.map(|mine| sync.exchange_vote(mine))
            })
        };
        let got = [false, false, true].map(|mine| sync.exchange_vote(mine));
        assert_eq!(got, [false, true, true]);
        assert_eq!(peer.join().unwrap(), [false, true, true]);
    }

    #[test]
    fn burst_env_defaults_to_one() {
        // The suite must not mutate process-global env (tests run in
        // parallel); with the variable unset the default is the legacy
        // single-packet behavior.
        if std::env::var("EDP_BURST").is_err() {
            assert_eq!(burst_from_env(), 1);
        }
    }

    #[test]
    fn frontier_and_traffic_counters_are_monotone() {
        let sync = WindowSync::new(3);
        assert_eq!(sync.peer_frontier_min(0), 0);
        sync.set_frontier(1, 100);
        sync.set_frontier(2, 50);
        assert_eq!(sync.peer_frontier_min(0), 50);
        assert_eq!(sync.peer_frontier_min(2), 0, "own slot is excluded");
        sync.set_frontier(2, 20);
        assert_eq!(sync.peer_frontier_min(0), 50, "frontiers never retreat");
        let t0 = sync.traffic();
        let s0 = sync.inbox_seq(1);
        sync.mark_traffic(1);
        assert_eq!(sync.traffic(), t0 + 1);
        assert_eq!(sync.inbox_seq(1), s0 + 1);
        assert_eq!(sync.inbox_seq(0), 0, "other inboxes untouched");
        sync.note_publish();
        assert_eq!(sync.traffic(), t0 + 2);
    }

    #[test]
    fn poison_wakes_a_blocked_peer_and_panics_it() {
        let sync = std::sync::Arc::new(WindowSync::new(2));
        let peer = {
            let sync = std::sync::Arc::clone(&sync);
            std::thread::spawn(move || sync.negotiate(0, Some(SimTime::ZERO)))
        };
        // Give the peer time to park at the first rendezvous, then poison
        // instead of joining it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        sync.poison();
        let out = peer.join();
        assert!(out.is_err(), "poisoned waiter must panic, not hang");
        // Later arrivals see the poison immediately.
        let late = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sync.exchange()));
        assert!(late.is_err());
    }
}
