//! Conservative safe-horizon window execution for sharded simulations.
//!
//! A sharded run partitions the world across worker threads, each owning a
//! [`Sim`] of its own. The classic conservative parallel-discrete-event
//! argument applies: if every cross-shard interaction takes at least
//! `lookahead` of simulated time to arrive, then once the shards agree on
//! the globally earliest pending event time `global_next`, every event
//! strictly before `global_next + lookahead` can be executed without ever
//! receiving a message that should have pre-empted it. The shards therefore
//! proceed in *windows*:
//!
//! 1. accept messages delivered at the previous window's close,
//! 2. publish the local earliest pending-event time and take the global
//!    minimum ([`WindowSync::negotiate`]),
//! 3. fire everything strictly before the safe horizon
//!    ([`Sim::run_before`]),
//! 4. hand outbound messages to their destination shards and barrier
//!    ([`WindowSync::exchange`]) so step 1 of the next window sees them.
//!
//! When burst mode is on (`EDP_BURST > 1`, see [`burst_from_env`]) a
//! negotiated window is stretched into up to that many lookahead-sized
//! sub-windows, each closed by a single combined exchange-and-vote barrier
//! ([`WindowSync::exchange_vote`]) instead of a fresh negotiation — see
//! [`drive_windows`] for the induction that keeps this conservative.
//!
//! The loop ends when no shard has an event at or before the deadline;
//! messages cannot appear out of thin air, so the shards agree on that
//! state. What makes the merged schedule *byte-identical* to a
//! single-threaded run is not this module but the ordering keys carried by
//! the messages themselves (see [`Sim::schedule_keyed_at`]).
//!
//! The rendezvous is poisonable: a worker that panics mid-window calls
//! [`WindowSync::poison`] before unwinding, which wakes every peer blocked
//! at a barrier and makes it panic too — the run fails loudly instead of
//! deadlocking on a barrier that will never fill.

use crate::sim::Sim;
use crate::time::{SimDuration, SimTime};
use std::sync::{Condvar, Mutex, MutexGuard};

struct SyncState {
    /// Per-shard earliest-pending-event slots for the negotiation.
    next: Vec<Option<SimTime>>,
    /// Threads currently parked at the barrier.
    arrived: usize,
    /// Bumped each time the barrier fills; waiters leave when it changes.
    generation: u64,
    /// Set by [`WindowSync::poison`]; every waiter panics on observing it.
    poisoned: bool,
    /// OR-accumulator for the in-progress [`WindowSync::exchange_vote`].
    vote_accum: bool,
    /// The accumulated vote of the barrier round that last filled.
    vote_latched: bool,
}

/// Shared barrier state for one sharded run: a reusable, poisonable
/// rendezvous plus a per-shard slot for the earliest-pending-event
/// negotiation.
pub struct WindowSync {
    state: Mutex<SyncState>,
    cv: Condvar,
    shards: usize,
}

impl WindowSync {
    /// Creates synchronization state for `shards` worker threads.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a sharded run needs at least one shard");
        WindowSync {
            state: Mutex::new(SyncState {
                next: vec![None; shards],
                arrived: 0,
                generation: 0,
                poisoned: false,
                vote_accum: false,
                vote_latched: false,
            }),
            cv: Condvar::new(),
            shards,
        }
    }

    /// Number of participating shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    fn lock(&self) -> MutexGuard<'_, SyncState> {
        // A peer that panicked while holding the lock poisons the mutex;
        // the explicit `poisoned` flag below is the real signal, so keep
        // going and let the flag check raise the meaningful panic.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Marks the run as failed and wakes every thread blocked at a
    /// barrier. Call from a worker that is about to unwind so its peers
    /// panic instead of waiting forever for a rendezvous it will never
    /// join.
    pub fn poison(&self) {
        let mut st = self.lock();
        st.poisoned = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut st = self.lock();
        assert!(!st.poisoned, "sharded run poisoned: a peer shard panicked");
        st.arrived += 1;
        if st.arrived == self.shards {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return;
        }
        let generation = st.generation;
        while st.generation == generation && !st.poisoned {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        assert!(!st.poisoned, "sharded run poisoned: a peer shard panicked");
    }

    /// Publishes this shard's earliest pending event time and returns the
    /// global minimum over all shards. Every shard must call this once per
    /// window; all callers return the same value.
    pub fn negotiate(&self, shard: usize, local_next: Option<SimTime>) -> Option<SimTime> {
        {
            let mut st = self.lock();
            assert!(!st.poisoned, "sharded run poisoned: a peer shard panicked");
            st.next[shard] = local_next;
        }
        self.wait();
        let global = {
            let st = self.lock();
            st.next.iter().filter_map(|t| *t).min()
        };
        // Second rendezvous so no shard can overwrite its slot for the
        // next window while a peer is still reading this one.
        self.wait();
        global
    }

    /// Barrier after the outbound mailboxes are filled, so the next
    /// window's accept phase on every shard sees all of this window's
    /// messages.
    pub fn exchange(&self) {
        self.wait();
    }

    /// Exchange barrier that doubles as a one-bit vote: every shard
    /// contributes `active` and all shards receive the OR over the group.
    ///
    /// This is the sub-window fast path (see [`drive_windows`]): a single
    /// rendezvous both publishes mailbox visibility *and* decides whether
    /// any shard still has work before the next sub-horizon. One wait
    /// suffices — the latched result can only be overwritten by the next
    /// barrier fill, which requires every shard (including the slowest
    /// reader, which reads under the same lock it wakes with) to have
    /// arrived again.
    pub fn exchange_vote(&self, active: bool) -> bool {
        let mut st = self.lock();
        assert!(!st.poisoned, "sharded run poisoned: a peer shard panicked");
        st.vote_accum |= active;
        st.arrived += 1;
        if st.arrived == self.shards {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            st.vote_latched = st.vote_accum;
            st.vote_accum = false;
            self.cv.notify_all();
            return st.vote_latched;
        }
        let generation = st.generation;
        while st.generation == generation && !st.poisoned {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        assert!(!st.poisoned, "sharded run poisoned: a peer shard panicked");
        st.vote_latched
    }
}

/// Burst size from the `EDP_BURST` environment variable (default 1 —
/// exactly today's one-at-a-time behavior). The knob sizes both packet
/// bursts on the switch fast path and the number of lookahead-sized
/// sub-windows a sharded run executes per negotiated window.
pub fn burst_from_env() -> usize {
    std::env::var("EDP_BURST")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// The exclusive event-execution bound for one window: events strictly
/// before the returned time are safe to fire.
///
/// `lookahead` is the minimum simulated-time delay of any cross-shard
/// interaction; `None` means the shards cannot interact at all (no
/// cross-shard links), in which case the whole run up to the deadline is
/// one window. The bound is capped just past `deadline` so an
/// inclusive-deadline run (`t <= deadline`, matching [`Sim::run_until`])
/// never fires later events.
pub fn safe_horizon(
    global_next: SimTime,
    lookahead: Option<SimDuration>,
    deadline: SimTime,
) -> SimTime {
    let cap = deadline.as_nanos().saturating_add(1);
    let h = match lookahead {
        Some(la) => global_next.as_nanos().saturating_add(la.as_nanos()),
        None => cap,
    };
    SimTime::from_nanos(h.min(cap))
}

/// Runs one shard's event loop to `deadline` in conservative windows of up
/// to `subwindows` lookahead-sized sub-steps each.
///
/// `accept` schedules messages handed over at the previous barrier into
/// `sim`; `publish` moves outbound messages into the shared mailboxes and
/// reports whether it published anything. Both run on the shard's own
/// thread. Returns the number of *negotiated* windows executed (identical
/// on every shard).
///
/// # Sub-windows
///
/// A full window negotiates the global earliest event time (two waits) and
/// then fires everything before `global_next + lookahead` (one exchange
/// wait). But once that window closes, a cheaper induction holds: every
/// message that can arrive before `horizon + lookahead` was sent strictly
/// before `horizon`, and the closing exchange already made it visible. So
/// the shards may keep advancing one lookahead at a time with only a
/// single combined exchange-and-vote barrier per sub-step — no
/// renegotiation — for up to `subwindows` sub-steps. The vote is the
/// early exit: when no shard has a pending event before the next
/// sub-horizon and none published this round, every shard breaks back to
/// negotiation in lockstep and the negotiated minimum jumps the idle gap
/// in one hop. The executed event schedule is identical for every
/// `subwindows >= 1`; `subwindows == 1` is exactly the legacy protocol.
#[allow(clippy::too_many_arguments)] // deliberate: the low-level engine entry point takes the full window protocol
pub fn drive_windows<W>(
    world: &mut W,
    sim: &mut Sim<W>,
    shard: usize,
    sync: &WindowSync,
    lookahead: Option<SimDuration>,
    deadline: SimTime,
    subwindows: usize,
    mut accept: impl FnMut(&mut W, &mut Sim<W>),
    mut publish: impl FnMut(&mut W, &mut Sim<W>) -> bool,
) -> u64 {
    let subwindows = subwindows.max(1) as u64;
    let cap = deadline.as_nanos().saturating_add(1);
    let mut windows = 0u64;
    loop {
        accept(world, sim);
        let local = sim.peek_next();
        let Some(global) = sync.negotiate(shard, local) else {
            break;
        };
        if global > deadline {
            break;
        }
        windows += 1;
        let mut horizon = safe_horizon(global, lookahead, deadline);
        let mut remaining = subwindows;
        loop {
            sim.run_before(world, horizon);
            let published = publish(world, sim);
            remaining -= 1;
            // Extend by one more lookahead without renegotiating, unless
            // the sub-window budget or the deadline cap is exhausted.
            let next = match lookahead {
                Some(la) if remaining > 0 && horizon.as_nanos() < cap => {
                    SimTime::from_nanos(horizon.as_nanos().saturating_add(la.as_nanos()).min(cap))
                }
                _ => {
                    sync.exchange();
                    break;
                }
            };
            let active = published || sim.peek_next().is_some_and(|t| t < next);
            if !sync.exchange_vote(active) {
                // Every shard idle below `next` and nothing in flight:
                // renegotiate so the global minimum jumps the gap.
                break;
            }
            accept(world, sim);
            horizon = next;
        }
    }
    // Mirror run_until's clock semantics once the shards agree that
    // nothing at or before the deadline remains.
    sim.fast_forward(deadline);
    windows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_is_lookahead_past_next_capped_at_deadline() {
        let d = SimTime::from_nanos(1000);
        assert_eq!(
            safe_horizon(
                SimTime::from_nanos(100),
                Some(SimDuration::from_nanos(50)),
                d
            ),
            SimTime::from_nanos(150)
        );
        assert_eq!(
            safe_horizon(
                SimTime::from_nanos(990),
                Some(SimDuration::from_nanos(50)),
                d
            ),
            SimTime::from_nanos(1001),
            "cap is one past the deadline so t == deadline still fires"
        );
        assert_eq!(
            safe_horizon(SimTime::from_nanos(0), None, d),
            SimTime::from_nanos(1001)
        );
    }

    /// Runs the two-shard ping-pong under `subwindows` and returns the
    /// per-shard fired-time logs plus the (identical-across-shards)
    /// window count.
    fn ping_pong(subwindows: usize) -> (Vec<u64>, Vec<u64>, u64) {
        use std::sync::Mutex as StdMutex;
        let lookahead = SimDuration::from_nanos(10);
        let deadline = SimTime::from_nanos(200);
        let sync = WindowSync::new(2);
        let mailbox: [StdMutex<Vec<SimTime>>; 2] =
            [StdMutex::new(Vec::new()), StdMutex::new(Vec::new())];
        let log: [StdMutex<Vec<u64>>; 2] = [StdMutex::new(Vec::new()), StdMutex::new(Vec::new())];
        let wins: [StdMutex<u64>; 2] = [StdMutex::new(0), StdMutex::new(0)];

        std::thread::scope(|scope| {
            for me in 0..2usize {
                let sync = &sync;
                let mailbox = &mailbox;
                let log = &log;
                let wins = &wins;
                scope.spawn(move || {
                    // World = (outbox of send-times, fired-times log).
                    type World = (Vec<SimTime>, Vec<u64>);
                    let mut world: World = (Vec::new(), Vec::new());
                    let mut sim: Sim<World> = Sim::new();
                    if me == 0 {
                        // Shard 0 serves: every received ping fires a pong.
                        sim.schedule_at(SimTime::ZERO, |w: &mut World, s: &mut Sim<World>| {
                            w.1.push(s.now().as_nanos());
                            w.0.push(s.now() + SimDuration::from_nanos(10));
                        });
                    }
                    let windows = drive_windows(
                        &mut world,
                        &mut sim,
                        me,
                        sync,
                        Some(lookahead),
                        deadline,
                        subwindows,
                        |_w, s| {
                            let mut inbox = mailbox[me].lock().unwrap();
                            for at in inbox.drain(..) {
                                s.schedule_keyed_at(
                                    at,
                                    0,
                                    move |w: &mut World, s: &mut Sim<World>| {
                                        w.1.push(s.now().as_nanos());
                                        let reply = s.now() + SimDuration::from_nanos(10);
                                        if reply <= SimTime::from_nanos(100) {
                                            w.0.push(reply);
                                        }
                                    },
                                );
                            }
                        },
                        |w, _s| {
                            let peer = 1 - me;
                            let sent = !w.0.is_empty();
                            mailbox[peer].lock().unwrap().append(&mut w.0);
                            sent
                        },
                    );
                    assert!(windows >= 1 || me == 1);
                    *wins[me].lock().unwrap() = windows;
                    *log[me].lock().unwrap() = world.1;
                });
            }
        });

        let l0 = log[0].lock().unwrap().clone();
        let l1 = log[1].lock().unwrap().clone();
        let (w0, w1) = (*wins[0].lock().unwrap(), *wins[1].lock().unwrap());
        assert_eq!(w0, w1, "window count must agree across shards");
        (l0, l1, w0)
    }

    #[test]
    fn two_shards_exchange_messages_deterministically() {
        // Shard 0 fired at 0, 20, 40, ... and shard 1 at 10, 30, ... until
        // the reply cutoff at t=100.
        let (l0, l1, _) = ping_pong(1);
        assert_eq!(l0, vec![0, 20, 40, 60, 80, 100]);
        assert_eq!(l1, vec![10, 30, 50, 70, 90]);
    }

    #[test]
    fn subwindows_preserve_the_schedule_and_collapse_negotiations() {
        let (l0_base, l1_base, w_base) = ping_pong(1);
        for sub in [2usize, 8, 32] {
            let (l0, l1, w) = ping_pong(sub);
            assert_eq!(l0, l0_base, "subwindows={sub} changed shard 0's schedule");
            assert_eq!(l1, l1_base, "subwindows={sub} changed shard 1's schedule");
            assert!(
                w < w_base,
                "subwindows={sub} should negotiate fewer windows ({w} vs {w_base})"
            );
        }
    }

    #[test]
    fn exchange_vote_ors_across_shards() {
        let sync = std::sync::Arc::new(WindowSync::new(2));
        let peer = {
            let sync = std::sync::Arc::clone(&sync);
            std::thread::spawn(move || {
                let rounds = [false, true, false];
                rounds.map(|mine| sync.exchange_vote(mine))
            })
        };
        let got = [false, false, true].map(|mine| sync.exchange_vote(mine));
        assert_eq!(got, [false, true, true]);
        assert_eq!(peer.join().unwrap(), [false, true, true]);
    }

    #[test]
    fn burst_env_defaults_to_one() {
        // The suite must not mutate process-global env (tests run in
        // parallel); with the variable unset the default is the legacy
        // single-packet behavior.
        if std::env::var("EDP_BURST").is_err() {
            assert_eq!(burst_from_env(), 1);
        }
    }

    #[test]
    fn poison_wakes_a_blocked_peer_and_panics_it() {
        let sync = std::sync::Arc::new(WindowSync::new(2));
        let peer = {
            let sync = std::sync::Arc::clone(&sync);
            std::thread::spawn(move || sync.negotiate(0, Some(SimTime::ZERO)))
        };
        // Give the peer time to park at the first rendezvous, then poison
        // instead of joining it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        sync.poison();
        let out = peer.join();
        assert!(out.is_err(), "poisoned waiter must panic, not hang");
        // Later arrivals see the poison immediately.
        let late = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sync.exchange()));
        assert!(late.is_err());
    }
}
