//! A hashed timer wheel.
//!
//! Cycle-level datapath models (the SUME Event Switch timer block) need a
//! hardware-shaped timer: O(1) arm/advance per tick, fixed memory, and
//! expiry in cycle units rather than via the global event heap. This wheel
//! mirrors the classic Varghese–Lauck scheme: `slots` buckets, each holding
//! timers whose remaining rounds are decremented as the cursor passes.

/// Handle to an armed timer, usable with [`TimerWheel::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

#[derive(Debug)]
struct Armed<T> {
    id: TimerId,
    rounds: u64,
    payload: T,
}

/// A hashed timer wheel over payloads `T`, advanced one tick at a time.
#[derive(Debug)]
pub struct TimerWheel<T> {
    slots: Vec<Vec<Armed<T>>>,
    cursor: usize,
    next_id: u64,
    armed: usize,
    ticks: u64,
}

impl<T> TimerWheel<T> {
    /// Creates a wheel with `slots` buckets (rounded up to at least 1).
    pub fn new(slots: usize) -> Self {
        let slots = slots.max(1);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            cursor: 0,
            next_id: 0,
            armed: 0,
            ticks: 0,
        }
    }

    /// Number of currently armed timers.
    pub fn armed(&self) -> usize {
        self.armed
    }

    /// Total ticks advanced so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Arms a timer that expires after exactly `delay` ticks (so `delay = 1`
    /// expires on the next [`TimerWheel::tick`]). `delay = 0` is rounded up
    /// to 1: hardware timers cannot fire in the cycle that arms them.
    pub fn arm(&mut self, delay: u64, payload: T) -> TimerId {
        let delay = delay.max(1);
        let id = TimerId(self.next_id);
        self.next_id += 1;
        let n = self.slots.len() as u64;
        let slot = ((self.cursor as u64 + delay) % n) as usize;
        self.slots[slot].push(Armed {
            id,
            rounds: (delay - 1) / n,
            payload,
        });
        self.armed += 1;
        id
    }

    /// Cancels an armed timer; `false` if it already fired or was cancelled.
    /// O(slot length).
    pub fn cancel(&mut self, id: TimerId) -> bool {
        for slot in &mut self.slots {
            if let Some(pos) = slot.iter().position(|a| a.id == id) {
                slot.swap_remove(pos);
                self.armed -= 1;
                return true;
            }
        }
        false
    }

    /// Advances one tick and collects every timer that expires on it.
    ///
    /// Expired timers are returned in arming order (stable within a slot),
    /// keeping downstream event processing deterministic.
    pub fn tick(&mut self) -> Vec<T> {
        self.ticks += 1;
        self.cursor = (self.cursor + 1) % self.slots.len();
        let slot = &mut self.slots[self.cursor];
        let mut expired = Vec::new();
        let mut kept = Vec::with_capacity(slot.len());
        for mut a in slot.drain(..) {
            if a.rounds == 0 {
                expired.push(a);
            } else {
                a.rounds -= 1;
                kept.push(a);
            }
        }
        *slot = kept;
        self.armed -= expired.len();
        expired.sort_by_key(|a| a.id.0);
        expired.into_iter().map(|a| a.payload).collect()
    }

    /// Advances `n` ticks, collecting `(tick_offset, payload)` for each
    /// expiry, where `tick_offset` is 1-based from the call.
    pub fn advance(&mut self, n: u64) -> Vec<(u64, T)> {
        let mut out = Vec::new();
        for i in 1..=n {
            for p in self.tick() {
                out.push((i, p));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_exact_delay() {
        let mut w = TimerWheel::new(8);
        w.arm(3, "a");
        assert!(w.tick().is_empty());
        assert!(w.tick().is_empty());
        assert_eq!(w.tick(), vec!["a"]);
        assert_eq!(w.armed(), 0);
    }

    #[test]
    fn wraps_around_with_rounds() {
        let mut w = TimerWheel::new(4);
        w.arm(10, 1u32); // 2 full rounds + 2
        let fired = w.advance(9);
        assert!(fired.is_empty());
        assert_eq!(w.tick(), vec![1]);
    }

    #[test]
    fn zero_delay_rounds_up_to_one() {
        let mut w = TimerWheel::new(4);
        w.arm(0, ());
        assert_eq!(w.tick().len(), 1);
    }

    #[test]
    fn cancel_removes() {
        let mut w = TimerWheel::new(4);
        let id = w.arm(2, "x");
        assert!(w.cancel(id));
        assert!(!w.cancel(id));
        assert!(w.advance(8).is_empty());
    }

    #[test]
    fn same_slot_ordering_is_stable() {
        let mut w = TimerWheel::new(4);
        w.arm(2, 1);
        w.arm(2, 2);
        w.arm(2, 3);
        w.tick();
        assert_eq!(w.tick(), vec![1, 2, 3]);
    }

    #[test]
    fn delays_equal_to_slot_count() {
        let mut w = TimerWheel::new(4);
        w.arm(4, "wrap");
        assert!(w.advance(3).is_empty());
        assert_eq!(w.tick(), vec!["wrap"]);
    }

    #[test]
    fn many_timers_all_fire_once() {
        let mut w = TimerWheel::new(16);
        for i in 1..=200u64 {
            w.arm(i, i);
        }
        let fired = w.advance(200);
        assert_eq!(fired.len(), 200);
        for (tick, v) in fired {
            assert_eq!(tick, v, "timer {v} fired at tick {tick}");
        }
    }
}
