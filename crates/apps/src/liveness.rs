//! Liveness monitoring in the data plane (§5 student project).
//!
//! A monitoring switch "periodically checks the liveness of neighboring
//! network devices by transmitting echo request packets and waiting for
//! replies. Upon detecting failure of a neighbor, the data plane
//! transmits notifications to a central monitor, with no intervention by
//! the control plane."
//!
//! * [`LivenessMonitor`] — timer event 0 generates a probe per neighbor
//!   (packet generation from the data plane!); timer event 1 sweeps
//!   `last_heard` and declares neighbors dead after `timeout`.
//! * [`LivenessReflector`] — the neighbor's data plane turns requests
//!   into replies without touching its control plane. A `dead` flag
//!   (settable via a control-plane event) simulates a soft failure that
//!   produces **no** link-status signal — exactly the case where probing
//!   is needed at all.

use edp_core::event::{ControlPlaneEvent, TimerEvent};
use edp_core::{EventActions, EventProgram};
use edp_evsim::SimTime;
use edp_packet::{AppHeader, LivenessHeader, LivenessKind, Packet, PacketBuilder, ParsedPacket};
use edp_pisa::{Destination, PisaProgram, PortId, StdMeta};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Timer id for probe generation.
pub const TIMER_PROBE: u16 = 0;
/// Timer id for the timeout sweep.
pub const TIMER_CHECK: u16 = 1;
/// Control-plane notification code: neighbor declared dead.
pub const NOTIFY_NEIGHBOR_DEAD: u32 = 10;
/// Control-plane opcode: simulate a soft failure of a reflector.
pub const CP_OP_KILL: u32 = 11;

/// A monitored neighbor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Neighbor {
    /// The port this neighbor hangs off.
    pub port: PortId,
    /// Its IPv4 address (probe destination).
    pub addr: Ipv4Addr,
}

#[derive(Debug, Clone, Copy)]
struct NeighborState {
    last_heard: SimTime,
    declared_dead: Option<SimTime>,
    rtt_last_ns: u64,
}

/// The monitoring switch's program.
#[derive(Debug)]
pub struct LivenessMonitor {
    /// This monitor's address (probe source).
    pub addr: Ipv4Addr,
    /// Monitored neighbors.
    pub neighbors: Vec<Neighbor>,
    states: Vec<NeighborState>,
    /// Declare dead after this long without a reply.
    pub timeout_ns: u64,
    seq: u32,
    /// Probes sent.
    pub probes_sent: u64,
    /// Replies received.
    pub replies_received: u64,
}

impl LivenessMonitor {
    /// Creates the monitor.
    pub fn new(addr: Ipv4Addr, neighbors: Vec<Neighbor>, timeout_ns: u64) -> Self {
        let states = neighbors
            .iter()
            .map(|_| NeighborState {
                last_heard: SimTime::ZERO,
                declared_dead: None,
                rtt_last_ns: 0,
            })
            .collect();
        LivenessMonitor {
            addr,
            neighbors,
            states,
            timeout_ns,
            seq: 0,
            probes_sent: 0,
            replies_received: 0,
        }
    }

    /// When neighbor `i` was declared dead, if it was.
    pub fn declared_dead_at(&self, i: usize) -> Option<SimTime> {
        self.states[i].declared_dead
    }

    /// Last observed RTT for neighbor `i` in ns (0 before first reply).
    pub fn rtt_ns(&self, i: usize) -> u64 {
        self.states[i].rtt_last_ns
    }
}

impl EventProgram for LivenessMonitor {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        _a: &mut EventActions,
    ) {
        if let Some(AppHeader::Liveness(l)) = parsed.app {
            if l.kind == LivenessKind::Reply {
                self.replies_received += 1;
                // Which neighbor? Match by ingress port.
                if let Some(i) = self
                    .neighbors
                    .iter()
                    .position(|n| n.port == meta.ingress_port)
                {
                    self.states[i].last_heard = now;
                    self.states[i].rtt_last_ns = now.as_nanos().saturating_sub(l.ts_ns);
                    // A previously-dead neighbor that answers is live again.
                    self.states[i].declared_dead = None;
                }
                meta.dest = Destination::Drop; // consumed by the monitor
                return;
            }
        }
        meta.dest = Destination::Drop;
    }

    /// Generated probes are routed to their neighbor's port.
    fn on_generated(
        &mut self,
        _pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        let dst = parsed.ipv4.map(|ip| ip.dst);
        meta.dest = match dst.and_then(|d| self.neighbors.iter().find(|n| n.addr == d)) {
            Some(n) => Destination::Port(n.port),
            None => Destination::Drop,
        };
    }

    fn on_timer(&mut self, ev: &TimerEvent, now: SimTime, a: &mut EventActions) {
        match ev.timer_id {
            TIMER_PROBE => {
                for n in &self.neighbors {
                    self.seq += 1;
                    self.probes_sent += 1;
                    let probe = LivenessHeader {
                        kind: LivenessKind::Request,
                        origin: 0,
                        seq: self.seq,
                        ts_ns: now.as_nanos(),
                    };
                    a.generate_packet(PacketBuilder::liveness(self.addr, n.addr, &probe).build());
                }
            }
            TIMER_CHECK => {
                for i in 0..self.neighbors.len() {
                    let st = &mut self.states[i];
                    let silent = now.as_nanos().saturating_sub(st.last_heard.as_nanos());
                    if st.declared_dead.is_none() && silent > self.timeout_ns {
                        st.declared_dead = Some(now);
                        a.notify_control_plane(NOTIFY_NEIGHBOR_DEAD, [i as u64, silent, 0, 0]);
                    }
                }
            }
            _ => {}
        }
    }
}

/// The neighbor's data plane: reflects liveness requests.
#[derive(Debug)]
pub struct LivenessReflector {
    /// Soft-failure flag: when true, requests are silently dropped.
    pub dead: bool,
    /// Requests reflected.
    pub reflected: u64,
}

impl LivenessReflector {
    /// Creates a live reflector.
    pub fn new() -> Self {
        LivenessReflector {
            dead: false,
            reflected: 0,
        }
    }
}

impl Default for LivenessReflector {
    fn default() -> Self {
        Self::new()
    }
}

impl EventProgram for LivenessReflector {
    fn on_ingress(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        if self.dead {
            meta.dest = Destination::Drop;
            return;
        }
        if let Some(AppHeader::Liveness(l)) = parsed.app {
            if l.kind == LivenessKind::Request {
                // Rewrite in place: swap IPs, flip kind, echo timestamp.
                let ip = parsed.ipv4.expect("liveness rides IPv4");
                let reply = LivenessHeader {
                    kind: LivenessKind::Reply,
                    origin: l.origin,
                    seq: l.seq,
                    ts_ns: l.ts_ns,
                };
                *pkt = Packet::new(
                    pkt.uid,
                    PacketBuilder::liveness(ip.dst, ip.src, &reply).build(),
                );
                self.reflected += 1;
                meta.dest = Destination::Port(meta.ingress_port);
                return;
            }
        }
        meta.dest = Destination::Drop;
    }

    fn on_control_plane(&mut self, ev: &ControlPlaneEvent, _now: SimTime, _a: &mut EventActions) {
        if ev.opcode == CP_OP_KILL {
            self.dead = true;
        }
    }
}

/// Baseline comparator: liveness probing run *by the control plane*.
/// The controller sends a probe per period over its management channel,
/// the switch forwards it like any packet, and replies travel back up to
/// the controller — adding the management-channel latency to every RTT
/// sample and to detection.
#[derive(Debug, Default)]
pub struct BaselineForwarder;

impl PisaProgram for BaselineForwarder {
    fn ingress(
        &mut self,
        _pkt: &mut Packet,
        _parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
    ) {
        // Port 0 is the management/host port; everything else reflects.
        meta.dest = Destination::Port(if meta.ingress_port == 0 { 1 } else { 0 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{addr, run_until};
    use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
    use edp_evsim::{Sim, SimDuration};
    use edp_netsim::{Host, HostApp, LinkSpec, Network, NodeRef};

    /// monitor switch (port1) — (port0) reflector switch.
    fn build(timeout_ms: u64) -> Network {
        let mut net = Network::new(31);
        let probe_period = SimDuration::from_millis(1);
        let check_period = SimDuration::from_millis(1);
        let mon_cfg = EventSwitchConfig {
            n_ports: 2,
            timers: vec![
                TimerSpec {
                    id: TIMER_PROBE,
                    period: probe_period,
                    start: probe_period,
                },
                TimerSpec {
                    id: TIMER_CHECK,
                    period: check_period,
                    start: check_period,
                },
            ],
            switch_id: 1,
            ..Default::default()
        };
        let monitor = LivenessMonitor::new(
            addr(1),
            vec![Neighbor {
                port: 1,
                addr: addr(2),
            }],
            timeout_ms * 1_000_000,
        );
        let m = net.add_switch(Box::new(EventSwitch::new(monitor, mon_cfg)));
        let refl_cfg = EventSwitchConfig {
            n_ports: 2,
            switch_id: 2,
            ..Default::default()
        };
        let r = net.add_switch(Box::new(EventSwitch::new(
            LivenessReflector::new(),
            refl_cfg,
        )));
        net.connect(
            (NodeRef::Switch(m), 1),
            (NodeRef::Switch(r), 0),
            LinkSpec::ten_gig(SimDuration::from_micros(5)),
        );
        // Unused port 0 of the monitor hangs to a host to keep it wired.
        let h = net.add_host(Host::new(addr(100), HostApp::Sink));
        net.connect(
            (NodeRef::Host(h), 0),
            (NodeRef::Switch(m), 0),
            LinkSpec::ten_gig(SimDuration::from_micros(1)),
        );
        net
    }

    #[test]
    fn live_neighbor_is_never_declared_dead() {
        let mut net = build(3);
        let mut sim: Sim<Network> = Sim::new();
        run_until(&mut net, &mut sim, SimTime::from_millis(50));
        let mon = &net.switch_as::<EventSwitch<LivenessMonitor>>(0).program;
        assert!(mon.probes_sent >= 45, "probes {}", mon.probes_sent);
        assert!(mon.replies_received >= mon.probes_sent - 2);
        assert_eq!(mon.declared_dead_at(0), None);
        // RTT ≈ 2 × 5 us propagation (+ serialization).
        let rtt = mon.rtt_ns(0);
        assert!((10_000..20_000).contains(&rtt), "rtt {rtt}");
        let refl = &net.switch_as::<EventSwitch<LivenessReflector>>(1).program;
        assert_eq!(refl.reflected, mon.replies_received);
    }

    #[test]
    fn soft_failure_detected_within_timeout_plus_sweep() {
        let timeout_ms = 3u64;
        let mut net = build(timeout_ms);
        let mut sim: Sim<Network> = Sim::new();
        // Kill the reflector's software at 20 ms — no link event fires.
        let kill_at = SimTime::from_millis(20);
        sim.schedule_at(kill_at, |w: &mut Network, s: &mut Sim<Network>| {
            w.control_plane_send(s, SimDuration::ZERO, 1, CP_OP_KILL, [0; 4]);
        });
        run_until(&mut net, &mut sim, SimTime::from_millis(60));
        let mon = &net.switch_as::<EventSwitch<LivenessMonitor>>(0).program;
        let dead_at = mon.declared_dead_at(0).expect("failure detected");
        let latency = dead_at - kill_at;
        // Detection bound: timeout + one probe period + one sweep period.
        assert!(
            latency <= SimDuration::from_millis(timeout_ms + 2),
            "detected after {latency}"
        );
        // And the data plane told the central monitor by itself.
        assert!(net
            .cp_log
            .iter()
            .any(|(sw, n)| *sw == 0 && n.code == NOTIFY_NEIGHBOR_DEAD));
    }

    #[test]
    fn recovered_neighbor_is_rearmed() {
        // Kill, then resurrect by swapping the flag back via downcast.
        let mut net = build(2);
        let mut sim: Sim<Network> = Sim::new();
        sim.schedule_at(
            SimTime::from_millis(10),
            |w: &mut Network, s: &mut Sim<Network>| {
                w.control_plane_send(s, SimDuration::ZERO, 1, CP_OP_KILL, [0; 4]);
            },
        );
        sim.schedule_at(
            SimTime::from_millis(25),
            |w: &mut Network, _s: &mut Sim<Network>| {
                w.switch_as_mut::<EventSwitch<LivenessReflector>>(1)
                    .program
                    .dead = false;
            },
        );
        run_until(&mut net, &mut sim, SimTime::from_millis(50));
        let mon = &net.switch_as::<EventSwitch<LivenessMonitor>>(0).program;
        assert_eq!(
            mon.declared_dead_at(0),
            None,
            "reply after recovery clears the dead mark"
        );
    }
}
