//! Microburst-culprit detection — the paper's worked example (§2).
//!
//! Two implementations of the same task, "identify flows that contribute
//! to a sudden, significant increase in buffer usage":
//!
//! * [`MicroburstEvent`] — the `microburst.p4` program: ONE shared
//!   register array tracks exact per-flow buffer occupancy, updated by
//!   enqueue/dequeue events; detection happens in the **ingress** pipeline
//!   *before* the packet is buffered.
//! * [`MicroburstBaseline`] — a Snappy-style baseline (Chen et al. \[3\])
//!   for a baseline PISA switch: because the programming model cannot see
//!   enqueues/dequeues, it keeps FOUR stateful structures in the
//!   **egress** pipeline that *approximate* queue occupancy from packet
//!   timestamps (two alternating byte-count windows, a window-id array,
//!   and a culprit watchlist), and can only flag a packet after it has
//!   already traversed the buffer.
//!
//! The paper's claim: the event-driven version cuts stateful requirements
//! "at least four-fold" and detects before enqueue. `exp_microburst`
//! measures state words, detections, and detection latency for both.

use edp_core::event::{DequeueEvent, EnqueueEvent};
use edp_core::{Accessor, EventActions, EventProgram, SharedRegister};
use edp_evsim::SimTime;
use edp_packet::{Packet, ParsedPacket};
use edp_pisa::{Destination, PisaProgram, PortId, RegisterArray, StdMeta};
use serde::{Deserialize, Serialize};

/// A recorded culprit detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// When the program flagged the flow.
    pub at: SimTime,
    /// The flow's register index (hash of src·dst).
    pub flow_index: u64,
    /// The occupancy estimate that triggered the detection, in bytes.
    pub occupancy: u64,
}

/// The event-driven microburst program (`microburst.p4`).
#[derive(Debug)]
pub struct MicroburstEvent {
    /// Per-flow buffer occupancy — the single stateful structure.
    pub buf_size: SharedRegister,
    /// Detection threshold in bytes (`FLOW_THRESH`).
    pub threshold: u64,
    /// Output port for all data traffic.
    pub out_port: PortId,
    /// Detections, in time order.
    pub detections: Vec<Detection>,
}

impl MicroburstEvent {
    /// Creates the program with `n_flows` register entries.
    pub fn new(n_flows: usize, threshold: u64, out_port: PortId) -> Self {
        MicroburstEvent {
            buf_size: SharedRegister::new("flowBufSize_reg", n_flows),
            threshold,
            out_port,
            detections: Vec::new(),
        }
    }

    /// Words of stateful storage this design needs.
    pub fn state_words(&self) -> usize {
        self.buf_size.state_words()
    }
}

impl EventProgram for MicroburstEvent {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        _actions: &mut EventActions,
    ) {
        meta.dest = Destination::Port(self.out_port);
        let Some(key) = parsed.flow_key() else {
            return;
        };
        // hash(hdr.ip.src ++ hdr.ip.dst, flowID)
        let flow = key.ip_pair_index(self.buf_size.size());
        // Initialize enq & deq metadata for this packet.
        meta.event_meta = [flow as u64, meta.pkt_len as u64, 0, 0];
        // Read buffer occupancy of this flow; detect microburst culprit
        // BEFORE the packet is enqueued.
        let occ = self.buf_size.read(Accessor::Packet, flow);
        if occ > self.threshold {
            self.detections.push(Detection {
                at: now,
                flow_index: flow as u64,
                occupancy: occ,
            });
        }
    }

    fn on_enqueue(&mut self, ev: &EnqueueEvent, _now: SimTime, _a: &mut EventActions) {
        self.buf_size
            .add(Accessor::Enqueue, ev.meta[0] as usize, ev.meta[1]);
    }

    fn on_dequeue(&mut self, ev: &DequeueEvent, _now: SimTime, _a: &mut EventActions) {
        self.buf_size
            .sub(Accessor::Dequeue, ev.meta[0] as usize, ev.meta[1]);
    }
}

/// The Snappy-style baseline for a baseline PISA switch.
///
/// Approximates per-flow queue occupancy as "bytes of this flow that
/// arrived within the last `window_ns`" using two alternating windows;
/// `window_ns` should be set to the buffer's expected drain time. Runs in
/// egress (the only place a baseline program can correlate with queueing),
/// so a culprit is flagged only after its packets already hogged the
/// buffer.
#[derive(Debug)]
pub struct MicroburstBaseline {
    /// Structure 1: bytes per flow in the current window.
    pub win_cur: RegisterArray,
    /// Structure 2: bytes per flow in the previous window.
    pub win_prev: RegisterArray,
    /// Structure 3: the window id in which a flow was last updated.
    pub last_win: RegisterArray,
    /// Structure 4: culprit watchlist (detection latch per flow).
    pub watchlist: RegisterArray,
    /// Detection threshold in bytes.
    pub threshold: u64,
    /// Window length (≈ buffer drain time).
    pub window_ns: u64,
    /// Output port for all data traffic.
    pub out_port: PortId,
    /// Detections, in time order.
    pub detections: Vec<Detection>,
}

impl MicroburstBaseline {
    /// Creates the baseline with `n_flows` entries per structure.
    pub fn new(n_flows: usize, threshold: u64, window_ns: u64, out_port: PortId) -> Self {
        MicroburstBaseline {
            win_cur: RegisterArray::new("win_cur", n_flows),
            win_prev: RegisterArray::new("win_prev", n_flows),
            last_win: RegisterArray::new("last_win", n_flows),
            watchlist: RegisterArray::new("watchlist", n_flows),
            threshold,
            window_ns,
            out_port,
            detections: Vec::new(),
        }
    }

    /// Words of stateful storage this design needs (4 structures).
    pub fn state_words(&self) -> usize {
        self.win_cur.state_words()
            + self.win_prev.state_words()
            + self.last_win.state_words()
            + self.watchlist.state_words()
    }
}

impl PisaProgram for MicroburstBaseline {
    fn ingress(
        &mut self,
        _pkt: &mut Packet,
        _parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
    ) {
        meta.dest = Destination::Port(self.out_port);
    }

    fn egress(
        &mut self,
        _pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
    ) {
        let Some(key) = parsed.flow_key() else {
            return;
        };
        let flow = key.ip_pair_index(self.win_cur.size());
        let win_id = now.as_nanos() / self.window_ns;
        let seen_win = self.last_win.read(flow);
        if seen_win != win_id {
            // Rotate this flow's windows lazily on first touch.
            if seen_win + 1 == win_id {
                let cur = self.win_cur.read(flow);
                self.win_prev.write(flow, cur);
            } else {
                self.win_prev.write(flow, 0);
            }
            self.win_cur.write(flow, 0);
            self.last_win.write(flow, win_id);
        }
        let cur = self.win_cur.add(flow, meta.pkt_len as u64);
        // Occupancy estimate: bytes in roughly one drain time.
        let est = cur + self.win_prev.read(flow) / 2;
        if est > self.threshold && self.watchlist.read(flow) != win_id + 1 {
            self.watchlist.write(flow, win_id + 1);
            self.detections.push(Detection {
                at: now,
                flow_index: flow as u64,
                occupancy: est,
            });
        }
    }
}

/// Footnote 1 of the paper: "If needed, a count-min-sketch data structure
/// can be used to reduce state requirements even further."
///
/// Same event-driven structure as [`MicroburstEvent`] but per-flow
/// occupancy lives in a CMS instead of an exact register array. CMS
/// decrements are handled by updating with the *negated* length via a
/// conservative pair of sketches (one counting enqueued bytes, one
/// dequeued bytes; occupancy = enq − deq), preserving the
/// never-underestimate property for the difference's upper bound.
#[derive(Debug)]
pub struct MicroburstCms {
    /// Bytes enqueued per flow (overestimate).
    pub enq: edp_primitives::CountMinSketch,
    /// Bytes dequeued per flow (overestimate).
    pub deq: edp_primitives::CountMinSketch,
    /// Detection threshold in bytes.
    pub threshold: u64,
    /// Output port.
    pub out_port: PortId,
    /// Detections, in time order (flow_index is the 64-bit flow hash).
    pub detections: Vec<Detection>,
}

impl MicroburstCms {
    /// Creates the sketch-based detector (`width`×`depth` per sketch).
    pub fn new(width: usize, depth: usize, threshold: u64, out_port: PortId) -> Self {
        MicroburstCms {
            enq: edp_primitives::CountMinSketch::new(width, depth),
            deq: edp_primitives::CountMinSketch::new(width, depth),
            threshold,
            out_port,
            detections: Vec::new(),
        }
    }

    /// Words of stateful storage (both sketches).
    pub fn state_words(&self) -> usize {
        self.enq.state_words() + self.deq.state_words()
    }

    fn occupancy(&self, flow_hash: u64) -> u64 {
        self.enq
            .query(flow_hash)
            .saturating_sub(self.deq.query(flow_hash))
    }
}

impl EventProgram for MicroburstCms {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        _actions: &mut EventActions,
    ) {
        meta.dest = Destination::Port(self.out_port);
        let Some(key) = parsed.flow_key() else {
            return;
        };
        let h = key.hash64();
        meta.event_meta = [h, meta.pkt_len as u64, 0, 0];
        let occ = self.occupancy(h);
        if occ > self.threshold {
            self.detections.push(Detection {
                at: now,
                flow_index: h,
                occupancy: occ,
            });
        }
    }

    fn on_enqueue(&mut self, ev: &EnqueueEvent, _now: SimTime, _a: &mut EventActions) {
        self.enq.update(ev.meta[0], ev.meta[1]);
    }

    fn on_dequeue(&mut self, ev: &DequeueEvent, _now: SimTime, _a: &mut EventActions) {
        self.deq.update(ev.meta[0], ev.meta[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{addr, dumbbell, run_until, sink_addr};
    use edp_core::{EventSwitch, EventSwitchConfig};
    use edp_evsim::{Sim, SimDuration};
    use edp_netsim::traffic::{start_burst, start_cbr};
    use edp_netsim::Network;
    use edp_packet::PacketBuilder;
    use edp_pisa::{BaselineSwitch, QueueConfig};

    const THRESH: u64 = 20_000; // 20 KB of buffered bytes per flow

    fn queue_cfg() -> QueueConfig {
        QueueConfig {
            capacity_bytes: 200_000,
            ..QueueConfig::default()
        }
    }

    #[test]
    fn event_program_state_is_quarter_of_baseline() {
        let ev = MicroburstEvent::new(256, THRESH, 1);
        let base = MicroburstBaseline::new(256, THRESH, 1_000_000, 1);
        assert_eq!(base.state_words(), 4 * ev.state_words());
    }

    #[test]
    fn event_detector_flags_bursting_flow_only() {
        let cfg = EventSwitchConfig {
            n_ports: 3,
            queue: queue_cfg(),
            ..Default::default()
        };
        let sw = EventSwitch::new(MicroburstEvent::new(256, THRESH, 2), cfg);
        let (mut net, senders, _sink, _) = dumbbell(Box::new(sw), 2, 1_000_000_000, 5);
        let mut sim: Sim<Network> = Sim::new();

        // Sender 0: polite 1500 B packet every 100 us (well under thresh).
        let polite_src = addr(1);
        start_cbr(
            &mut sim,
            senders[0],
            SimTime::ZERO,
            SimDuration::from_micros(100),
            200,
            move |i| {
                PacketBuilder::udp(polite_src, sink_addr(), 10, 20, &[])
                    .ident(i as u16)
                    .pad_to(1500)
                    .build()
            },
        );
        // Sender 1: a 100-packet microburst at t = 5 ms.
        let burst_src = addr(2);
        start_burst(
            &mut sim,
            senders[1],
            SimTime::from_millis(5),
            100,
            SimDuration::ZERO,
            move |i| {
                PacketBuilder::udp(burst_src, sink_addr(), 30, 40, &[])
                    .ident(i as u16)
                    .pad_to(1500)
                    .build()
            },
        );

        run_until(&mut net, &mut sim, SimTime::from_millis(30));
        let prog = &net.switch_as::<EventSwitch<MicroburstEvent>>(0).program;
        assert!(!prog.detections.is_empty(), "burst must be detected");
        let burst_flow =
            edp_packet::FlowKey::new(burst_src, sink_addr(), edp_packet::IpProto::Udp, 30, 40)
                .ip_pair_index(256) as u64;
        for d in &prog.detections {
            assert_eq!(
                d.flow_index, burst_flow,
                "only the bursting flow is flagged"
            );
            assert!(d.occupancy > THRESH);
        }
        // Detections start shortly after the burst begins.
        assert!(prog.detections[0].at >= SimTime::from_millis(5));
        assert!(prog.detections[0].at < SimTime::from_millis(7));
    }

    #[test]
    fn event_occupancy_returns_to_zero_after_drain() {
        let cfg = EventSwitchConfig {
            n_ports: 3,
            queue: queue_cfg(),
            ..Default::default()
        };
        let sw = EventSwitch::new(MicroburstEvent::new(64, THRESH, 2), cfg);
        let (mut net, senders, _, _) = dumbbell(Box::new(sw), 2, 1_000_000_000, 6);
        let mut sim: Sim<Network> = Sim::new();
        let src = addr(1);
        start_burst(
            &mut sim,
            senders[0],
            SimTime::ZERO,
            20,
            SimDuration::ZERO,
            move |i| {
                PacketBuilder::udp(src, sink_addr(), 1, 2, &[])
                    .ident(i as u16)
                    .pad_to(1500)
                    .build()
            },
        );
        run_until(&mut net, &mut sim, SimTime::from_millis(50));
        let prog = &net.switch_as::<EventSwitch<MicroburstEvent>>(0).program;
        assert_eq!(
            prog.buf_size.nonzero_entries(),
            0,
            "all enqueued bytes were dequeued"
        );
    }

    #[test]
    fn cms_variant_detects_with_less_state() {
        // Footnote 1: a small CMS (2×(64×2) = 256 words here, but scalable
        // to far fewer words than flows) still catches the burst.
        let cfg = EventSwitchConfig {
            n_ports: 3,
            queue: queue_cfg(),
            ..Default::default()
        };
        let sw = EventSwitch::new(MicroburstCms::new(32, 2, THRESH, 2), cfg);
        let (mut net, senders, _, _) = dumbbell(Box::new(sw), 2, 1_000_000_000, 5);
        let mut sim: Sim<Network> = Sim::new();
        let burst_src = addr(2);
        start_burst(
            &mut sim,
            senders[1],
            SimTime::from_millis(5),
            100,
            SimDuration::ZERO,
            move |i| {
                PacketBuilder::udp(burst_src, sink_addr(), 30, 40, &[])
                    .ident(i as u16)
                    .pad_to(1500)
                    .build()
            },
        );
        run_until(&mut net, &mut sim, SimTime::from_millis(30));
        let prog = &net.switch_as::<EventSwitch<MicroburstCms>>(0).program;
        assert!(!prog.detections.is_empty(), "CMS variant must detect");
        // 2 sketches × 32 × 2 = 128 words: half of the 256-entry exact
        // register while tracking an unbounded flow id space.
        assert_eq!(prog.state_words(), 128);
        let exact = MicroburstEvent::new(256, THRESH, 2);
        assert!(prog.state_words() < exact.state_words());
    }

    #[test]
    fn baseline_detects_later_than_event_driven() {
        // Same workload into both architectures; compare first-detection time.
        let run = |event: bool| -> (Option<SimTime>, usize) {
            let (mut net, senders, _sink, _) = if event {
                let cfg = EventSwitchConfig {
                    n_ports: 3,
                    queue: queue_cfg(),
                    ..Default::default()
                };
                let sw = EventSwitch::new(MicroburstEvent::new(256, THRESH, 2), cfg);
                dumbbell(Box::new(sw), 2, 1_000_000_000, 9)
            } else {
                let prog = MicroburstBaseline::new(256, THRESH, 240_000, 2);
                dumbbell(
                    Box::new(BaselineSwitch::new(prog, 3, queue_cfg())),
                    2,
                    1_000_000_000,
                    9,
                )
            };
            let mut sim: Sim<Network> = Sim::new();
            let burst_src = addr(2);
            start_burst(
                &mut sim,
                senders[1],
                SimTime::from_millis(1),
                120,
                SimDuration::ZERO,
                move |i| {
                    PacketBuilder::udp(burst_src, sink_addr(), 30, 40, &[])
                        .ident(i as u16)
                        .pad_to(1500)
                        .build()
                },
            );
            run_until(&mut net, &mut sim, SimTime::from_millis(20));
            if event {
                let p = &net.switch_as::<EventSwitch<MicroburstEvent>>(0).program;
                (p.detections.first().map(|d| d.at), p.state_words())
            } else {
                let p = &net
                    .switch_as::<BaselineSwitch<MicroburstBaseline>>(0)
                    .program;
                (p.detections.first().map(|d| d.at), p.state_words())
            }
        };
        let (t_event, words_event) = run(true);
        let (t_base, words_base) = run(false);
        let t_event = t_event.expect("event-driven detected");
        let t_base = t_base.expect("baseline detected");
        assert!(
            t_event <= t_base,
            "event-driven ({t_event}) must not lag baseline ({t_base})"
        );
        assert!(words_base >= 4 * words_event);
    }
}
