//! Data-plane state migration on link failure (§3 "Network Management",
//! citing swing-state \[17\]).
//!
//! "By introducing link status change events, the data plane can
//! immediately respond to link failures, autonomously re-route affected
//! flows **and migrate data-plane state**."
//!
//! Topology for the experiment (see tests):
//!
//! ```text
//!        ┌── B (stateful: per-flow counters) ──┐
//!   A ───┤                                     ├── D ── sink
//!        └── C (stateful: per-flow counters) ──┘
//! ```
//!
//! A forwards flows via B (primary). B counts per-flow packets. When the
//! A–B link dies, A's link-status handler re-routes via C **and** B's
//! link-status handler serializes its per-flow counters into generated
//! packets (KV `Put`s addressed to C) that travel over its surviving
//! link through D. C installs them, so the per-flow state continues
//! exactly where it left off — no controller, no state reset.

use edp_core::event::LinkStatusEvent;
use edp_core::{EventActions, EventProgram};
use edp_evsim::SimTime;
use edp_packet::{AppHeader, KvHeader, KvOp, Packet, PacketBuilder, ParsedPacket};
use edp_pisa::{Destination, PortId, RegisterArray, StdMeta};
use std::net::Ipv4Addr;

/// A stateful mid-path switch: counts per-flow packets, migrates its
/// counters to a peer when its upstream link dies, and installs
/// counters migrated *to* it.
#[derive(Debug)]
pub struct StatefulCounter {
    /// This switch's address (source of migration packets).
    pub addr: Ipv4Addr,
    /// The migration peer's address (destination of migration packets).
    pub peer: Ipv4Addr,
    /// Port toward the upstream ingress (A).
    pub upstream_port: PortId,
    /// Port toward the downstream (D).
    pub downstream_port: PortId,
    /// Per-flow packet counters.
    pub counters: RegisterArray,
    /// Migration packets generated.
    pub migrated_out: u64,
    /// Migration entries installed.
    pub migrated_in: u64,
    /// Whether this switch already migrated (one-shot per failure).
    migrated: bool,
}

impl StatefulCounter {
    /// Creates the program with `n_flows` counter slots.
    pub fn new(
        addr: Ipv4Addr,
        peer: Ipv4Addr,
        upstream_port: PortId,
        downstream_port: PortId,
        n_flows: usize,
    ) -> Self {
        StatefulCounter {
            addr,
            peer,
            upstream_port,
            downstream_port,
            counters: RegisterArray::new("flow_counters", n_flows),
            migrated_out: 0,
            migrated_in: 0,
            migrated: false,
        }
    }
}

impl EventProgram for StatefulCounter {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        // Migration install path: a KV Put addressed to us.
        if let (Some(ip), Some(AppHeader::Kv(kv))) = (parsed.ipv4, parsed.app) {
            if ip.dst == self.addr && kv.op == KvOp::Put {
                let slot = kv.key as usize % self.counters.size();
                let merged = self.counters.read(slot) + kv.value;
                self.counters.write(slot, merged);
                self.migrated_in += 1;
                meta.dest = Destination::Drop; // consumed
                return;
            }
        }
        // Data path: count and forward downstream.
        if let Some(key) = parsed.flow_key() {
            let slot = key.index(self.counters.size());
            self.counters.add(slot, 1);
        }
        meta.dest = Destination::Port(if meta.ingress_port == self.upstream_port {
            self.downstream_port
        } else {
            self.upstream_port
        });
    }

    fn on_generated(
        &mut self,
        _pkt: &mut Packet,
        _parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        // Migration packets leave via the surviving downstream link.
        meta.dest = Destination::Port(self.downstream_port);
    }

    fn on_link_status(&mut self, ev: &LinkStatusEvent, _now: SimTime, a: &mut EventActions) {
        if ev.port != self.upstream_port || ev.up || self.migrated {
            return;
        }
        self.migrated = true;
        // Serialize every live counter into a migration packet. (A real
        // design would batch several per packet; one-per-entry keeps the
        // wire format trivial and the count observable.)
        for slot in 0..self.counters.size() {
            let v = self.counters.peek(slot);
            if v == 0 {
                continue;
            }
            let put = KvHeader {
                op: KvOp::Put,
                key: slot as u64,
                value: v,
            };
            a.generate_packet(PacketBuilder::kv(self.addr, self.peer, &put).build());
            self.migrated_out += 1;
        }
    }
}

/// The branching switch D: routes by destination address.
#[derive(Debug)]
pub struct AddrRouter {
    /// `(address, port)` routing entries; unmatched → `default_port`.
    pub routes: Vec<(Ipv4Addr, PortId)>,
    /// Fallback port.
    pub default_port: PortId,
}

impl EventProgram for AddrRouter {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        let Some(ip) = parsed.ipv4 else {
            meta.dest = Destination::Drop;
            return;
        };
        let port = self
            .routes
            .iter()
            .find(|(a, _)| *a == ip.dst)
            .map(|&(_, p)| p)
            .unwrap_or(self.default_port);
        meta.dest = Destination::Port(port);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{addr, run_until};
    use crate::frr::FrrEvent;
    use edp_core::{EventSwitch, EventSwitchConfig};
    use edp_evsim::{Sim, SimDuration, SimTime};
    use edp_netsim::traffic::start_cbr;
    use edp_netsim::{Host, HostApp, LinkSpec, Network, NodeRef};
    use edp_packet::{FlowKey, IpProto, PacketBuilder};

    const N_FLOWS: usize = 32;

    fn b_addr() -> Ipv4Addr {
        addr(101)
    }
    fn c_addr() -> Ipv4Addr {
        addr(102)
    }

    /// Builds the diamond with stateful B and C. Returns
    /// (net, sender_host, a_b_link, indices of [a, b, c, d], sink host).
    fn build() -> (Network, usize, usize, [usize; 4], usize) {
        let mut net = Network::new(91);
        let cfg = |n: usize, id: u16| EventSwitchConfig {
            n_ports: n,
            switch_id: id,
            ..Default::default()
        };
        // A: port0 = host, port1 = B (primary), port2 = C (backup).
        let a_sw = net.add_switch(Box::new(EventSwitch::new(FrrEvent::new(1, 2), cfg(3, 1))));
        // B/C: port0 = upstream (A), port1 = downstream (D).
        let b_sw = net.add_switch(Box::new(EventSwitch::new(
            StatefulCounter::new(b_addr(), c_addr(), 0, 1, N_FLOWS),
            cfg(2, 2),
        )));
        let c_sw = net.add_switch(Box::new(EventSwitch::new(
            StatefulCounter::new(c_addr(), b_addr(), 0, 1, N_FLOWS),
            cfg(2, 3),
        )));
        // D: port0 = B, port1 = C, port2 = sink.
        let d_sw = net.add_switch(Box::new(EventSwitch::new(
            AddrRouter {
                routes: vec![(b_addr(), 0), (c_addr(), 1)],
                default_port: 2,
            },
            cfg(3, 4),
        )));
        let h = net.add_host(Host::new(addr(1), HostApp::Sink));
        let sink = net.add_host(Host::new(addr(9), HostApp::Sink));
        let spec = LinkSpec::ten_gig(SimDuration::from_micros(1));
        net.connect((NodeRef::Host(h), 0), (NodeRef::Switch(a_sw), 0), spec);
        let ab = net.connect((NodeRef::Switch(a_sw), 1), (NodeRef::Switch(b_sw), 0), spec);
        net.connect((NodeRef::Switch(a_sw), 2), (NodeRef::Switch(c_sw), 0), spec);
        net.connect((NodeRef::Switch(b_sw), 1), (NodeRef::Switch(d_sw), 0), spec);
        net.connect((NodeRef::Switch(c_sw), 1), (NodeRef::Switch(d_sw), 1), spec);
        net.connect((NodeRef::Switch(d_sw), 2), (NodeRef::Host(sink), 0), spec);
        (net, h, ab, [a_sw, b_sw, c_sw, d_sw], sink)
    }

    #[test]
    fn counters_survive_failover_exactly() {
        let (mut net, h, ab_link, [_a, b_sw, c_sw, _d], sink) = build();
        let mut sim: Sim<Network> = Sim::new();
        // 1000 packets, one per 20 us; failure at 10 ms (≈ packet 500).
        let fail_at = SimTime::from_millis(10);
        net.schedule_link_failure(&mut sim, ab_link, fail_at, None);
        let src = addr(1);
        start_cbr(
            &mut sim,
            h,
            SimTime::ZERO,
            SimDuration::from_micros(20),
            1000,
            move |i| {
                PacketBuilder::udp(src, addr(9), 40, 50, &[])
                    .ident(i as u16)
                    .pad_to(500)
                    .build()
            },
        );
        run_until(&mut net, &mut sim, SimTime::from_millis(60));

        let slot = FlowKey::new(addr(1), addr(9), IpProto::Udp, 40, 50).index(N_FLOWS);
        let b = &net.switch_as::<EventSwitch<StatefulCounter>>(b_sw).program;
        let c = &net.switch_as::<EventSwitch<StatefulCounter>>(c_sw).program;
        // B migrated its (single-flow) state; C merged it with its own
        // post-failover counting.
        assert_eq!(b.migrated_out, 1, "one live flow to migrate");
        assert_eq!(c.migrated_in, 1);
        let delivered = net.hosts[sink].stats.rx_pkts;
        assert_eq!(
            c.counters.peek(slot),
            delivered,
            "C's counter continues exactly from B's (delivered={delivered})"
        );
        // Nearly lossless failover (only in-flight on the dead link).
        assert!(delivered >= 998, "delivered {delivered}");
        assert_eq!(net.cp_messages, 0, "no controller involved");
    }

    #[test]
    fn no_migration_without_failure() {
        let (mut net, h, _ab, [_a, b_sw, c_sw, _d], _sink) = build();
        let mut sim: Sim<Network> = Sim::new();
        let src = addr(1);
        start_cbr(
            &mut sim,
            h,
            SimTime::ZERO,
            SimDuration::from_micros(20),
            200,
            move |i| {
                PacketBuilder::udp(src, addr(9), 40, 50, &[])
                    .ident(i as u16)
                    .pad_to(500)
                    .build()
            },
        );
        run_until(&mut net, &mut sim, SimTime::from_millis(30));
        let b = &net.switch_as::<EventSwitch<StatefulCounter>>(b_sw).program;
        let c = &net.switch_as::<EventSwitch<StatefulCounter>>(c_sw).program;
        assert_eq!(b.migrated_out, 0);
        assert_eq!(c.migrated_in, 0);
        assert_eq!(c.counters.nonzero_entries(), 0, "C untouched");
    }

    #[test]
    fn migration_is_one_shot() {
        let (mut net, _h, ab_link, [_a, b_sw, _c, _d], _sink) = build();
        let mut sim: Sim<Network> = Sim::new();
        // Flap the link twice with no state in between.
        net.schedule_link_failure(
            &mut sim,
            ab_link,
            SimTime::from_millis(1),
            Some(SimTime::from_millis(2)),
        );
        net.schedule_link_failure(&mut sim, ab_link, SimTime::from_millis(3), None);
        run_until(&mut net, &mut sim, SimTime::from_millis(10));
        let b = &net.switch_as::<EventSwitch<StatefulCounter>>(b_sw).program;
        assert_eq!(b.migrated_out, 0, "no counters => nothing to migrate");
    }
}
