//! Flow-fair AQM from enqueue/dequeue congestion signals (§5 student
//! project "Computing Congestion Signals"; §3 "Traffic Management").
//!
//! The event-driven program maintains, purely from enqueue/dequeue
//! events, the three congestion signals the paper names: **total buffer
//! occupancy**, **per-active-flow buffer occupancy**, and **active flow
//! count**. At ingress it enforces FRED-style fairness (Lin & Morris):
//! a packet is dropped when its flow already holds more than its fair
//! share of the buffer. A timer event periodically reports the occupancy
//! to a monitor — also straight from the data plane.
//!
//! The baseline comparator is plain drop-tail: without enqueue/dequeue
//! events a baseline program cannot know per-flow occupancy, so the hog
//! flow that fills the queue keeps most of the bottleneck.

use edp_core::event::{DequeueEvent, EnqueueEvent, TimerEvent};
use edp_core::{Accessor, EventActions, EventProgram, SharedRegister};
use edp_evsim::{SimTime, TimeSeries};
use edp_packet::{Packet, ParsedPacket};
use edp_pisa::{Destination, PortId, StdMeta};

/// Timer id for occupancy reporting.
pub const TIMER_REPORT: u16 = 0;
/// Control-plane notification: periodic occupancy report.
pub const NOTIFY_OCCUPANCY: u32 = 20;

/// FRED-like fair AQM driven by data-plane events.
#[derive(Debug)]
pub struct FredAqm {
    /// Per-flow buffer occupancy in bytes.
    pub flow_occ: SharedRegister,
    /// Signals computed from events.
    pub total_occ: u64,
    /// Number of flows with at least one buffered packet.
    pub active_flows: u64,
    /// Queue capacity the fair share is computed against, in bytes.
    pub capacity: u64,
    /// Minimum per-flow allowance in bytes (small flows are never hit).
    pub min_quantum: u64,
    /// Output port for data traffic.
    pub out_port: PortId,
    /// Drops per flow slot (diagnostic).
    pub drops: Vec<u64>,
    /// Occupancy samples from the report timer.
    pub occupancy_series: TimeSeries,
}

impl FredAqm {
    /// Creates the AQM for a queue of `capacity` bytes.
    pub fn new(n_flows: usize, capacity: u64, min_quantum: u64, out_port: PortId) -> Self {
        FredAqm {
            flow_occ: SharedRegister::new("flow_occ", n_flows),
            total_occ: 0,
            active_flows: 0,
            capacity,
            min_quantum,
            out_port,
            drops: vec![0; n_flows],
            occupancy_series: TimeSeries::new(),
        }
    }

    /// The current fair share per active flow, in bytes.
    pub fn fair_share(&self) -> u64 {
        (self.capacity / self.active_flows.max(1)).max(self.min_quantum)
    }
}

impl EventProgram for FredAqm {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        let Some(key) = parsed.flow_key() else {
            meta.dest = Destination::Port(self.out_port);
            return;
        };
        let flow = key.index(self.flow_occ.size());
        meta.event_meta = [flow as u64, meta.pkt_len as u64, 0, 0];
        let occ = self.flow_occ.read(Accessor::Packet, flow);
        if occ + meta.pkt_len as u64 > self.fair_share() {
            self.drops[flow] += 1;
            meta.dest = Destination::Drop;
        } else {
            meta.dest = Destination::Port(self.out_port);
        }
    }

    fn on_enqueue(&mut self, ev: &EnqueueEvent, _now: SimTime, _a: &mut EventActions) {
        let flow = ev.meta[0] as usize;
        let before = self.flow_occ.add(Accessor::Enqueue, flow, ev.meta[1]) - ev.meta[1];
        if before == 0 {
            self.active_flows += 1;
        }
        self.total_occ += ev.meta[1];
    }

    fn on_dequeue(&mut self, ev: &DequeueEvent, _now: SimTime, _a: &mut EventActions) {
        let flow = ev.meta[0] as usize;
        let after = self.flow_occ.sub(Accessor::Dequeue, flow, ev.meta[1]);
        if after == 0 && self.active_flows > 0 {
            self.active_flows -= 1;
        }
        self.total_occ = self.total_occ.saturating_sub(ev.meta[1]);
    }

    fn on_timer(&mut self, ev: &TimerEvent, now: SimTime, a: &mut EventActions) {
        if ev.timer_id == TIMER_REPORT {
            self.occupancy_series.push(now, self.total_occ as f64);
            a.notify_control_plane(NOTIFY_OCCUPANCY, [self.total_occ, self.active_flows, 0, 0]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{addr, dumbbell, run_until, sink_addr};
    use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
    use edp_evsim::{jain_fairness, Sim, SimDuration};
    use edp_netsim::traffic::start_cbr;
    use edp_netsim::Network;
    use edp_packet::PacketBuilder;
    use edp_pisa::{BaselineSwitch, ForwardTo, QueueConfig};

    const CAPACITY: u64 = 30_000;
    const BOTTLENECK: u64 = 100_000_000; // 100 Mb/s

    fn queue_cfg() -> QueueConfig {
        QueueConfig {
            capacity_bytes: CAPACITY,
            ..QueueConfig::default()
        }
    }

    /// 3 polite senders at 40 Mb/s each + 1 hog at 400 Mb/s into a
    /// 100 Mb/s bottleneck. Returns per-sender goodput (bps).
    fn run(fair: bool) -> (Vec<f64>, Option<Vec<(u64, f64)>>) {
        let n = 4;
        let (mut net, senders, sink, _) = if fair {
            let cfg = EventSwitchConfig {
                n_ports: 5,
                queue: queue_cfg(),
                timers: vec![TimerSpec {
                    id: TIMER_REPORT,
                    period: SimDuration::from_millis(1),
                    start: SimDuration::from_millis(1),
                }],
                ..Default::default()
            };
            let sw = EventSwitch::new(FredAqm::new(64, CAPACITY, 2000, 4), cfg);
            dumbbell(Box::new(sw), n, BOTTLENECK, 55)
        } else {
            let sw = BaselineSwitch::new(ForwardTo(4), 5, queue_cfg());
            dumbbell(Box::new(sw), n, BOTTLENECK, 55)
        };
        let mut sim: Sim<Network> = Sim::new();
        let horizon = SimTime::from_millis(100);
        for (i, &h) in senders.iter().enumerate() {
            let src = addr(i as u8 + 1);
            let port = 1000 + i as u16;
            // Polite: 1500 B / 300 us = 40 Mb/s. Hog: 1500 B / 30 us = 400 Mb/s.
            let interval = if i == n - 1 {
                SimDuration::from_micros(30)
            } else {
                SimDuration::from_micros(300)
            };
            start_cbr(&mut sim, h, SimTime::ZERO, interval, u64::MAX, move |s| {
                PacketBuilder::udp(src, sink_addr(), port, 9000, &[])
                    .ident(s as u16)
                    .pad_to(1500)
                    .build()
            });
        }
        run_until(&mut net, &mut sim, horizon);
        let goodputs: Vec<f64> = (0..n)
            .map(|i| {
                let key = edp_packet::FlowKey::new(
                    addr(i as u8 + 1),
                    sink_addr(),
                    edp_packet::IpProto::Udp,
                    1000 + i as u16,
                    9000,
                );
                net.hosts[sink]
                    .stats
                    .flows
                    .get(&key)
                    .map(|f| f.bytes as f64 * 8.0 / 0.1)
                    .unwrap_or(0.0)
            })
            .collect();
        let series = fair.then(|| {
            net.switch_as::<EventSwitch<FredAqm>>(0)
                .program
                .occupancy_series
                .points()
                .to_vec()
        });
        (goodputs, series)
    }

    #[test]
    fn fred_improves_fairness_over_droptail() {
        let (droptail, _) = run(false);
        let (fred, _) = run(true);
        let j_drop = jain_fairness(&droptail);
        let j_fred = jain_fairness(&fred);
        assert!(
            j_fred > j_drop + 0.1,
            "FRED {j_fred:.3} should beat droptail {j_drop:.3} (goodputs {fred:?} vs {droptail:?})"
        );
        // The hog must not starve polite flows under FRED.
        let polite_min = fred[..3].iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            polite_min > 0.5 * 40e6 * 0.5,
            "polite flows starved: {fred:?}"
        );
    }

    #[test]
    fn occupancy_reports_flow_from_data_plane() {
        let (_, series) = run(true);
        let series = series.expect("event run records occupancy");
        assert!(series.len() >= 90, "one report per ms");
        let max = series.iter().map(|&(_, v)| v).fold(0.0, f64::max);
        assert!(max > 0.0, "congestion visible in reports");
        assert!(max <= CAPACITY as f64);
    }

    #[test]
    fn active_flow_count_returns_to_zero() {
        let cfg = EventSwitchConfig {
            n_ports: 3,
            queue: queue_cfg(),
            ..Default::default()
        };
        let sw = EventSwitch::new(FredAqm::new(64, CAPACITY, 2000, 2), cfg);
        let (mut net, senders, _, _) = dumbbell(Box::new(sw), 2, 10_000_000_000, 77);
        let mut sim: Sim<Network> = Sim::new();
        let src = addr(1);
        start_cbr(
            &mut sim,
            senders[0],
            SimTime::ZERO,
            SimDuration::from_micros(50),
            100,
            move |i| {
                PacketBuilder::udp(src, sink_addr(), 1, 2, &[])
                    .ident(i as u16)
                    .pad_to(1000)
                    .build()
            },
        );
        run_until(&mut net, &mut sim, SimTime::from_millis(50));
        let p = &net.switch_as::<EventSwitch<FredAqm>>(0).program;
        assert_eq!(p.active_flows, 0);
        assert_eq!(p.total_occ, 0);
        assert_eq!(p.flow_occ.nonzero_entries(), 0);
    }
}
