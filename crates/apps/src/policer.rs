//! Policing with a do-it-yourself token bucket (§3 "Traffic Management").
//!
//! "While baseline PISA architectures might expose fixed-function meters
//! to P4 programmers as primitive elements, if we use timer events, token
//! bucket meters can be constructed from simple registers."
//!
//! [`TimerPolicer`] is that construction: a register pair (tokens, cap)
//! refilled by a periodic timer event, consumed at ingress. The
//! comparator [`MeterPolicer`] uses the fixed-function continuous-time
//! meter a baseline target would provide. The sweep over timer periods in
//! `exp_policer` shows the accuracy cost of refill quantization — the
//! customizability/fidelity trade-off the paper highlights.

use edp_core::event::TimerEvent;
use edp_core::{EventActions, EventProgram};
use edp_evsim::SimTime;
use edp_packet::{Packet, ParsedPacket};
use edp_pisa::{Destination, PisaProgram, PortId, StdMeta};
use edp_primitives::{Color, TimerTokenBucket, TokenBucket};

/// Timer id for bucket refill.
pub const TIMER_REFILL: u16 = 0;

/// Event-driven policer: registers + timer events.
#[derive(Debug)]
pub struct TimerPolicer {
    /// The register-built bucket.
    pub bucket: TimerTokenBucket,
    /// Output port for conforming traffic.
    pub out_port: PortId,
    /// Conforming packets forwarded.
    pub green: u64,
    /// Non-conforming packets dropped.
    pub red: u64,
}

impl TimerPolicer {
    /// Creates a policer for `rate_bytes_per_sec` refilled every
    /// `period_ns` with burst `burst_bytes`.
    pub fn new(
        rate_bytes_per_sec: u64,
        period_ns: u64,
        burst_bytes: u64,
        out_port: PortId,
    ) -> Self {
        TimerPolicer {
            bucket: TimerTokenBucket::new(rate_bytes_per_sec, period_ns, burst_bytes),
            out_port,
            green: 0,
            red: 0,
        }
    }
}

impl EventProgram for TimerPolicer {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        _parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        match self.bucket.offer(meta.pkt_len as u64) {
            Color::Green => {
                self.green += 1;
                meta.dest = Destination::Port(self.out_port);
            }
            Color::Red => {
                self.red += 1;
                meta.dest = Destination::Drop;
            }
        }
    }

    fn on_timer(&mut self, ev: &TimerEvent, _now: SimTime, _a: &mut EventActions) {
        if ev.timer_id == TIMER_REFILL {
            self.bucket.refill();
        }
    }
}

/// Baseline policer using the fixed-function meter extern.
#[derive(Debug)]
pub struct MeterPolicer {
    /// The continuous-time meter.
    pub bucket: TokenBucket,
    /// Output port for conforming traffic.
    pub out_port: PortId,
    /// Conforming packets forwarded.
    pub green: u64,
    /// Non-conforming packets dropped.
    pub red: u64,
}

impl MeterPolicer {
    /// Creates the fixed-function policer.
    pub fn new(rate_bytes_per_sec: u64, burst_bytes: u64, out_port: PortId) -> Self {
        MeterPolicer {
            bucket: TokenBucket::new(rate_bytes_per_sec, burst_bytes),
            out_port,
            green: 0,
            red: 0,
        }
    }
}

impl PisaProgram for MeterPolicer {
    fn ingress(
        &mut self,
        _pkt: &mut Packet,
        _parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
    ) {
        match self.bucket.offer(now.as_nanos(), meta.pkt_len as u64) {
            Color::Green => {
                self.green += 1;
                meta.dest = Destination::Port(self.out_port);
            }
            Color::Red => {
                self.red += 1;
                meta.dest = Destination::Drop;
            }
        }
    }
}

/// Runs both policers against the same CBR overload and returns the
/// green-rate relative error of each against the configured rate:
/// `(timer_error, meter_error)`. Used by tests and the bench sweep.
pub fn compare_policers(timer_period_ns: u64, seed: u64) -> (f64, f64) {
    use crate::common::{addr, dumbbell, run_until, sink_addr};
    use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
    use edp_evsim::{Sim, SimDuration};
    use edp_netsim::traffic::start_cbr;
    use edp_netsim::Network;
    use edp_packet::PacketBuilder;
    use edp_pisa::{BaselineSwitch, QueueConfig};

    const RATE: u64 = 12_500_000; // 100 Mb/s in bytes/s
    const BURST: u64 = 15_000;
    let horizon = SimTime::from_millis(100);
    // Offered: 1500 B every 60 us = 200 Mb/s (2× the policed rate).
    let run_one = |timer: bool| -> f64 {
        let (mut net, senders, sink, _) = if timer {
            let cfg = EventSwitchConfig {
                n_ports: 2,
                timers: vec![TimerSpec {
                    id: TIMER_REFILL,
                    period: SimDuration::from_nanos(timer_period_ns),
                    start: SimDuration::from_nanos(timer_period_ns),
                }],
                ..Default::default()
            };
            let sw = EventSwitch::new(TimerPolicer::new(RATE, timer_period_ns, BURST, 1), cfg);
            dumbbell(Box::new(sw), 1, 10_000_000_000, seed)
        } else {
            let sw =
                BaselineSwitch::new(MeterPolicer::new(RATE, BURST, 1), 2, QueueConfig::default());
            dumbbell(Box::new(sw), 1, 10_000_000_000, seed)
        };
        let mut sim: Sim<Network> = Sim::new();
        let src = addr(1);
        start_cbr(
            &mut sim,
            senders[0],
            SimTime::ZERO,
            SimDuration::from_micros(60),
            u64::MAX,
            move |i| {
                PacketBuilder::udp(src, sink_addr(), 7, 8, &[])
                    .ident(i as u16)
                    .pad_to(1500)
                    .build()
            },
        );
        run_until(&mut net, &mut sim, horizon);
        let got = net.hosts[sink].stats.rx_bytes as f64 / horizon.as_secs_f64();
        (got - RATE as f64).abs() / RATE as f64
    };
    (run_one(true), run_one(false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fine_timer_matches_fixed_function_meter() {
        // 100 us refill: quantization is negligible.
        let (timer_err, meter_err) = compare_policers(100_000, 71);
        assert!(meter_err < 0.12, "meter error {meter_err}");
        assert!(timer_err < 0.15, "timer error {timer_err}");
    }

    #[test]
    fn coarse_timer_underdelivers_when_burst_smaller_than_quantum() {
        // With a 10 ms refill, one quantum is 125 KB but the bucket only
        // holds 15 KB: most of each refill is lost to the cap and the
        // policer under-delivers badly. This is exactly the quantization
        // cost of building a meter from a *slow* timer — the knob the
        // paper's "customize your own policing algorithms" point implies
        // the programmer must now own.
        let (fine, _) = compare_policers(100_000, 72);
        let (coarse, _) = compare_policers(10_000_000, 72); // 10 ms refill
        assert!(coarse > fine + 0.2, "coarse {coarse} vs fine {fine}");
        assert!(coarse < 1.0, "still forwards something: {coarse}");
    }

    #[test]
    fn policer_counts_green_and_red() {
        use edp_packet::PacketBuilder;
        use std::net::Ipv4Addr;
        let mut p = TimerPolicer::new(1_000_000, 1_000_000, 3_000, 1);
        let frame = PacketBuilder::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            &[0u8; 1400],
        )
        .build();
        let parsed = edp_packet::parse_packet(&frame).expect("p");
        // Burst allows 2 packets, third is red.
        for _ in 0..3 {
            let mut pkt = Packet::anonymous(frame.clone());
            let mut meta = StdMeta::ingress(0, SimTime::ZERO, pkt.len());
            let mut a = EventActions::new();
            p.on_ingress(&mut pkt, &parsed, &mut meta, SimTime::ZERO, &mut a);
        }
        assert_eq!(p.green, 2);
        assert_eq!(p.red, 1);
        // Refills restore service.
        for _ in 0..2000 {
            p.on_timer(
                &TimerEvent {
                    timer_id: TIMER_REFILL,
                    firing: 1,
                },
                SimTime::ZERO,
                &mut EventActions::new(),
            );
        }
        assert!(p.bucket.tokens() > 0);
    }
}
