//! # edp-apps — the paper's applications, event-driven and baseline
//!
//! One module per application the paper discusses, each built twice where
//! the paper draws a comparison: once against the event-driven
//! architecture (`edp-core`) and once against baseline PISA
//! (`edp-pisa`). Table 2's five application classes map to:
//!
//! | Class | Modules | Events used |
//! |---|---|---|
//! | Congestion Aware Forwarding | [`hula`], [`ecn`], [`ndp`] | Timer, Transmit, Enqueue, Dequeue, Overflow |
//! | Network Management | [`frr`], [`liveness`], [`migrate`] | Link Status, Timer, Generated Packet |
//! | Network Monitoring | [`microburst`], [`cms_reset`], [`rate_monitor`], [`int_reduce`] | Enqueue, Dequeue, Overflow, Timer |
//! | Traffic Management | [`fred`], [`policer`], [`scheduler`] | Enqueue, Dequeue, Overflow, Timer |
//! | In-Network Computing | [`netcache`] | Timer, Generated Packet |
//!
//! Every module's tests run the application on a real simulated topology
//! with byte-level packets; the `edp-bench` binaries re-run them at
//! experiment scale and print the paper's tables/figures.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cms_reset;
pub mod common;
pub mod ecn;
pub mod fred;
pub mod frr;
pub mod hula;
pub mod int_reduce;
pub mod liveness;
pub mod microburst;
pub mod migrate;
pub mod ndp;
pub mod netcache;
pub mod policer;
pub mod rate_monitor;
pub mod registry;
pub mod scheduler;
