//! Periodic count-min-sketch reset (§1, §3 "Network Monitoring").
//!
//! A CMS counting per-flow bytes must be cleared every measurement window.
//! On a baseline PISA device "the control plane must be responsible for
//! performing the reset operation", paying a controller round trip per
//! window and burning controller cycles; an event-driven device resets
//! from a timer event entirely in the data plane.
//!
//! Both variants run the same sketch and the same traffic; the experiment
//! compares control-plane message load and *reset lateness* — how long
//! after the nominal window boundary the counters actually clear, which
//! directly inflates over-counting at window edges.

use edp_core::event::{ControlPlaneEvent, TimerEvent};
use edp_core::{EventActions, EventProgram};
use edp_evsim::SimTime;
use edp_packet::{Packet, ParsedPacket};
use edp_pisa::{Destination, PortId, StdMeta};
use edp_primitives::CountMinSketch;
use serde::{Deserialize, Serialize};

/// Control-plane opcode for "reset the sketch".
pub const CP_OP_RESET: u32 = 1;

/// A recorded sketch reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResetRecord {
    /// When the reset executed in the data plane.
    pub at: SimTime,
    /// Items that had accumulated since the previous reset.
    pub items_cleared: u64,
}

/// Flow-byte accounting with periodic reset; the reset path is selected
/// by which stimulus arrives (timer event vs. control-plane event).
#[derive(Debug)]
pub struct CmsMonitor {
    /// The sketch.
    pub cms: CountMinSketch,
    /// Output port for data traffic.
    pub out_port: PortId,
    /// Reset history.
    pub resets: Vec<ResetRecord>,
    /// Peak estimate observed for any queried flow (sanity metric).
    pub peak_estimate: u64,
}

impl CmsMonitor {
    /// Creates the monitor.
    pub fn new(width: usize, depth: usize, out_port: PortId) -> Self {
        CmsMonitor {
            cms: CountMinSketch::new(width, depth),
            out_port,
            resets: Vec::new(),
            peak_estimate: 0,
        }
    }

    fn do_reset(&mut self, now: SimTime) {
        self.resets.push(ResetRecord {
            at: now,
            items_cleared: self.cms.items(),
        });
        self.cms.reset();
    }

    /// Mean lateness of resets against a nominal period, in ns: the i-th
    /// reset should happen at `(i+1) * period`.
    pub fn mean_reset_lateness_ns(&self, period_ns: u64) -> f64 {
        if self.resets.is_empty() {
            return f64::INFINITY;
        }
        let total: u64 = self
            .resets
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let nominal = (i as u64 + 1) * period_ns;
                r.at.as_nanos().saturating_sub(nominal)
            })
            .sum();
        total as f64 / self.resets.len() as f64
    }
}

impl EventProgram for CmsMonitor {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        meta.dest = Destination::Port(self.out_port);
        if let Some(key) = parsed.flow_key() {
            self.cms.update(key.hash64(), meta.pkt_len as u64);
            let est = self.cms.query(key.hash64());
            self.peak_estimate = self.peak_estimate.max(est);
        }
    }

    /// The event-driven reset path.
    fn on_timer(&mut self, _ev: &TimerEvent, now: SimTime, _a: &mut EventActions) {
        self.do_reset(now);
    }

    /// The baseline reset path (controller command arriving over the
    /// control channel).
    fn on_control_plane(&mut self, ev: &ControlPlaneEvent, now: SimTime, _a: &mut EventActions) {
        if ev.opcode == CP_OP_RESET {
            self.do_reset(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{addr, dumbbell, run_until, sink_addr};
    use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
    use edp_evsim::{Periodic, Sim, SimDuration};
    use edp_netsim::traffic::start_cbr;
    use edp_netsim::Network;
    use edp_packet::PacketBuilder;

    const PERIOD: SimDuration = SimDuration::from_millis(1);

    fn build(timers: Vec<TimerSpec>) -> (Network, edp_netsim::HostId) {
        let cfg = EventSwitchConfig {
            n_ports: 2,
            timers,
            ..Default::default()
        };
        let sw = EventSwitch::new(CmsMonitor::new(512, 4, 1), cfg);
        let (net, senders, _, _) = dumbbell(Box::new(sw), 1, 10_000_000_000, 11);
        (net, senders[0])
    }

    fn drive(net: &mut Network, sim: &mut Sim<Network>, sender: edp_netsim::HostId) {
        let src = addr(1);
        start_cbr(
            sim,
            sender,
            SimTime::ZERO,
            SimDuration::from_micros(20),
            450,
            move |i| {
                PacketBuilder::udp(src, sink_addr(), 1, 2, &[])
                    .ident(i as u16)
                    .pad_to(500)
                    .build()
            },
        );
        run_until(net, sim, SimTime::from_millis(10));
    }

    #[test]
    fn timer_reset_is_punctual_and_free() {
        let (mut net, sender) = build(vec![TimerSpec {
            id: 0,
            period: PERIOD,
            start: PERIOD,
        }]);
        let mut sim: Sim<Network> = Sim::new();
        drive(&mut net, &mut sim, sender);
        let prog = &net.switch_as::<EventSwitch<CmsMonitor>>(0).program;
        assert_eq!(prog.resets.len(), 10, "one reset per ms");
        assert_eq!(prog.mean_reset_lateness_ns(PERIOD.as_nanos()), 0.0);
        assert_eq!(net.cp_messages, 0, "no control-plane involvement");
        // The sketch really was cleared: items per window ≈ 450/10 packets.
        for r in &prog.resets[1..9] {
            assert!(r.items_cleared > 0, "traffic flowed in each window");
        }
    }

    #[test]
    fn control_plane_reset_pays_rtt_and_messages() {
        let (mut net, sender) = build(vec![]);
        let mut sim: Sim<Network> = Sim::new();
        let rtt_half = SimDuration::from_micros(250); // controller→switch latency
                                                      // Controller issues a reset each period, arriving rtt/2 later.
        sim.schedule_periodic(
            SimTime::ZERO + PERIOD,
            PERIOD,
            move |w: &mut Network, s: &mut Sim<Network>| {
                w.control_plane_send(s, rtt_half, 0, CP_OP_RESET, [0; 4]);
                Periodic::Continue
            },
        );
        drive(&mut net, &mut sim, sender);
        let prog = &net.switch_as::<EventSwitch<CmsMonitor>>(0).program;
        assert!(prog.resets.len() >= 9);
        let lateness = prog.mean_reset_lateness_ns(PERIOD.as_nanos());
        assert!(
            (lateness - 250_000.0).abs() < 1_000.0,
            "reset lateness should equal the CP channel latency, got {lateness}"
        );
        assert_eq!(net.cp_messages, prog.resets.len() as u64 + 1);
    }

    #[test]
    fn sketch_counts_between_resets() {
        let (mut net, sender) = build(vec![TimerSpec {
            id: 0,
            period: PERIOD,
            start: PERIOD,
        }]);
        let mut sim: Sim<Network> = Sim::new();
        drive(&mut net, &mut sim, sender);
        let prog = &net.switch_as::<EventSwitch<CmsMonitor>>(0).program;
        // 450 pkts × 500 B over 10 windows: peak per-window estimate for
        // the single flow is ≈ 45 × 500 = 22.5 KB (within CMS error).
        assert!(prog.peak_estimate >= 20_000, "peak {}", prog.peak_estimate);
        assert!(prog.peak_estimate <= 30_000, "peak {}", prog.peak_estimate);
    }
}
