//! The analyzer-facing app registry: every built-in application paired
//! with the [`AppManifest`] it declares to `edp-analyze`.
//!
//! Each entry constructs a throwaway instance at representative
//! parameters (the analyzer's probe pass mutates it) and declares the
//! handler set, armed timers, understood control-plane opcodes, merge
//! ops, table snapshots, and — where a hazard is the documented design —
//! per-diagnostic `allow`s with the reason on record.

use crate::{
    cms_reset, fred, frr, hula, int_reduce, liveness, microburst, migrate, ndp, netcache, policer,
    rate_monitor, scheduler,
};
use edp_core::aggreg::MERGE_ADD;
use edp_core::{AppManifest, BaselineAdapter, EmitFootprint, EventKind, EventProgram};
use edp_evsim::SimTime;
use edp_pisa::{PisaProgram, TableRouter};
use std::net::Ipv4Addr;

/// One registered application: an analyzable instance plus its manifest.
pub struct RegisteredApp {
    /// What the app declares to the analyzer.
    pub manifest: AppManifest,
    /// A throwaway instance for the probe pass to exercise.
    pub program: Box<dyn EventProgram>,
}

/// Why the three intentionally multiported registers are allowed: the
/// paper's §2 apps were written against `shared_register` semantics, and
/// each registers [`MERGE_ADD`] so the analyzer proves an
/// aggregation-register realization (§4, Figure 3) of the same state is
/// legal.
const MULTIPORT_REASON: &str =
    "intentional multiported shared_register (§2); MERGE_ADD is registered and proven \
     reorder-tolerant, so the §4 aggregation-register realization is legal";

/// Builds every built-in app with its manifest — the set `edp_lint`
/// analyzes and CI gates on.
pub fn builtin_apps() -> Vec<RegisteredApp> {
    use EventKind::*;

    // The baseline router exercises table introspection: routes are
    // installed through the management channel exactly as a deployment
    // would, then snapshotted into the manifest for rule analysis.
    let mut router = TableRouter::new();
    for (ip, plen, port) in [
        (Ipv4Addr::new(10, 0, 0, 0), 24u64, 1u64),
        (Ipv4Addr::new(10, 0, 1, 0), 24, 2),
        (Ipv4Addr::new(10, 0, 0, 0), 8, 3),
        (Ipv4Addr::new(0, 0, 0, 0), 0, 0),
    ] {
        router.control_update(
            TableRouter::OP_INSERT_ROUTE,
            [u32::from(ip) as u64, plen, port, 0],
            SimTime::ZERO,
        );
    }

    vec![
        RegisteredApp {
            manifest: AppManifest::new("microburst")
                .handles([IngressPacket, BufferEnqueue, BufferDequeue])
                .merge_op(MERGE_ADD)
                .emits(IngressPacket, EmitFootprint::Any)
                .source(file!())
                .allow("EDP-W001", "flowBufSize_reg", MULTIPORT_REASON)
                .allow("EDP-W002", "flowBufSize_reg", MULTIPORT_REASON),
            program: Box::new(microburst::MicroburstEvent::new(64, 8_000, 1)),
        },
        RegisteredApp {
            manifest: AppManifest::new("hula-leaf")
                .handles([IngressPacket, GeneratedPacket, TimerExpiration])
                .timers([hula::TIMER_PROBE])
                .generates()
                .emits(IngressPacket, EmitFootprint::Any)
                .emits(GeneratedPacket, EmitFootprint::Any)
                .source(file!()),
            program: Box::new(hula::HulaLeaf::new(
                0,
                Ipv4Addr::new(10, 0, 0, 1),
                0,
                vec![1, 2],
                4,
            )),
        },
        RegisteredApp {
            manifest: AppManifest::new("hula-spine")
                .handles([IngressPacket, PacketTransmitted, TimerExpiration])
                .timers([hula::TIMER_PROBE])
                // Probe decay and tx-rate accounting only: the timer and
                // transmit handlers touch no wire, so the closed world
                // certifies spine timer cranks as shard-local.
                .emits(IngressPacket, EmitFootprint::Any)
                .source(file!()),
            program: Box::new(hula::HulaSpine::new(
                vec![0, 1],
                vec![40_000_000_000; 2],
                (8, 1_000_000),
            )),
        },
        RegisteredApp {
            manifest: AppManifest::new("ndp-trim")
                .handles([IngressPacket, BufferOverflow])
                // The overflow trim re-offers the victim header to the
                // queue that overflowed — a real emission decided by the
                // overflow handler, so it carries its own footprint.
                .emits(IngressPacket, EmitFootprint::Any)
                .emits(BufferOverflow, EmitFootprint::Any)
                .source(file!()),
            program: Box::new(ndp::NdpTrim::new(1)),
        },
        RegisteredApp {
            manifest: AppManifest::new("timer-policer")
                .handles([IngressPacket, TimerExpiration])
                .timers([policer::TIMER_REFILL])
                // Refill mutates bucket state only — the canonical
                // certified-local timer of the effects analysis.
                .emits(IngressPacket, EmitFootprint::Any)
                .source(file!()),
            program: Box::new(policer::TimerPolicer::new(1_000_000, 1_000_000, 3_000, 1)),
        },
        RegisteredApp {
            manifest: AppManifest::new("state-migrate")
                .handles([IngressPacket, GeneratedPacket, LinkStatusChange])
                .generates()
                .emits(IngressPacket, EmitFootprint::Any)
                .emits(GeneratedPacket, EmitFootprint::Any)
                .source(file!()),
            program: Box::new(migrate::StatefulCounter::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                0,
                1,
                64,
            )),
        },
        RegisteredApp {
            manifest: AppManifest::new("telemetry-marker")
                .handles([IngressPacket, BufferDequeue, EgressPacket])
                .emits(IngressPacket, EmitFootprint::Any)
                .source(file!()),
            program: Box::new(crate::ecn::TelemetryMarker::new(4, 1)),
        },
        RegisteredApp {
            manifest: AppManifest::new("rate-monitor")
                .handles([IngressPacket, TimerExpiration])
                .timers([rate_monitor::TIMER_SHIFT, rate_monitor::TIMER_SAMPLE])
                // Both timers shift/sample local estimators — certified.
                .emits(IngressPacket, EmitFootprint::Any)
                .source(file!()),
            program: Box::new(rate_monitor::RateMonitor::new(64, 8, 1_000_000, 1)),
        },
        RegisteredApp {
            manifest: AppManifest::new("liveness-monitor")
                .handles([IngressPacket, GeneratedPacket, TimerExpiration])
                .timers([liveness::TIMER_PROBE, liveness::TIMER_CHECK])
                .generates()
                .emits(IngressPacket, EmitFootprint::Any)
                .emits(GeneratedPacket, EmitFootprint::Any)
                .source(file!()),
            program: Box::new(liveness::LivenessMonitor::new(
                Ipv4Addr::new(10, 0, 0, 1),
                vec![
                    liveness::Neighbor {
                        port: 1,
                        addr: Ipv4Addr::new(10, 0, 0, 2),
                    },
                    liveness::Neighbor {
                        port: 2,
                        addr: Ipv4Addr::new(10, 0, 0, 3),
                    },
                ],
                5_000_000,
            )),
        },
        RegisteredApp {
            manifest: AppManifest::new("frr")
                .handles([IngressPacket, LinkStatusChange])
                // Failover flips the active port; only packets emit.
                .emits(IngressPacket, EmitFootprint::Any)
                .source(file!()),
            program: Box::new(frr::FrrEvent::new(1, 2)),
        },
        RegisteredApp {
            manifest: AppManifest::new("fred-aqm")
                .handles([IngressPacket, BufferEnqueue, BufferDequeue, TimerExpiration])
                .timers([fred::TIMER_REPORT])
                .merge_op(MERGE_ADD)
                // The report timer notifies the control plane — an async
                // channel that never crosses the wire — so it certifies.
                .emits(IngressPacket, EmitFootprint::Any)
                .source(file!())
                .allow("EDP-W001", "flow_occ", MULTIPORT_REASON)
                .allow("EDP-W002", "flow_occ", MULTIPORT_REASON),
            program: Box::new(fred::FredAqm::new(64, 60_000, 1_500, 1)),
        },
        RegisteredApp {
            manifest: AppManifest::new("netcache")
                .handles([IngressPacket, GeneratedPacket, TimerExpiration])
                .timers([netcache::TIMER_STATS])
                .generates()
                // The stats timer itself is silent, but `generates()` is
                // app-global: cache-hit replies keep the timer closure
                // open, so netcache timers stay horizon-bound. Honest.
                .emits(IngressPacket, EmitFootprint::Any)
                .emits(GeneratedPacket, EmitFootprint::Any)
                .source(file!()),
            program: Box::new(netcache::NetCacheSwitch::new(0, 1, 64, 3, true)),
        },
        RegisteredApp {
            manifest: AppManifest::new("cms-monitor")
                .handles([IngressPacket, TimerExpiration, ControlPlaneTriggered])
                .timers([0])
                .cp_ops([cms_reset::CP_OP_RESET])
                // Sketch reset (timer or controller-triggered) is pure
                // state mutation — both control kinds certify local.
                .emits(IngressPacket, EmitFootprint::Any)
                .source(file!()),
            program: Box::new(cms_reset::CmsMonitor::new(64, 4, 1)),
        },
        RegisteredApp {
            manifest: AppManifest::new("stfq-scheduler")
                .handles([IngressPacket, BufferDequeue])
                .emits(IngressPacket, EmitFootprint::Any)
                .source(file!()),
            program: Box::new(scheduler::StfqScheduler::new(64, 1)),
        },
        RegisteredApp {
            manifest: AppManifest::new("int-reduce")
                .handles([
                    IngressPacket,
                    BufferEnqueue,
                    BufferDequeue,
                    BufferOverflow,
                    TimerExpiration,
                ])
                .timers([int_reduce::TIMER_WINDOW])
                .merge_op(MERGE_ADD)
                // The window timer folds summaries and notifies the
                // control plane; no frame leaves — certified local.
                .emits(IngressPacket, EmitFootprint::Any)
                .source(file!())
                .allow("EDP-W001", "int_flow_occ", MULTIPORT_REASON)
                .allow("EDP-W002", "int_flow_occ", MULTIPORT_REASON),
            program: Box::new(int_reduce::IntReduced::new(1, 4, 64, 1_000_000)),
        },
        RegisteredApp {
            manifest: AppManifest::new("baseline-router")
                .handles([IngressPacket, EgressPacket, ControlPlaneTriggered])
                .cp_ops([TableRouter::OP_INSERT_ROUTE, TableRouter::OP_CLEAR_ROUTES])
                .table(router.routes().shape())
                .emits(IngressPacket, EmitFootprint::Any)
                .source(file!()),
            program: Box::new(BaselineAdapter(router)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_builtin_apps() {
        let apps = builtin_apps();
        assert_eq!(apps.len(), 16);
        let mut names: Vec<&str> = apps.iter().map(|a| a.manifest.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16, "app names must be unique");
    }

    #[test]
    fn every_app_declares_a_closed_emission_world() {
        for app in builtin_apps() {
            let s = edp_core::EffectSummary::from_manifest(&app.manifest);
            assert!(
                s.closed_world,
                "{} left its emission world open — declare emits()/no_emissions()",
                app.manifest.name
            );
            assert!(
                app.manifest.source.is_some(),
                "{} declares no source file for SARIF locations",
                app.manifest.name
            );
        }
    }

    /// Pins which timers the effects analysis certifies as shard-local.
    /// Adding an emission path to a certified app's timer cascade must
    /// consciously move it to the horizon-bound list, not silently lose
    /// (or worse, silently keep) the certificate.
    #[test]
    fn timer_certificates_match_the_documented_set() {
        let certified = [
            "hula-spine",
            "timer-policer",
            "rate-monitor",
            "fred-aqm",
            "cms-monitor",
            "int-reduce",
        ];
        for app in builtin_apps() {
            let m = &app.manifest;
            if !m.implements(EventKind::TimerExpiration) {
                continue;
            }
            let s = edp_core::EffectSummary::from_manifest(m);
            assert_eq!(
                s.timer_local(),
                certified.contains(&m.name),
                "{}: timer certificate drifted from the documented set",
                m.name
            );
        }
    }

    #[test]
    fn every_app_declares_ingress() {
        for app in builtin_apps() {
            assert!(
                app.manifest.implements(EventKind::IngressPacket),
                "{} declares no ingress handler",
                app.manifest.name
            );
        }
    }
}
