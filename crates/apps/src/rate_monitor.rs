//! Time-windowed network measurement (§5 student project).
//!
//! "One student group demonstrated how to use timer events in conjunction
//! with a simple shift register to accurately measure flow rates in the
//! data plane." [`RateMonitor`] is that program: per-flow
//! [`WindowRate`] shift registers fed by ingress packets and advanced by
//! a timer event; a second timer samples the estimate into a time series
//! so experiments can compare it against ground truth.

use edp_core::event::TimerEvent;
use edp_core::{EventActions, EventProgram};
use edp_evsim::{SimTime, TimeSeries};
use edp_packet::{Packet, ParsedPacket};
use edp_pisa::{Destination, PortId, StdMeta};
use edp_primitives::WindowRate;

/// Timer id advancing the shift registers.
pub const TIMER_SHIFT: u16 = 0;
/// Timer id sampling estimates into the time series.
pub const TIMER_SAMPLE: u16 = 1;

/// Per-flow windowed rate measurement in the data plane.
#[derive(Debug)]
pub struct RateMonitor {
    /// One shift register per tracked flow slot (hash-indexed).
    pub windows: Vec<WindowRate>,
    /// Sampled rate estimates per flow slot, in bits/s.
    pub samples: Vec<TimeSeries>,
    /// Output port for data traffic.
    pub out_port: PortId,
}

impl RateMonitor {
    /// Creates a monitor with `n_flows` slots, each a shift register of
    /// `n_buckets` × `bucket_ns`.
    pub fn new(n_flows: usize, n_buckets: usize, bucket_ns: u64, out_port: PortId) -> Self {
        RateMonitor {
            windows: (0..n_flows)
                .map(|_| WindowRate::new(n_buckets, bucket_ns))
                .collect(),
            samples: (0..n_flows).map(|_| TimeSeries::new()).collect(),
            out_port,
        }
    }

    /// Total stateful words (for the resource accounting).
    pub fn state_words(&self) -> usize {
        self.windows.iter().map(|w| w.state_words()).sum()
    }
}

impl EventProgram for RateMonitor {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        meta.dest = Destination::Port(self.out_port);
        if let Some(key) = parsed.flow_key() {
            let slot = key.index(self.windows.len());
            self.windows[slot].add(meta.pkt_len as u64);
        }
    }

    fn on_timer(&mut self, ev: &TimerEvent, now: SimTime, _a: &mut EventActions) {
        match ev.timer_id {
            TIMER_SHIFT => {
                for w in &mut self.windows {
                    w.tick();
                }
            }
            TIMER_SAMPLE => {
                for (i, w) in self.windows.iter().enumerate() {
                    self.samples[i].push(now, w.rate_bps());
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{addr, dumbbell, run_until, sink_addr};
    use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
    use edp_evsim::{Sim, SimDuration};
    use edp_netsim::traffic::{start_cbr, start_on_off};
    use edp_netsim::Network;
    use edp_packet::{FlowKey, IpProto, PacketBuilder};

    const N_FLOWS: usize = 16;
    const BUCKET: SimDuration = SimDuration::from_millis(1);

    fn build() -> (Network, Vec<edp_netsim::HostId>) {
        let cfg = EventSwitchConfig {
            n_ports: 3,
            timers: vec![
                TimerSpec {
                    id: TIMER_SHIFT,
                    period: BUCKET,
                    start: BUCKET,
                },
                TimerSpec {
                    id: TIMER_SAMPLE,
                    period: SimDuration::from_millis(5),
                    start: SimDuration::from_millis(10),
                },
            ],
            ..Default::default()
        };
        let sw = EventSwitch::new(RateMonitor::new(N_FLOWS, 8, BUCKET.as_nanos(), 2), cfg);
        let (net, senders, _, _) = dumbbell(Box::new(sw), 2, 10_000_000_000, 41);
        (net, senders)
    }

    fn flow_slot(src: u8, sp: u16, dp: u16) -> usize {
        FlowKey::new(addr(src), sink_addr(), IpProto::Udp, sp, dp).index(N_FLOWS)
    }

    #[test]
    fn cbr_rate_measured_accurately() {
        let (mut net, senders) = build();
        let mut sim: Sim<Network> = Sim::new();
        // 1000 B every 100 us = 80 Mb/s.
        let src = addr(1);
        start_cbr(
            &mut sim,
            senders[0],
            SimTime::ZERO,
            SimDuration::from_micros(100),
            1000,
            move |i| {
                PacketBuilder::udp(src, sink_addr(), 10, 20, &[])
                    .ident(i as u16)
                    .pad_to(1000)
                    .build()
            },
        );
        run_until(&mut net, &mut sim, SimTime::from_millis(90));
        let prog = &net.switch_as::<EventSwitch<RateMonitor>>(0).program;
        let s = &prog.samples[flow_slot(1, 10, 20)];
        assert!(!s.is_empty());
        // Steady-state samples (drop the first two while the window fills).
        let steady: Vec<f64> = s
            .points()
            .iter()
            .skip(2)
            .take(14)
            .map(|&(_, v)| v)
            .collect();
        for (i, v) in steady.iter().enumerate() {
            assert!((v - 80e6).abs() / 80e6 < 0.15, "sample {i}: {v} vs 80 Mb/s");
        }
    }

    #[test]
    fn bursty_flow_average_rate_is_right() {
        let (mut net, senders) = build();
        let mut sim: Sim<Network> = Sim::new();
        // 20 × 1000 B per 7 ms ≈ 22.86 Mb/s average, very bursty. The
        // 7 ms period is deliberately co-prime with the 8 ms window and
        // the 5 ms sampling period so aliasing averages out.
        let src = addr(2);
        start_on_off(
            &mut sim,
            senders[1],
            SimTime::ZERO,
            SimDuration::from_millis(7),
            20,
            SimDuration::ZERO,
            SimTime::from_millis(100),
            move |i| {
                PacketBuilder::udp(src, sink_addr(), 30, 40, &[])
                    .ident(i as u16)
                    .pad_to(1000)
                    .build()
            },
        );
        run_until(&mut net, &mut sim, SimTime::from_millis(100));
        let prog = &net.switch_as::<EventSwitch<RateMonitor>>(0).program;
        let s = &prog.samples[flow_slot(2, 30, 40)];
        let truth = 20.0 * 1000.0 * 8.0 / 7e-3; // bits per second
        let avg = s.time_weighted_mean();
        assert!(
            (avg - truth).abs() / truth < 0.35,
            "bursty average {avg} vs {truth}"
        );
        assert!(s.max_value() >= avg, "max {} avg {avg}", s.max_value());
    }

    #[test]
    fn idle_flow_measures_zero() {
        let (mut net, _senders) = build();
        let mut sim: Sim<Network> = Sim::new();
        run_until(&mut net, &mut sim, SimTime::from_millis(50));
        let prog = &net.switch_as::<EventSwitch<RateMonitor>>(0).program;
        for s in &prog.samples {
            assert_eq!(s.max_value(), 0.0);
        }
    }
}
