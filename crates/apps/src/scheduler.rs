//! Programmable packet scheduling with PIFO + events (§3).
//!
//! "Taking this one step further, we can construct a complete,
//! programmable packet scheduler using our event-driven model in
//! combination with the recently proposed Push-In-First-Out (PIFO)
//! queue."
//!
//! [`StfqScheduler`] implements Start-Time Fair Queueing: the ingress
//! handler computes each packet's rank as
//! `start = max(virtual_time, finish[flow])` and sets
//! `finish[flow] = start + len`; the **dequeue event** advances the
//! virtual time to the start tag of the departing packet. Computing the
//! virtual time requires knowing what *leaves* the queue — exactly the
//! signal only an event-driven architecture provides. The TM runs a PIFO
//! discipline on the computed rank.
//!
//! The comparator is plain FIFO: a blast of back-to-back packets from
//! one flow delays every other flow by the whole burst; under STFQ the
//! flows interleave by virtual time.

use edp_core::event::DequeueEvent;
use edp_core::{EventActions, EventProgram};
use edp_evsim::SimTime;
use edp_packet::{Packet, ParsedPacket};
use edp_pisa::{Destination, PortId, RegisterArray, StdMeta};

/// Start-Time Fair Queueing over a PIFO traffic manager.
#[derive(Debug)]
pub struct StfqScheduler {
    /// Per-flow finish tags (virtual units = bytes).
    pub finish: RegisterArray,
    /// Current virtual time (advanced by dequeue events).
    pub virtual_time: u64,
    /// Output port for data traffic.
    pub out_port: PortId,
    /// Packets ranked.
    pub scheduled: u64,
}

impl StfqScheduler {
    /// Creates the scheduler with `n_flows` flow-state slots.
    pub fn new(n_flows: usize, out_port: PortId) -> Self {
        StfqScheduler {
            finish: RegisterArray::new("stfq_finish", n_flows),
            virtual_time: 0,
            out_port,
            scheduled: 0,
        }
    }
}

impl EventProgram for StfqScheduler {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        meta.dest = Destination::Port(self.out_port);
        let Some(key) = parsed.flow_key() else {
            return;
        };
        let flow = key.index(self.finish.size());
        // STFQ: start = max(V, finish[f]); finish[f] = start + len.
        let start = self.virtual_time.max(self.finish.read(flow));
        self.finish.write(flow, start + meta.pkt_len as u64);
        meta.rank = start;
        // Stage the start tag so the dequeue event can advance V.
        meta.event_meta = [flow as u64, start, 0, 0];
        self.scheduled += 1;
    }

    fn on_dequeue(&mut self, ev: &DequeueEvent, _now: SimTime, _a: &mut EventActions) {
        // Virtual time = start tag of the packet now departing.
        self.virtual_time = self.virtual_time.max(ev.meta[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{addr, dumbbell, run_until, sink_addr};
    use edp_core::{EventSwitch, EventSwitchConfig};
    use edp_evsim::{jain_fairness, Sim, SimDuration};
    use edp_netsim::traffic::{start_burst, start_cbr};
    use edp_netsim::Network;
    use edp_packet::PacketBuilder;
    use edp_pisa::{QueueConfig, QueueDisc};

    const BOTTLENECK: u64 = 100_000_000;
    const HORIZON: SimTime = SimTime::from_millis(60);

    fn run(pifo: bool) -> Vec<f64> {
        let disc = if pifo {
            QueueDisc::Pifo
        } else {
            QueueDisc::DropTailFifo
        };
        let cfg = EventSwitchConfig {
            n_ports: 4,
            queue: QueueConfig {
                capacity_bytes: 1_000_000,
                disc,
                ..QueueConfig::default()
            },
            ..Default::default()
        };
        let sw = EventSwitch::new(StfqScheduler::new(64, 3), cfg);
        let (mut net, senders, sink, _) = dumbbell(Box::new(sw), 3, BOTTLENECK, 81);
        let mut sim: Sim<Network> = Sim::new();
        // Two steady flows plus one flow that blasts its whole demand at
        // t = 0 as a burst.
        for (i, &h) in senders.iter().take(2).enumerate() {
            let src = addr(i as u8 + 1);
            start_cbr(
                &mut sim,
                h,
                SimTime::ZERO,
                SimDuration::from_micros(400),
                120,
                move |s| {
                    PacketBuilder::udp(src, sink_addr(), 100 + i as u16, 9000, &[])
                        .ident(s as u16)
                        .pad_to(1500)
                        .build()
                },
            );
        }
        let src = addr(3);
        start_burst(
            &mut sim,
            senders[2],
            SimTime::ZERO,
            120,
            SimDuration::ZERO,
            move |s| {
                PacketBuilder::udp(src, sink_addr(), 300, 9000, &[])
                    .ident(s as u16)
                    .pad_to(1500)
                    .build()
            },
        );
        run_until(&mut net, &mut sim, HORIZON);
        // Mean delivery latency per flow is the schedule-quality signal.
        (0..3)
            .map(|i| {
                let key = edp_packet::FlowKey::new(
                    addr(i as u8 + 1),
                    sink_addr(),
                    edp_packet::IpProto::Udp,
                    if i == 2 { 300 } else { 100 + i as u16 },
                    9000,
                );
                net.hosts[sink]
                    .stats
                    .flows
                    .get(&key)
                    .map(|f| f.latency_ns.mean())
                    .unwrap_or(f64::INFINITY)
            })
            .collect()
    }

    #[test]
    fn stfq_protects_steady_flows_from_a_burst() {
        let fifo = run(false);
        let stfq = run(true);
        // Under FIFO the burst parks 180 KB in front of the steady flows;
        // under STFQ their packets jump the burst via rank.
        let steady_fifo = fifo[0].max(fifo[1]);
        let steady_stfq = stfq[0].max(stfq[1]);
        assert!(
            steady_stfq < steady_fifo / 2.0,
            "steady-flow latency: STFQ {steady_stfq} vs FIFO {steady_fifo}"
        );
        // The burst itself still completes (work conservation).
        assert!(stfq[2].is_finite());
    }

    #[test]
    fn virtual_time_is_monotone_and_advances() {
        let cfg = EventSwitchConfig {
            n_ports: 2,
            queue: QueueConfig {
                capacity_bytes: 1_000_000,
                disc: QueueDisc::Pifo,
                ..QueueConfig::default()
            },
            ..Default::default()
        };
        let mut sw = EventSwitch::new(StfqScheduler::new(16, 1), cfg);
        let frame = |sp: u16| {
            Packet::anonymous(
                PacketBuilder::udp(addr(1), addr(2), sp, 9, &[])
                    .pad_to(500)
                    .build(),
            )
        };
        for i in 0..20u16 {
            sw.receive(SimTime::from_nanos(i as u64 * 10), 0, frame(i % 4));
        }
        let mut last_v = 0;
        for i in 0..20u64 {
            assert!(sw.transmit(SimTime::from_micros(10 + i), 1).is_some());
            let v = sw.program.virtual_time;
            assert!(v >= last_v, "virtual time went backwards");
            last_v = v;
        }
        assert!(last_v > 0, "virtual time advanced");
        assert_eq!(sw.program.scheduled, 20);
    }

    #[test]
    fn equal_flows_share_equally_under_stfq() {
        // Three equal CBR flows through a PIFO/STFQ bottleneck: goodput
        // is even (Jain ≈ 1).
        let cfg = EventSwitchConfig {
            n_ports: 4,
            queue: QueueConfig {
                capacity_bytes: 40_000,
                disc: QueueDisc::Pifo,
                ..QueueConfig::default()
            },
            ..Default::default()
        };
        let sw = EventSwitch::new(StfqScheduler::new(64, 3), cfg);
        let (mut net, senders, sink, _) = dumbbell(Box::new(sw), 3, BOTTLENECK, 82);
        let mut sim: Sim<Network> = Sim::new();
        // Co-prime intervals and staggered starts so the flows don't
        // phase-lock on the deterministic event order (synchronized CBR
        // would let one flow always claim the freed queue slot).
        for (i, &h) in senders.iter().enumerate() {
            let src = addr(i as u8 + 1);
            let interval = SimDuration::from_micros([97u64, 101, 103][i]);
            let start = SimTime::from_micros(13 * i as u64);
            start_cbr(&mut sim, h, start, interval, u64::MAX, move |s| {
                PacketBuilder::udp(src, sink_addr(), 500 + i as u16, 9000, &[])
                    .ident(s as u16)
                    .pad_to(1500)
                    .build()
            });
        }
        run_until(&mut net, &mut sim, HORIZON);
        let goodputs: Vec<f64> = (0..3)
            .map(|i| {
                let key = edp_packet::FlowKey::new(
                    addr(i as u8 + 1),
                    sink_addr(),
                    edp_packet::IpProto::Udp,
                    500 + i as u16,
                    9000,
                );
                net.hosts[sink]
                    .stats
                    .flows
                    .get(&key)
                    .map(|f| f.bytes as f64)
                    .unwrap_or(0.0)
            })
            .collect();
        let j = jain_fairness(&goodputs);
        assert!(j > 0.95, "jain {j}: {goodputs:?}");
    }
}
