//! In-network INT report reduction (§3 "Network Monitoring").
//!
//! "One challenge with INT is the potentially huge volume of measurement
//! data, which might overwhelm a software-based logging and analysis
//! system. But if we can expose event-driven programming to the
//! programmer, data-plane applications can analyze, pre-process and
//! reduce the amount of data reports, using filters and watchlists. For
//! example, data planes can use timer events to aggregate congestion
//! information (e.g. queue size, packet loss, or active flow count) and
//! only report anomalous events to the monitoring system periodically."
//!
//! * [`IntPerPacket`] — the baseline INT collector: one report per
//!   packet (the firehose).
//! * [`IntReduced`] — the event-driven reducer: enqueue/dequeue/overflow
//!   events aggregate queue size, loss, and active flows; a timer event
//!   emits ONE summary report per window, plus immediate reports only
//!   for anomalies (queue above a threshold) gated by a per-window
//!   watchlist so each anomalous source reports once per window.

use edp_core::event::{DequeueEvent, EnqueueEvent, OverflowEvent, TimerEvent};
use edp_core::{Accessor, EventActions, EventProgram, SharedRegister};
use edp_evsim::SimTime;
use edp_packet::{Packet, ParsedPacket};
use edp_pisa::{Destination, PortId, StdMeta};
use serde::{Deserialize, Serialize};

/// Timer id for the report window.
pub const TIMER_WINDOW: u16 = 0;
/// Notification code: periodic window summary.
pub const NOTIFY_SUMMARY: u32 = 30;
/// Notification code: anomaly (queue above threshold).
pub const NOTIFY_ANOMALY: u32 = 31;

/// One aggregated window summary, as delivered to the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSummary {
    /// When the window closed.
    pub at: SimTime,
    /// Peak queue occupancy in the window, bytes.
    pub peak_q_bytes: u64,
    /// Packets lost to overflow in the window.
    pub losses: u64,
    /// Active flows at window close.
    pub active_flows: u64,
}

/// Baseline: report every packet (what raw INT does).
#[derive(Debug)]
pub struct IntPerPacket {
    /// Output port for data traffic.
    pub out_port: PortId,
    /// Reports emitted toward the monitoring system.
    pub reports: u64,
}

impl IntPerPacket {
    /// Creates the per-packet reporter.
    pub fn new(out_port: PortId) -> Self {
        IntPerPacket {
            out_port,
            reports: 0,
        }
    }
}

impl EventProgram for IntPerPacket {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        _parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        a: &mut EventActions,
    ) {
        meta.dest = Destination::Port(self.out_port);
        // One telemetry report per packet — the firehose the paper warns
        // about. Modelled as a control-plane notification (the monitor
        // channel); a hardware design would emit report packets instead,
        // with identical volume.
        self.reports += 1;
        a.notify_control_plane(NOTIFY_SUMMARY, [meta.pkt_len as u64, 0, 0, 0]);
    }
}

/// Event-driven reducer: aggregate in the data plane, report per window.
#[derive(Debug)]
pub struct IntReduced {
    /// Output port for data traffic.
    pub out_port: PortId,
    /// Anomaly threshold on queue occupancy, bytes.
    pub anomaly_thresh: u64,
    /// Per-flow occupancy (for the active-flow count).
    pub flow_occ: SharedRegister,
    /// Active flows (computed from enqueue/dequeue events).
    pub active_flows: u64,
    /// Peak queue occupancy this window.
    pub window_peak: u64,
    /// Overflow losses this window.
    pub window_losses: u64,
    /// Watchlist latch: whether an anomaly was already reported this
    /// window (per port).
    pub anomaly_latched: Vec<bool>,
    /// Reports emitted (summaries + anomalies).
    pub reports: u64,
    /// Anomaly reports within `reports`.
    pub anomaly_reports: u64,
    /// Summaries captured locally for test inspection.
    pub summaries: Vec<WindowSummary>,
}

impl IntReduced {
    /// Creates the reducer.
    pub fn new(out_port: PortId, n_ports: usize, n_flows: usize, anomaly_thresh: u64) -> Self {
        IntReduced {
            out_port,
            anomaly_thresh,
            flow_occ: SharedRegister::new("int_flow_occ", n_flows),
            active_flows: 0,
            window_peak: 0,
            window_losses: 0,
            anomaly_latched: vec![false; n_ports],
            reports: 0,
            anomaly_reports: 0,
            summaries: Vec::new(),
        }
    }
}

impl EventProgram for IntReduced {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        meta.dest = Destination::Port(self.out_port);
        if let Some(key) = parsed.flow_key() {
            let flow = key.index(self.flow_occ.size());
            meta.event_meta = [flow as u64, meta.pkt_len as u64, 0, 0];
        }
    }

    fn on_enqueue(&mut self, ev: &EnqueueEvent, _now: SimTime, a: &mut EventActions) {
        let before = self
            .flow_occ
            .add(Accessor::Enqueue, ev.meta[0] as usize, ev.meta[1])
            - ev.meta[1];
        if before == 0 {
            self.active_flows += 1;
        }
        self.window_peak = self.window_peak.max(ev.q_bytes);
        // Anomaly filter: immediate report, once per window per port.
        let p = ev.port as usize;
        if ev.q_bytes > self.anomaly_thresh && !self.anomaly_latched[p] {
            self.anomaly_latched[p] = true;
            self.reports += 1;
            self.anomaly_reports += 1;
            a.notify_control_plane(NOTIFY_ANOMALY, [ev.port as u64, ev.q_bytes, 0, 0]);
        }
    }

    fn on_dequeue(&mut self, ev: &DequeueEvent, _now: SimTime, _a: &mut EventActions) {
        let after = self
            .flow_occ
            .sub(Accessor::Dequeue, ev.meta[0] as usize, ev.meta[1]);
        if after == 0 && self.active_flows > 0 {
            self.active_flows -= 1;
        }
    }

    fn on_overflow(&mut self, _ev: &OverflowEvent, _now: SimTime, _a: &mut EventActions) {
        self.window_losses += 1;
    }

    fn on_timer(&mut self, ev: &TimerEvent, now: SimTime, a: &mut EventActions) {
        if ev.timer_id != TIMER_WINDOW {
            return;
        }
        let s = WindowSummary {
            at: now,
            peak_q_bytes: self.window_peak,
            losses: self.window_losses,
            active_flows: self.active_flows,
        };
        self.summaries.push(s);
        self.reports += 1;
        a.notify_control_plane(
            NOTIFY_SUMMARY,
            [s.peak_q_bytes, s.losses, s.active_flows, 0],
        );
        self.window_peak = 0;
        self.window_losses = 0;
        for l in &mut self.anomaly_latched {
            *l = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{addr, dumbbell, run_until, sink_addr};
    use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
    use edp_evsim::{Sim, SimDuration};
    use edp_netsim::traffic::{start_burst, start_cbr};
    use edp_netsim::Network;
    use edp_packet::PacketBuilder;
    use edp_pisa::QueueConfig;

    const WINDOW: SimDuration = SimDuration::from_millis(2);
    const HORIZON: SimTime = SimTime::from_millis(40);
    const THRESH: u64 = 30_000;

    fn drive(net: &mut Network, sim: &mut Sim<Network>, senders: &[usize]) {
        // Two steady flows + one mid-run burst to trip the anomaly filter.
        for (i, &h) in senders.iter().take(2).enumerate() {
            let src = addr(i as u8 + 1);
            start_cbr(
                sim,
                h,
                SimTime::ZERO,
                SimDuration::from_micros(120),
                300,
                move |s| {
                    PacketBuilder::udp(src, sink_addr(), 10 + i as u16, 20, &[])
                        .ident(s as u16)
                        .pad_to(1000)
                        .build()
                },
            );
        }
        let src = addr(3);
        start_burst(
            sim,
            senders[2],
            SimTime::from_millis(20),
            60,
            SimDuration::ZERO,
            move |s| {
                PacketBuilder::udp(src, sink_addr(), 30, 40, &[])
                    .ident(s as u16)
                    .pad_to(1500)
                    .build()
            },
        );
        run_until(net, sim, HORIZON);
    }

    fn qc() -> QueueConfig {
        QueueConfig {
            capacity_bytes: 150_000,
            ..QueueConfig::default()
        }
    }

    #[test]
    fn reduction_factor_is_large_and_anomaly_is_caught() {
        // Per-packet baseline.
        let cfg = EventSwitchConfig {
            n_ports: 4,
            queue: qc(),
            ..Default::default()
        };
        let sw = EventSwitch::new(IntPerPacket::new(3), cfg);
        let (mut net, senders, _, _) = dumbbell(Box::new(sw), 3, 200_000_000, 111);
        let mut sim: Sim<Network> = Sim::new();
        drive(&mut net, &mut sim, &senders);
        let raw_reports = net
            .switch_as::<EventSwitch<IntPerPacket>>(0)
            .program
            .reports;

        // Event-driven reducer, identical workload.
        let cfg = EventSwitchConfig {
            n_ports: 4,
            queue: qc(),
            timers: vec![TimerSpec {
                id: TIMER_WINDOW,
                period: WINDOW,
                start: WINDOW,
            }],
            ..Default::default()
        };
        let sw = EventSwitch::new(IntReduced::new(3, 4, 64, THRESH), cfg);
        let (mut net, senders, _, _) = dumbbell(Box::new(sw), 3, 200_000_000, 111);
        let mut sim: Sim<Network> = Sim::new();
        drive(&mut net, &mut sim, &senders);
        let prog = &net.switch_as::<EventSwitch<IntReduced>>(0).program;

        assert!(raw_reports >= 650, "firehose: {raw_reports}");
        assert!(
            prog.reports < raw_reports / 20,
            "reduction: {} vs {raw_reports}",
            prog.reports
        );
        // The burst still surfaced, immediately, via the anomaly filter.
        assert!(prog.anomaly_reports >= 1);
        // And the monitor channel saw it.
        assert!(net.cp_log.iter().any(|(_, n)| n.code == NOTIFY_ANOMALY));
    }

    #[test]
    fn summaries_capture_congestion_signals() {
        let cfg = EventSwitchConfig {
            n_ports: 4,
            queue: qc(),
            timers: vec![TimerSpec {
                id: TIMER_WINDOW,
                period: WINDOW,
                start: WINDOW,
            }],
            ..Default::default()
        };
        let sw = EventSwitch::new(IntReduced::new(3, 4, 64, THRESH), cfg);
        let (mut net, senders, _, _) = dumbbell(Box::new(sw), 3, 200_000_000, 112);
        let mut sim: Sim<Network> = Sim::new();
        drive(&mut net, &mut sim, &senders);
        let prog = &net.switch_as::<EventSwitch<IntReduced>>(0).program;
        assert!(prog.summaries.len() >= 19, "one per window");
        // The burst window has a visibly larger peak than quiet windows.
        let peak_max = prog.summaries.iter().map(|s| s.peak_q_bytes).max().unwrap();
        let burst_windows = prog
            .summaries
            .iter()
            .filter(|s| s.peak_q_bytes > THRESH)
            .count();
        assert!(peak_max > THRESH, "peak {peak_max}");
        assert!((1..=4).contains(&burst_windows), "{burst_windows}");
        // Flow accounting returns to zero after traffic ends.
        assert_eq!(prog.summaries.last().unwrap().active_flows, 0);
    }

    #[test]
    fn anomaly_watchlist_reports_once_per_window() {
        let cfg = EventSwitchConfig {
            n_ports: 2,
            queue: qc(),
            timers: vec![TimerSpec {
                id: TIMER_WINDOW,
                period: WINDOW,
                start: WINDOW,
            }],
            ..Default::default()
        };
        let mut sw = EventSwitch::new(IntReduced::new(1, 2, 16, 1_000), cfg);
        let frame = PacketBuilder::udp(addr(1), addr(9), 1, 2, &[])
            .pad_to(1500)
            .build();
        // Many enqueues above threshold within one window: one report.
        for i in 0..20u64 {
            sw.receive(
                SimTime::from_micros(i),
                0,
                edp_packet::Packet::anonymous(frame.clone()),
            );
        }
        assert_eq!(sw.program.anomaly_reports, 1);
        // Next window: latch clears, a new anomaly reports again.
        sw.fire_due_timers(SimTime::from_millis(2));
        for i in 0..5u64 {
            sw.receive(
                SimTime::from_millis(3) + SimDuration::from_micros(i),
                0,
                edp_packet::Packet::anonymous(frame.clone()),
            );
        }
        assert_eq!(sw.program.anomaly_reports, 2);
    }
}
