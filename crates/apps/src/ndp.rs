//! NDP-style packet trimming from buffer-overflow events (§3
//! "Congestion Aware Forwarding", citing Handley et al. \[8\]).
//!
//! NDP never silently drops a data packet: when the buffer is full the
//! switch *trims* the packet to its header and forwards the header at
//! high priority, so the receiver learns exactly what was lost and can
//! pull a retransmission immediately. The enabling primitive is reacting
//! to the **buffer overflow event** — unavailable in baseline PISA, one
//! line in the event-driven model:
//!
//! ```ignore
//! fn on_overflow(&mut self, ev, now, actions) {
//!     actions.trim_and_requeue(0); // rank 0 = highest priority
//! }
//! ```
//!
//! The comparator is plain drop-tail, where the same overflow is a
//! silent loss the receiver can only infer from a timeout.

use edp_core::event::OverflowEvent;
use edp_core::{EventActions, EventProgram};
use edp_evsim::SimTime;
use edp_packet::{Packet, ParsedPacket};
use edp_pisa::{Destination, PortId, StdMeta};

/// Scheduling rank for trimmed headers (highest priority).
pub const TRIM_RANK: u64 = 0;
/// Scheduling rank for full data packets.
pub const DATA_RANK: u64 = 1;

/// The trimming switch program.
#[derive(Debug)]
pub struct NdpTrim {
    /// Output port for data traffic.
    pub out_port: PortId,
    /// Overflow events seen.
    pub overflows: u64,
}

impl NdpTrim {
    /// Creates the program.
    pub fn new(out_port: PortId) -> Self {
        NdpTrim {
            out_port,
            overflows: 0,
        }
    }
}

impl EventProgram for NdpTrim {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        _parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        meta.rank = DATA_RANK;
        meta.dest = Destination::Port(self.out_port);
    }

    fn on_overflow(&mut self, _ev: &OverflowEvent, _now: SimTime, a: &mut EventActions) {
        self.overflows += 1;
        a.trim_and_requeue(TRIM_RANK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{addr, dumbbell, run_until, sink_addr};
    use edp_core::{EventSwitch, EventSwitchConfig};
    use edp_evsim::{Sim, SimDuration, SimTime};
    use edp_netsim::traffic::start_burst;
    use edp_netsim::Network;
    use edp_packet::{PacketBuilder, TRIMMED_DSCP};
    use edp_pisa::{QueueConfig, QueueDisc};

    const CAPACITY: u64 = 20_000; // 13 full packets

    fn build(trim: bool) -> (Network, Vec<usize>, usize) {
        let cfg = EventSwitchConfig {
            n_ports: 2,
            queue: QueueConfig {
                capacity_bytes: CAPACITY,
                disc: QueueDisc::StrictPriority { classes: 2 },
                rank0_headroom: 8_000, // the reserved header queue
            },
            ..Default::default()
        };
        // The no-trim variant simply never calls trim_and_requeue: model
        // it by a program whose on_overflow does nothing.
        #[derive(Debug)]
        struct NoTrim(NdpTrim);
        impl EventProgram for NoTrim {
            fn on_ingress(
                &mut self,
                p: &mut Packet,
                h: &ParsedPacket,
                m: &mut StdMeta,
                t: SimTime,
                a: &mut EventActions,
            ) {
                self.0.on_ingress(p, h, m, t, a)
            }
            fn on_overflow(&mut self, _e: &OverflowEvent, _t: SimTime, _a: &mut EventActions) {
                self.0.overflows += 1;
            }
        }
        let (net, senders, sink, _) = if trim {
            let sw = EventSwitch::new(NdpTrim::new(1), cfg);
            dumbbell(Box::new(sw), 1, 100_000_000, 95)
        } else {
            let sw = EventSwitch::new(NoTrim(NdpTrim::new(1)), cfg);
            dumbbell(Box::new(sw), 1, 100_000_000, 95)
        };
        (net, senders, sink)
    }

    fn blast(net: &mut Network, sim: &mut Sim<Network>, sender: usize, n: u64) {
        let src = addr(1);
        start_burst(sim, sender, SimTime::ZERO, n, SimDuration::ZERO, move |i| {
            PacketBuilder::udp(src, sink_addr(), 40, 50, &[])
                .ident(i as u16)
                .pad_to(1500)
                .build()
        });
        run_until(net, sim, SimTime::from_millis(50));
    }

    #[test]
    fn every_overflow_victim_arrives_as_a_trimmed_header() {
        let (mut net, senders, sink) = build(true);
        let mut sim: Sim<Network> = Sim::new();
        blast(&mut net, &mut sim, senders[0], 100);
        // Every one of the 100 packets arrives: full or trimmed.
        assert_eq!(net.hosts[sink].stats.rx_pkts, 100);
        // Trimmed ones are recognizable by size and DSCP.
        let trimmed_rx = net.hosts[sink]
            .stats
            .flows
            .values()
            .map(|f| f.pkts)
            .sum::<u64>();
        assert_eq!(trimmed_rx, 100);
        let sw = net.switch_as::<EventSwitch<NdpTrim>>(0);
        let c = sw.counters();
        assert!(c.trimmed > 0, "some packets must have been trimmed");
        assert_eq!(c.dropped_overflow, 0, "nothing silently lost");
        assert_eq!(sw.program.overflows, c.trimmed);
    }

    #[test]
    fn droptail_loses_what_trim_preserves() {
        let (mut net, senders, sink) = build(false);
        let mut sim: Sim<Network> = Sim::new();
        blast(&mut net, &mut sim, senders[0], 100);
        let delivered = net.hosts[sink].stats.rx_pkts;
        assert!(delivered < 100, "droptail must lose packets: {delivered}");
        let (mut net2, senders2, sink2) = build(true);
        let mut sim2: Sim<Network> = Sim::new();
        blast(&mut net2, &mut sim2, senders2[0], 100);
        assert_eq!(net2.hosts[sink2].stats.rx_pkts, 100);
        // Information delta: the trim run tells the receiver about every
        // loss; droptail tells it nothing about (100 - delivered) packets.
        assert!(net2.hosts[sink2].stats.rx_pkts > delivered);
    }

    #[test]
    fn trimmed_frames_carry_the_marker_dscp() {
        // Unit-level: drive the switch directly and inspect the trimmed
        // frame on the wire.
        let cfg = EventSwitchConfig {
            n_ports: 2,
            queue: QueueConfig {
                capacity_bytes: 1_600,
                disc: QueueDisc::StrictPriority { classes: 2 },
                rank0_headroom: 1_000,
            },
            ..Default::default()
        };
        let mut sw = EventSwitch::new(NdpTrim::new(1), cfg);
        let frame = PacketBuilder::udp(addr(1), addr(9), 1, 2, &[])
            .pad_to(1500)
            .build();
        sw.receive(SimTime::ZERO, 0, Packet::anonymous(frame.clone()));
        sw.receive(SimTime::ZERO, 0, Packet::anonymous(frame)); // overflows → trimmed
                                                                // Trimmed header has rank 0: it comes out FIRST despite arriving
                                                                // second (strict priority).
        let out1 = sw.transmit(SimTime::ZERO, 1).expect("first out");
        assert_eq!(out1.len(), 42, "headers only (eth+ip+udp)");
        let parsed = edp_packet::parse_packet(out1.bytes()).expect("parses");
        assert_eq!(parsed.ipv4.expect("ip").dscp, TRIMMED_DSCP);
        let out2 = sw.transmit(SimTime::ZERO, 1).expect("second out");
        assert_eq!(out2.len(), 1500, "the full packet follows");
    }
}
