//! Fast re-route (§3 "Network Management", §5 student project).
//!
//! A switch has a primary and a backup path to the same destination.
//! When the primary link fails:
//!
//! * [`FrrEvent`] (event-driven) — the `on_link_status` handler flips the
//!   active route **in the data plane, immediately**: packets lost are
//!   only those already in flight / queued on the dead port.
//! * [`FrrBaseline`] (baseline) — the switch silently keeps forwarding
//!   into the dead link until the control plane learns of the failure
//!   and installs a new route via the management channel. Every packet
//!   sent in that window is lost.
//!
//! The metric, as in the paper's Blink/FRR motivation: packets lost
//! during failover as a function of control-plane latency.

use edp_core::event::LinkStatusEvent;
use edp_core::{EventActions, EventProgram};
use edp_evsim::{SimDuration, SimTime};
use edp_packet::{Packet, ParsedPacket};
use edp_pisa::{Destination, PisaProgram, PortId, StdMeta};
use serde::{Deserialize, Serialize};

/// Control-plane opcode for "set active output port" (`args[0]` = port).
pub const CP_OP_SET_ROUTE: u32 = 2;

/// Failover bookkeeping shared by both variants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrrStats {
    /// When the program switched to the backup route (if it did).
    pub failover_at: Option<SimTime>,
    /// Packets forwarded while the active port's link was actually dead
    /// (blackholed) — counted by the experiment, not the program.
    pub reroutes: u64,
}

impl FrrStats {
    /// Reconvergence time: how long after a failure at `fail_at` the
    /// program switched routes. `None` if it never failed over; zero for
    /// the event-driven variant (data-plane failover is immediate).
    pub fn reconvergence(&self, fail_at: SimTime) -> Option<SimDuration> {
        self.failover_at.map(|t| t.saturating_since(fail_at))
    }
}

/// Event-driven fast re-route.
#[derive(Debug)]
pub struct FrrEvent {
    /// Active output port.
    pub active: PortId,
    /// Primary port.
    pub primary: PortId,
    /// Backup port.
    pub backup: PortId,
    /// Bookkeeping.
    pub stats: FrrStats,
}

impl FrrEvent {
    /// Creates the program forwarding on `primary` with `backup` standby.
    pub fn new(primary: PortId, backup: PortId) -> Self {
        FrrEvent {
            active: primary,
            primary,
            backup,
            stats: FrrStats::default(),
        }
    }
}

impl EventProgram for FrrEvent {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        _parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        meta.dest = Destination::Port(self.active);
    }

    fn on_link_status(&mut self, ev: &LinkStatusEvent, now: SimTime, a: &mut EventActions) {
        if ev.port == self.active && !ev.up {
            // Immediate data-plane failover; tell the monitor it happened.
            self.active = if self.active == self.primary {
                self.backup
            } else {
                self.primary
            };
            self.stats.failover_at = Some(now);
            self.stats.reroutes += 1;
            a.notify_control_plane(CP_OP_SET_ROUTE, [self.active as u64, 0, 0, 0]);
        } else if ev.port == self.primary && ev.up && self.active != self.primary {
            // Revert to primary on recovery.
            self.active = self.primary;
            self.stats.reroutes += 1;
        }
    }
}

/// Baseline re-route: the route changes only when the controller says so.
#[derive(Debug)]
pub struct FrrBaseline {
    /// Active output port (a one-entry "table").
    pub active: PortId,
    /// Bookkeeping.
    pub stats: FrrStats,
}

impl FrrBaseline {
    /// Creates the program forwarding on `primary`.
    pub fn new(primary: PortId) -> Self {
        FrrBaseline {
            active: primary,
            stats: FrrStats::default(),
        }
    }
}

impl PisaProgram for FrrBaseline {
    fn ingress(
        &mut self,
        _pkt: &mut Packet,
        _parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
    ) {
        meta.dest = Destination::Port(self.active);
    }

    fn control_update(&mut self, opcode: u32, args: [u64; 4], now: SimTime) {
        if opcode == CP_OP_SET_ROUTE {
            self.active = args[0] as PortId;
            self.stats.failover_at = Some(now);
            self.stats.reroutes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{addr, run_until};
    use edp_core::{EventSwitch, EventSwitchConfig};
    use edp_evsim::{Sim, SimDuration};
    use edp_netsim::traffic::start_cbr;
    use edp_netsim::{FaultPlan, Host, HostApp, LinkSpec, Network, NodeRef, SwitchHarness};
    use edp_packet::PacketBuilder;
    use edp_pisa::{BaselineSwitch, ForwardTo, QueueConfig};

    /// h0 — swA —(primary link L1)— swR — sink
    ///          \(backup  link L2)/
    /// Returns (net, sender, sink, primary link id).
    fn diamond(sw_a: Box<dyn SwitchHarness>) -> (Network, usize, usize, usize) {
        let mut net = Network::new(21);
        let a = net.add_switch(sw_a);
        // swR: 3 ports; forwards everything to port 2 (the sink).
        let r = net.add_switch(Box::new(BaselineSwitch::new(
            ForwardTo(2),
            3,
            QueueConfig::default(),
        )));
        let h0 = net.add_host(Host::new(addr(1), HostApp::Sink));
        let sink = net.add_host(Host::new(addr(9), HostApp::Sink));
        let spec = LinkSpec::ten_gig(SimDuration::from_micros(1));
        net.connect((NodeRef::Host(h0), 0), (NodeRef::Switch(a), 0), spec);
        let primary = net.connect((NodeRef::Switch(a), 1), (NodeRef::Switch(r), 0), spec);
        let _backup = net.connect((NodeRef::Switch(a), 2), (NodeRef::Switch(r), 1), spec);
        net.connect((NodeRef::Switch(r), 2), (NodeRef::Host(sink), 0), spec);
        (net, h0, sink, primary)
    }

    const FAIL_AT: SimTime = SimTime::from_millis(5);
    const PKTS: u64 = 1000;
    const INTERVAL: SimDuration = SimDuration::from_micros(10);

    fn drive(net: &mut Network, sim: &mut Sim<Network>, sender: usize, primary: usize) {
        net.schedule_link_failure(sim, primary, FAIL_AT, None);
        let src = addr(1);
        start_cbr(sim, sender, SimTime::ZERO, INTERVAL, PKTS, move |i| {
            PacketBuilder::udp(src, addr(9), 1, 2, &[])
                .ident(i as u16)
                .pad_to(500)
                .build()
        });
        run_until(net, sim, SimTime::from_millis(30));
    }

    #[test]
    fn event_frr_loses_almost_nothing() {
        let cfg = EventSwitchConfig {
            n_ports: 3,
            ..Default::default()
        };
        let sw = EventSwitch::new(FrrEvent::new(1, 2), cfg);
        let (mut net, sender, sink, primary) = diamond(Box::new(sw));
        let mut sim: Sim<Network> = Sim::new();
        drive(&mut net, &mut sim, sender, primary);
        let lost = PKTS - net.hosts[sink].stats.rx_pkts;
        assert!(lost <= 2, "event-driven FRR lost {lost} packets");
        let prog = &net.switch_as::<EventSwitch<FrrEvent>>(0).program;
        assert_eq!(prog.stats.failover_at, Some(FAIL_AT));
        assert_eq!(prog.active, 2);
        // The data plane also notified the controller asynchronously.
        assert!(net.cp_log.iter().any(|(_, n)| n.code == CP_OP_SET_ROUTE));
    }

    #[test]
    fn baseline_frr_blackholes_for_the_control_loop() {
        let sw = BaselineSwitch::new(FrrBaseline::new(1), 3, QueueConfig::default());
        let (mut net, sender, sink, primary) = diamond(Box::new(sw));
        let mut sim: Sim<Network> = Sim::new();
        // Control loop: failure detected + route computed + installed
        // 2 ms after the failure.
        let cp_delay = SimDuration::from_millis(2);
        sim.schedule_at(FAIL_AT, move |w: &mut Network, s: &mut Sim<Network>| {
            w.control_plane_send(s, cp_delay, 0, CP_OP_SET_ROUTE, [2, 0, 0, 0]);
        });
        drive(&mut net, &mut sim, sender, primary);
        let lost = PKTS - net.hosts[sink].stats.rx_pkts;
        // 2 ms blackhole at one packet per 10 us ≈ 200 packets.
        assert!(
            (150..=260).contains(&lost),
            "baseline lost {lost}, expected ≈200"
        );
        let prog = &net.switch_as::<BaselineSwitch<FrrBaseline>>(0).program;
        assert_eq!(prog.stats.failover_at, Some(FAIL_AT + cp_delay));
    }

    #[test]
    fn event_frr_rides_out_a_flapping_primary() {
        let cfg = EventSwitchConfig {
            n_ports: 3,
            ..Default::default()
        };
        let sw = EventSwitch::new(FrrEvent::new(1, 2), cfg);
        let (mut net, sender, sink, primary) = diamond(Box::new(sw));
        let mut sim: Sim<Network> = Sim::new();
        // Three down/up cycles: down at 5/8/11 ms, 1 ms down each.
        let period = SimDuration::from_millis(3);
        let plan =
            FaultPlan::new(5).link_flap(primary, FAIL_AT, SimDuration::from_millis(1), period, 3);
        plan.apply(&mut net, &mut sim);
        let src = addr(1);
        start_cbr(&mut sim, sender, SimTime::ZERO, INTERVAL, PKTS, move |i| {
            PacketBuilder::udp(src, addr(9), 1, 2, &[])
                .ident(i as u16)
                .pad_to(500)
                .build()
        });
        run_until(&mut net, &mut sim, SimTime::from_millis(30));
        let sw = net.switch_as::<EventSwitch<FrrEvent>>(0);
        assert_eq!(sw.counters().link_transitions, plan.transitions() as u64);
        assert_eq!(sw.program.stats.reroutes, 6, "failover + revert per cycle");
        assert_eq!(sw.program.active, 1, "back on primary after the last flap");
        // The last failover happened at the third down, instantly.
        let last_down = FAIL_AT + period * 2;
        assert_eq!(
            sw.program.stats.reconvergence(last_down),
            Some(SimDuration::ZERO)
        );
        let lost = PKTS - net.hosts[sink].stats.rx_pkts;
        assert!(lost <= 6, "lost {lost} across three flaps");
    }

    #[test]
    fn event_frr_reverts_on_recovery() {
        let cfg = EventSwitchConfig {
            n_ports: 3,
            ..Default::default()
        };
        let sw = EventSwitch::new(FrrEvent::new(1, 2), cfg);
        let (mut net, sender, sink, primary) = diamond(Box::new(sw));
        let mut sim: Sim<Network> = Sim::new();
        net.schedule_link_failure(&mut sim, primary, FAIL_AT, Some(SimTime::from_millis(8)));
        let src = addr(1);
        start_cbr(&mut sim, sender, SimTime::ZERO, INTERVAL, PKTS, move |i| {
            PacketBuilder::udp(src, addr(9), 1, 2, &[])
                .ident(i as u16)
                .pad_to(500)
                .build()
        });
        run_until(&mut net, &mut sim, SimTime::from_millis(30));
        let prog = &net.switch_as::<EventSwitch<FrrEvent>>(0).program;
        assert_eq!(prog.active, 1, "back on primary after recovery");
        assert_eq!(prog.stats.reroutes, 2);
        let lost = PKTS - net.hosts[sink].stats.rx_pkts;
        assert!(lost <= 4, "lost {lost}");
    }
}
