//! Shared experiment scaffolding: canonical topologies and run helpers.

use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::{Host, HostApp, HostId, LinkSpec, Network, NodeRef, SwitchHarness};
use std::net::Ipv4Addr;

/// Host address `10.0.0.n`.
pub fn addr(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, n)
}

/// A dumbbell: `n_senders` hosts on ports `0..n`, one sink on the last
/// port. All links 10 Gb/s with 1 µs latency except the bottleneck
/// (switch → sink), which is `bottleneck_bps`.
///
/// Returns `(network, sender ids, sink id, sink port)`.
pub fn dumbbell(
    switch: Box<dyn SwitchHarness>,
    n_senders: usize,
    bottleneck_bps: u64,
    seed: u64,
) -> (Network, Vec<HostId>, HostId, u8) {
    let n_ports = switch.n_ports();
    assert!(
        n_ports > n_senders,
        "switch needs {} ports, has {n_ports}",
        n_senders + 1
    );
    let mut net = Network::new(seed);
    let sw = net.add_switch(switch);
    let mut senders = Vec::new();
    let lat = SimDuration::from_micros(1);
    for i in 0..n_senders {
        let h = net.add_host(Host::new(addr(i as u8 + 1), HostApp::Sink));
        net.connect(
            (NodeRef::Host(h), 0),
            (NodeRef::Switch(sw), i as u8),
            LinkSpec::ten_gig(lat),
        );
        senders.push(h);
    }
    let sink_port = n_senders as u8;
    let sink = net.add_host(Host::new(addr(200), HostApp::Sink));
    net.connect(
        (NodeRef::Host(sink), 0),
        (NodeRef::Switch(sw), sink_port),
        LinkSpec {
            bandwidth_bps: bottleneck_bps,
            latency: lat,
            drop_prob: 0.0,
        },
    );
    (net, senders, sink, sink_port)
}

/// The sink host address used by [`dumbbell`].
pub fn sink_addr() -> Ipv4Addr {
    addr(200)
}

/// Runs the network until `deadline` (arming all switch timers first).
pub fn run_until(net: &mut Network, sim: &mut Sim<Network>, deadline: SimTime) {
    net.arm_all_timers(sim);
    sim.run_until(net, deadline);
}

#[cfg(test)]
mod tests {
    use super::*;
    use edp_netsim::traffic::start_cbr;
    use edp_packet::PacketBuilder;
    use edp_pisa::{BaselineSwitch, ForwardTo, QueueConfig};

    #[test]
    fn dumbbell_carries_traffic() {
        let sw = Box::new(BaselineSwitch::new(ForwardTo(2), 3, QueueConfig::default()));
        let (mut net, senders, sink, _) = dumbbell(sw, 2, 1_000_000_000, 1);
        let mut sim: Sim<Network> = Sim::new();
        let src = addr(1);
        start_cbr(
            &mut sim,
            senders[0],
            SimTime::ZERO,
            SimDuration::from_micros(10),
            100,
            move |i| {
                PacketBuilder::udp(src, sink_addr(), 1, 2, &[])
                    .ident(i as u16)
                    .build()
            },
        );
        run_until(&mut net, &mut sim, SimTime::from_millis(10));
        assert_eq!(net.hosts[sink].stats.rx_pkts, 100);
    }
}
