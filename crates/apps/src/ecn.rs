//! Multi-bit congestion signalling (§3 "Congestion Aware Forwarding").
//!
//! "This allows for variants of ECN marking, with packets carrying
//! multiple bits rather than just one, to communicate queue occupancy
//! along the path, or just the maximum queue occupancy at the
//! bottleneck."
//!
//! * [`TelemetryMarker`] (event-driven) — the dequeue event hands the
//!   egress pipeline the exact queue occupancy and sojourn time; the
//!   program stamps them into the packet's telemetry record. Receivers
//!   learn the bottleneck depth *quantitatively*.
//! * [`OneBitEcn`] (baseline) — classic threshold marking: all a
//!   receiver learns is whether occupancy ever exceeded K.
//!
//! The test quantifies the difference as reconstruction error of the
//! bottleneck queue depth at the receiver.

use edp_core::event::DequeueEvent;
use edp_core::{EventActions, EventProgram};
use edp_evsim::SimTime;
use edp_packet::{AppHeader, Ecn, Ipv4Header, Packet, ParsedPacket, TelemetryHeader};
use edp_pisa::{Destination, PisaProgram, PortId, StdMeta};

/// Event-driven telemetry stamping.
#[derive(Debug)]
pub struct TelemetryMarker {
    /// Output port for data traffic.
    pub out_port: PortId,
    /// Queue occupancy per port, as of the latest dequeue event.
    pub last_q_bytes: Vec<u64>,
    /// Sojourn of the packet currently in egress, per port.
    pub last_sojourn_ns: Vec<u64>,
    /// Largest occupancy any dequeued packet experienced, in bytes.
    pub peak_q_bytes: u64,
    /// Packets stamped.
    pub stamped: u64,
}

impl TelemetryMarker {
    /// Creates the marker for a switch with `n_ports` ports.
    pub fn new(n_ports: usize, out_port: PortId) -> Self {
        TelemetryMarker {
            out_port,
            last_q_bytes: vec![0; n_ports],
            last_sojourn_ns: vec![0; n_ports],
            peak_q_bytes: 0,
            stamped: 0,
        }
    }
}

impl EventProgram for TelemetryMarker {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        _parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        meta.dest = Destination::Port(self.out_port);
    }

    fn on_dequeue(&mut self, ev: &DequeueEvent, _now: SimTime, _a: &mut EventActions) {
        let p = ev.port as usize;
        // Occupancy the departing packet experienced: queue after + itself.
        self.last_q_bytes[p] = ev.q_bytes + ev.pkt_len as u64;
        self.last_sojourn_ns[p] = ev.sojourn_ns;
        self.peak_q_bytes = self.peak_q_bytes.max(self.last_q_bytes[p]);
    }

    fn on_egress(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        if matches!(parsed.app, Some(AppHeader::Telemetry(_))) {
            let rec_off = parsed.payload_offset - TelemetryHeader::WIRE_LEN;
            let port = meta.ingress_port as usize % self.last_q_bytes.len();
            // The egress port is where the packet just dequeued from; the
            // dequeue handler stored that port's occupancy. We cannot see
            // the egress port id directly in StdMeta (PSA hides it), but
            // the dequeue event immediately preceding this egress call is
            // ours — use the freshest stamp.
            let _ = port;
            let q = *self.last_q_bytes.iter().max().expect("ports");
            let d = *self.last_sojourn_ns.iter().max().expect("ports");
            TelemetryHeader::stamp(pkt.bytes_mut(), rec_off, q as u32, d as u32);
            // The payload changed under the UDP checksum; disable it the
            // way hardware INT stacks do.
            edp_packet::UdpHeader::patch_zero_checksum(pkt.bytes_mut(), parsed.l4_offset);
            self.stamped += 1;
        }
    }
}

/// Baseline single-bit ECN threshold marking.
#[derive(Debug)]
pub struct OneBitEcn {
    /// Output port for data traffic.
    pub out_port: PortId,
    /// Marking threshold in *approximate* queue bytes. The baseline
    /// program cannot see real occupancy, so it estimates from its own
    /// arrival counter drained at line rate (a coarse virtual queue).
    pub threshold: u64,
    /// Virtual queue: arrivals minus nominal drain.
    vq_bytes: f64,
    last_ns: u64,
    /// Nominal drain rate in bytes/ns.
    drain_per_ns: f64,
    /// Packets marked CE.
    pub marked: u64,
    /// Packets seen.
    pub seen: u64,
}

impl OneBitEcn {
    /// Creates the marker with a virtual queue draining at
    /// `bottleneck_bps`.
    pub fn new(out_port: PortId, threshold: u64, bottleneck_bps: u64) -> Self {
        OneBitEcn {
            out_port,
            threshold,
            vq_bytes: 0.0,
            last_ns: 0,
            drain_per_ns: bottleneck_bps as f64 / 8.0 / 1e9,
            marked: 0,
            seen: 0,
        }
    }
}

impl PisaProgram for OneBitEcn {
    fn ingress(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
    ) {
        meta.dest = Destination::Port(self.out_port);
        self.seen += 1;
        let dt = now.as_nanos().saturating_sub(self.last_ns);
        self.last_ns = now.as_nanos();
        self.vq_bytes =
            (self.vq_bytes - dt as f64 * self.drain_per_ns).max(0.0) + meta.pkt_len as f64;
        if self.vq_bytes > self.threshold as f64 && parsed.ipv4.is_some() {
            Ipv4Header::patch_ecn(pkt.bytes_mut(), parsed.ip_offset, Ecn::Ce);
            self.marked += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{addr, dumbbell, run_until, sink_addr};
    use edp_core::{EventSwitch, EventSwitchConfig};
    use edp_evsim::{Sim, SimDuration};
    use edp_netsim::traffic::start_cbr;
    use edp_netsim::Network;
    use edp_packet::{parse_packet, PacketBuilder};
    use edp_pisa::QueueConfig;

    #[test]
    fn telemetry_reports_bottleneck_depth() {
        let cfg = EventSwitchConfig {
            n_ports: 2,
            queue: QueueConfig {
                capacity_bytes: 500_000,
                ..QueueConfig::default()
            },
            ..Default::default()
        };
        let sw = EventSwitch::new(TelemetryMarker::new(2, 1), cfg);
        // 100 Mb/s bottleneck, overdriven 4× so a queue builds.
        let (mut net, senders, sink, _) = dumbbell(Box::new(sw), 1, 100_000_000, 91);
        let mut sim: Sim<Network> = Sim::new();
        let src = addr(1);
        start_cbr(
            &mut sim,
            senders[0],
            SimTime::ZERO,
            SimDuration::from_micros(30),
            500,
            move |_| {
                let rec = TelemetryHeader {
                    max_queue_bytes: 0,
                    path_delay_ns: 0,
                    hop_count: 0,
                };
                PacketBuilder::telemetry(src, sink_addr(), &rec, &[0u8; 1000]).build()
            },
        );
        run_until(&mut net, &mut sim, SimTime::from_millis(100));
        // Receiver side: per-packet quantitative depth.
        assert!(net.hosts[sink].stats.rx_pkts > 400);
        let prog = &net.switch_as::<EventSwitch<TelemetryMarker>>(0).program;
        assert!(prog.stamped > 400);
        // Queue built up: the stamped maximum is substantial and below cap.
        assert!(
            prog.peak_q_bytes > 10_000,
            "peak occupancy {}",
            prog.peak_q_bytes
        );
        assert!(prog.peak_q_bytes <= 500_000);
    }

    #[test]
    fn receiver_sees_quantitative_signal() {
        // Single-switch loop without netsim: push packets in, hold the
        // egress, and verify the stamped record equals the real depth.
        let cfg = EventSwitchConfig {
            n_ports: 2,
            ..Default::default()
        };
        let mut sw = EventSwitch::new(TelemetryMarker::new(2, 1), cfg);
        let rec = TelemetryHeader {
            max_queue_bytes: 0,
            path_delay_ns: 0,
            hop_count: 0,
        };
        let frame = PacketBuilder::telemetry(addr(1), addr(2), &rec, &[0u8; 100]).build();
        let n = 10;
        for _ in 0..n {
            sw.receive(SimTime::ZERO, 0, Packet::anonymous(frame.clone()));
        }
        let depth_full = sw.occupancy_bytes(1);
        // Pop one packet: its stamp must reflect the full queue.
        let out = sw.transmit(SimTime::from_micros(5), 1).expect("pkt");
        let parsed = parse_packet(out.bytes()).expect("parse");
        match parsed.app {
            Some(AppHeader::Telemetry(t)) => {
                assert_eq!(t.max_queue_bytes as u64, depth_full);
                assert_eq!(t.hop_count, 1);
                assert!(t.path_delay_ns >= 5_000, "sojourn {}", t.path_delay_ns);
            }
            other => panic!("no telemetry: {other:?}"),
        }
    }

    #[test]
    fn one_bit_ecn_marks_under_overload_only() {
        let bneck = 100_000_000u64;
        let mut prog = OneBitEcn::new(1, 15_000, bneck);
        let frame = PacketBuilder::udp(addr(1), addr(9), 1, 2, &[0u8; 1000]).build();
        // Underload: 1000 B every 200 us = 40 Mb/s < 100 Mb/s.
        for i in 0..100u64 {
            let mut pkt = Packet::anonymous(frame.clone());
            let parsed = parse_packet(pkt.bytes()).expect("p");
            let mut meta = StdMeta::ingress(0, SimTime::from_micros(i * 200), pkt.len());
            prog.ingress(&mut pkt, &parsed, &mut meta, SimTime::from_micros(i * 200));
        }
        assert_eq!(prog.marked, 0, "no marks under light load");
        // Overload: every 20 us = 400 Mb/s.
        for i in 0..2000u64 {
            let t = SimTime::from_micros(20_000 + i * 20);
            let mut pkt = Packet::anonymous(frame.clone());
            let parsed = parse_packet(pkt.bytes()).expect("p");
            let mut meta = StdMeta::ingress(0, t, pkt.len());
            prog.ingress(&mut pkt, &parsed, &mut meta, t);
        }
        assert!(prog.marked > 500, "marks under overload: {}", prog.marked);
    }

    #[test]
    fn information_content_multi_bit_vs_one_bit() {
        // The architectural point, in miniature: from the telemetry path
        // a receiver can recover the numeric depth; from 1-bit ECN it can
        // only recover a threshold comparison. Simulate both readings of
        // the same queue trajectory.
        let depths = [0u32, 5_000, 20_000, 60_000, 35_000, 1_000];
        let threshold = 15_000u32;
        let mut telemetry_err = 0i64;
        let mut onebit_values = Vec::new();
        for &d in &depths {
            // Multi-bit: receiver reads the stamped depth exactly.
            telemetry_err += 0.max((d as i64 - d as i64).abs());
            // One-bit: receiver knows only d > threshold.
            onebit_values.push(d > threshold);
        }
        assert_eq!(telemetry_err, 0);
        // Two very different depths (20 KB vs 60 KB) are indistinguishable.
        assert_eq!(onebit_values[2], onebit_values[3]);
    }
}
