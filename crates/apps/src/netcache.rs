//! NetCache-style in-network key-value caching (§3 "In-Network
//! Computing", Table 2).
//!
//! NetCache (Jin et al., SOSP '17) serves hot keys from the switch to
//! shed load from storage servers. The paper's addition: "Timer events
//! can also be used to quickly clear all NetCache statistics, which ...
//! would allow the cache to more rapidly react to workload changes."
//!
//! [`NetCacheSwitch`] implements the full event-driven loop with **no
//! controller**: a count-min sketch spots hot keys at ingress, replies
//! from the server populate the cache for hot keys (cache-on-reply),
//! cached GETs are answered by a switch-generated reply packet, PUTs
//! invalidate, and a timer event clears the sketch and hit counters each
//! window so popularity is always *recent* popularity. The
//! `reset_stats` flag ablates exactly the timer-reset feature the paper
//! highlights.

use edp_core::event::TimerEvent;
use edp_core::{EventActions, EventProgram};
use edp_evsim::SimTime;
use edp_packet::{AppHeader, KvHeader, KvOp, Packet, PacketBuilder, ParsedPacket};
use edp_pisa::{Destination, PortId, StdMeta};
use edp_primitives::CountMinSketch;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Timer id for statistics clearing.
pub const TIMER_STATS: u16 = 0;

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    value: u64,
    hits_this_window: u64,
}

/// The event-driven caching switch.
#[derive(Debug)]
pub struct NetCacheSwitch {
    /// Port toward the client(s).
    pub client_port: PortId,
    /// Port toward the storage server.
    pub server_port: PortId,
    /// The cache (bounded).
    cache: HashMap<u64, CacheEntry>,
    /// Cache capacity in entries.
    pub capacity: usize,
    /// Hot-key detector, cleared by the timer.
    pub hot: CountMinSketch,
    /// A GET must be seen this often in the window to be cache-worthy.
    pub promote_threshold: u64,
    /// Whether the timer clears statistics (the paper's feature; false
    /// ablates it).
    pub reset_stats: bool,
    /// GETs answered from the cache.
    pub cache_hits: u64,
    /// GETs forwarded to the server.
    pub cache_misses: u64,
    /// Entries evicted for coldness.
    pub evictions: u64,
    pending_replies: Vec<(Ipv4Addr, Ipv4Addr)>,
}

impl NetCacheSwitch {
    /// Creates the caching switch.
    pub fn new(
        client_port: PortId,
        server_port: PortId,
        capacity: usize,
        promote_threshold: u64,
        reset_stats: bool,
    ) -> Self {
        NetCacheSwitch {
            client_port,
            server_port,
            cache: HashMap::new(),
            capacity,
            hot: CountMinSketch::new(512, 4),
            promote_threshold,
            reset_stats,
            cache_hits: 0,
            cache_misses: 0,
            evictions: 0,
            pending_replies: Vec::new(),
        }
    }

    /// Current number of cached keys.
    pub fn cached_keys(&self) -> usize {
        self.cache.len()
    }

    /// True when `key` is cached (tests/observability).
    pub fn contains(&self, key: u64) -> bool {
        self.cache.contains_key(&key)
    }

    /// Hit rate since start.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl EventProgram for NetCacheSwitch {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        a: &mut EventActions,
    ) {
        let Some(AppHeader::Kv(kv)) = parsed.app else {
            // Non-KV traffic: client side ↔ server side pass-through.
            meta.dest = Destination::Port(if meta.ingress_port == self.client_port {
                self.server_port
            } else {
                self.client_port
            });
            return;
        };
        let ip = parsed.ipv4.expect("kv rides IPv4");
        match kv.op {
            KvOp::Get => {
                self.hot.update(kv.key, 1);
                if let Some(e) = self.cache.get_mut(&kv.key) {
                    // Serve from the switch: generate the reply ourselves.
                    e.hits_this_window += 1;
                    self.cache_hits += 1;
                    let reply = KvHeader {
                        op: KvOp::Reply,
                        key: kv.key,
                        value: e.value,
                    };
                    self.pending_replies.push((ip.dst, ip.src));
                    a.generate_packet(PacketBuilder::kv(ip.dst, ip.src, &reply).build());
                    meta.dest = Destination::Drop; // absorbed by the cache
                } else {
                    self.cache_misses += 1;
                    meta.dest = Destination::Port(self.server_port);
                }
            }
            KvOp::Put => {
                // Write-through invalidation/update.
                if let Some(e) = self.cache.get_mut(&kv.key) {
                    e.value = kv.value;
                }
                meta.dest = Destination::Port(self.server_port);
            }
            KvOp::Reply => {
                // Cache-on-reply for hot keys.
                if !self.cache.contains_key(&kv.key)
                    && self.hot.query(kv.key) >= self.promote_threshold
                {
                    if self.cache.len() >= self.capacity {
                        // Evict the coldest entry of this window.
                        if let Some((&cold, _)) = self
                            .cache
                            .iter()
                            .min_by_key(|(k, e)| (e.hits_this_window, **k))
                        {
                            self.cache.remove(&cold);
                            self.evictions += 1;
                        }
                    }
                    self.cache.insert(
                        kv.key,
                        CacheEntry {
                            value: kv.value,
                            hits_this_window: 0,
                        },
                    );
                }
                meta.dest = Destination::Port(self.client_port);
            }
        }
    }

    fn on_generated(
        &mut self,
        _pkt: &mut Packet,
        _parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        // Cache-generated replies go back to the client side.
        self.pending_replies.pop();
        meta.dest = Destination::Port(self.client_port);
    }

    fn on_timer(&mut self, ev: &TimerEvent, _now: SimTime, _a: &mut EventActions) {
        if ev.timer_id == TIMER_STATS && self.reset_stats {
            // "Timer events can be used to quickly clear all NetCache
            // statistics": popularity becomes per-window.
            self.hot.reset();
            for e in self.cache.values_mut() {
                e.hits_this_window = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_until;
    use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
    use edp_evsim::{Sim, SimDuration, SimTime, Zipf};
    use edp_netsim::{Host, HostApp, LinkSpec, Network, NodeRef};
    use edp_pisa::QueueConfig;

    fn client_addr() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }
    fn server_addr() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 2)
    }

    fn build(reset_stats: bool) -> (Network, usize, usize) {
        let mut net = Network::new(303);
        let cfg = EventSwitchConfig {
            n_ports: 2,
            queue: QueueConfig::default(),
            timers: vec![TimerSpec {
                id: TIMER_STATS,
                period: SimDuration::from_millis(2),
                start: SimDuration::from_millis(2),
            }],
            ..Default::default()
        };
        let sw = net.add_switch(Box::new(EventSwitch::new(
            NetCacheSwitch::new(0, 1, 8, 3, reset_stats),
            cfg,
        )));
        let client = net.add_host(Host::new(client_addr(), HostApp::Sink));
        let server = net.add_host(Host::new(
            server_addr(),
            HostApp::KvServer {
                store: (0..1000u64).map(|k| (k, k * 11)).collect(),
                served: 0,
            },
        ));
        let spec = LinkSpec::ten_gig(SimDuration::from_micros(2));
        net.connect((NodeRef::Host(client), 0), (NodeRef::Switch(sw), 0), spec);
        net.connect((NodeRef::Switch(sw), 1), (NodeRef::Host(server), 0), spec);
        (net, client, server)
    }

    /// Sends `n` GETs from a Zipf(0.9) popularity over `keys` keys with
    /// `hot_offset` added to every sampled key (to shift the hot set).
    fn send_gets(
        sim: &mut Sim<Network>,
        client: usize,
        start: SimTime,
        n: u64,
        hot_offset: u64,
        seed: u64,
    ) {
        let zipf = Zipf::new(100, 0.9);
        let mut rng = edp_evsim::SimRng::seed_from_u64(seed);
        edp_netsim::traffic::start_cbr(
            sim,
            client,
            start,
            SimDuration::from_micros(20),
            n,
            move |_| {
                let key = zipf.sample(&mut rng) as u64 + hot_offset;
                let get = KvHeader {
                    op: KvOp::Get,
                    key,
                    value: 0,
                };
                PacketBuilder::kv(client_addr(), server_addr(), &get).build()
            },
        );
    }

    fn server_load(net: &Network, server: usize) -> u64 {
        match &net.hosts[server].app {
            HostApp::KvServer { served, .. } => *served,
            _ => unreachable!(),
        }
    }

    #[test]
    fn cache_sheds_server_load() {
        let (mut net, client, server) = build(true);
        let mut sim: Sim<Network> = Sim::new();
        send_gets(&mut sim, client, SimTime::ZERO, 2000, 0, 1);
        run_until(&mut net, &mut sim, SimTime::from_millis(60));
        let served = server_load(&net, server);
        let prog = &net.switch_as::<EventSwitch<NetCacheSwitch>>(0).program;
        assert!(prog.cache_hits > 500, "hits {}", prog.cache_hits);
        assert_eq!(prog.cache_hits + prog.cache_misses, 2000);
        assert_eq!(served, prog.cache_misses, "server only sees misses");
        assert!(
            prog.hit_rate() > 0.3,
            "zipf head should hit: {}",
            prog.hit_rate()
        );
        // Client got an answer for every request (cache or server).
        assert_eq!(net.hosts[client].stats.rx_pkts, 2000);
    }

    #[test]
    fn put_updates_cached_value() {
        let (mut net, client, _server) = build(true);
        let mut sim: Sim<Network> = Sim::new();
        // Hammer key 0 so it gets cached, then PUT a new value, then GET.
        edp_netsim::traffic::start_cbr(
            &mut sim,
            client,
            SimTime::ZERO,
            SimDuration::from_micros(50),
            20,
            move |_| {
                let get = KvHeader {
                    op: KvOp::Get,
                    key: 0,
                    value: 0,
                };
                PacketBuilder::kv(client_addr(), server_addr(), &get).build()
            },
        );
        sim.schedule_at(
            SimTime::from_millis(5),
            move |w: &mut Network, s: &mut Sim<Network>| {
                let put = KvHeader {
                    op: KvOp::Put,
                    key: 0,
                    value: 777,
                };
                w.host_send(
                    s,
                    0,
                    PacketBuilder::kv(client_addr(), server_addr(), &put).build(),
                );
            },
        );
        run_until(&mut net, &mut sim, SimTime::from_millis(10));
        let prog = &net.switch_as::<EventSwitch<NetCacheSwitch>>(0).program;
        assert!(prog.contains(0));
        // Direct unit probe: a fresh GET served from cache returns 777.
        // (Verified through the cache state, since the client's sink does
        // not decode values.)
        let sw = net.switch_as::<EventSwitch<NetCacheSwitch>>(0);
        let e = sw.program.cache.get(&0).expect("cached");
        assert_eq!(e.value, 777);
    }

    #[test]
    fn stats_reset_adapts_to_workload_shift() {
        // Phase 1 hot set = keys 0..; phase 2 hot set = keys 500.. .
        // With timer resets the sketch forgets phase 1 and promotes the
        // new hot keys quickly; without resets, stale counts plus a full
        // cache of old keys slow adaptation. Compare phase-2 hit counts.
        let run = |reset: bool| -> u64 {
            let (mut net, client, _server) = build(reset);
            let mut sim: Sim<Network> = Sim::new();
            send_gets(&mut sim, client, SimTime::ZERO, 1500, 0, 7);
            send_gets(&mut sim, client, SimTime::from_millis(40), 1500, 500, 8);
            run_until(&mut net, &mut sim, SimTime::from_millis(40));
            let hits_phase1 = net
                .switch_as::<EventSwitch<NetCacheSwitch>>(0)
                .program
                .cache_hits;
            run_until(&mut net, &mut sim, SimTime::from_millis(100));
            let prog = &net.switch_as::<EventSwitch<NetCacheSwitch>>(0).program;
            prog.cache_hits - hits_phase1
        };
        let hits_with_reset = run(true);
        let hits_without = run(false);
        assert!(
            hits_with_reset >= hits_without,
            "reset {hits_with_reset} vs no-reset {hits_without}"
        );
        assert!(hits_with_reset > 300, "phase-2 hits {hits_with_reset}");
    }

    #[test]
    fn cache_respects_capacity() {
        let (mut net, client, _server) = build(true);
        let mut sim: Sim<Network> = Sim::new();
        send_gets(&mut sim, client, SimTime::ZERO, 3000, 0, 9);
        run_until(&mut net, &mut sim, SimTime::from_millis(80));
        let prog = &net.switch_as::<EventSwitch<NetCacheSwitch>>(0).program;
        assert!(prog.cached_keys() <= 8);
    }
}
