//! # edp-resources — FPGA resource-cost model (Table 3)
//!
//! The paper demonstrates hardware feasibility by synthesizing the SUME
//! Event Switch for a Xilinx Virtex-7 and reporting that event support
//! costs at most 2% additional device resources (Table 3: +0.5% LUTs,
//! +0.4% flip-flops, +2.0% block RAM). We cannot run Vivado, so this
//! crate reproduces the *accounting*: a per-block price list (calibrated
//! against public P4→NetFPGA reference-switch utilization numbers and the
//! paper's deltas), two switch configurations that differ exactly by the
//! event-machinery blocks of Figure 4, and a report of the percentage
//! increase per resource class.
//!
//! What the model preserves from the paper: the *relative* sizes (BRAM is
//! the dominant cost because event metadata queues and aggregation
//! registers are memories; LUT/FF overhead is small because the event
//! merger and timers are thin shims around an existing pipeline), and the
//! headline "≤ 2% of a Virtex-7" shape. What it does not do: predict
//! synthesis results for arbitrary programs.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize};

/// A bundle of FPGA resources.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceVec {
    /// Lookup tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// Block RAMs (36 Kb blocks).
    pub brams: u64,
}

impl ResourceVec {
    /// Component-wise sum.
    pub fn plus(self, other: ResourceVec) -> ResourceVec {
        ResourceVec {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            brams: self.brams + other.brams,
        }
    }

    /// Scales by an integer count.
    pub fn times(self, n: u64) -> ResourceVec {
        ResourceVec {
            luts: self.luts * n,
            ffs: self.ffs * n,
            brams: self.brams * n,
        }
    }
}

/// A target FPGA device.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Device {
    /// Device name.
    pub name: &'static str,
    /// Total available resources.
    pub totals: ResourceVec,
}

/// The NetFPGA SUME's FPGA: Virtex-7 XC7V690T.
pub const VIRTEX7_690T: Device = Device {
    name: "Xilinx Virtex-7 XC7V690T",
    totals: ResourceVec {
        luts: 433_200,
        ffs: 866_400,
        brams: 1_470,
    },
};

/// A synthesizable block of the switch datapath.
///
/// Costs are the model's price list. Fixed-infrastructure prices follow
/// the published P4→NetFPGA reference-switch utilization (the reference
/// design uses roughly a third of the device); event-block prices are
/// calibrated so the *delta* between the two shipped configurations
/// reproduces Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Block {
    /// 10G Ethernet MAC + PHY interface (per port).
    TenGigPort,
    /// PCIe/DMA engine for the host path.
    DmaEngine,
    /// Input arbiter merging ports into the pipeline.
    InputArbiter,
    /// Programmable parser.
    Parser,
    /// One match-action stage (tables + ALUs).
    MatchActionStage,
    /// Deparser.
    Deparser,
    /// Output queueing (BRAM-backed packet buffer, per port).
    OutputQueue,
    /// The event merger: gathers events, injects carrier frames.
    EventMerger,
    /// Enqueue/dequeue/drop event taps on the output queues.
    QueueEventTaps,
    /// The timer block (period registers + comparators).
    TimerBlock,
    /// The configurable packet generator.
    PacketGenerator,
    /// Link status monitor (per-port status edge detectors).
    LinkStatusMonitor,
    /// Event metadata bus widening through the pipeline (per stage).
    EventMetadataBus,
    /// Event metadata queues + aggregation register arrays (BRAM).
    EventStateMemory,
}

impl Block {
    /// The price of one instance.
    pub fn cost(self) -> ResourceVec {
        match self {
            Block::TenGigPort => ResourceVec {
                luts: 9_000,
                ffs: 14_000,
                brams: 12,
            },
            Block::DmaEngine => ResourceVec {
                luts: 20_000,
                ffs: 30_000,
                brams: 32,
            },
            Block::InputArbiter => ResourceVec {
                luts: 4_000,
                ffs: 6_000,
                brams: 8,
            },
            Block::Parser => ResourceVec {
                luts: 12_000,
                ffs: 20_000,
                brams: 12,
            },
            Block::MatchActionStage => ResourceVec {
                luts: 14_000,
                ffs: 24_000,
                brams: 48,
            },
            Block::Deparser => ResourceVec {
                luts: 10_000,
                ffs: 16_000,
                brams: 10,
            },
            Block::OutputQueue => ResourceVec {
                luts: 2_500,
                ffs: 5_000,
                brams: 24,
            },
            Block::EventMerger => ResourceVec {
                luts: 550,
                ffs: 700,
                brams: 2,
            },
            Block::QueueEventTaps => ResourceVec {
                luts: 70,
                ffs: 135,
                brams: 0,
            },
            Block::TimerBlock => ResourceVec {
                luts: 150,
                ffs: 250,
                brams: 0,
            },
            Block::PacketGenerator => ResourceVec {
                luts: 260,
                ffs: 330,
                brams: 2,
            },
            Block::LinkStatusMonitor => ResourceVec {
                luts: 40,
                ffs: 60,
                brams: 0,
            },
            Block::EventMetadataBus => ResourceVec {
                luts: 50,
                ffs: 70,
                brams: 0,
            },
            Block::EventStateMemory => ResourceVec {
                luts: 90,
                ffs: 155,
                brams: 5,
            },
        }
    }
}

/// A switch configuration: a bag of blocks plus program state memories.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Design {
    /// Configuration name.
    pub name: String,
    blocks: Vec<(Block, u64)>,
    /// Extra program register state in 64-bit words (priced as BRAM).
    pub state_words: u64,
}

impl Design {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Design {
            name: name.into(),
            blocks: Vec::new(),
            state_words: 0,
        }
    }

    /// Adds `count` instances of `block`.
    pub fn with(mut self, block: Block, count: u64) -> Self {
        self.blocks.push((block, count));
        self
    }

    /// Adds program register state (e.g. a `shared_register` array).
    pub fn with_state_words(mut self, words: u64) -> Self {
        self.state_words += words;
        self
    }

    /// BRAM blocks needed for `words` 64-bit words (36 Kb = 4608 B each,
    /// rounded up).
    pub fn brams_for_words(words: u64) -> u64 {
        (words * 8).div_ceil(4608)
    }

    /// Total resource cost.
    pub fn total(&self) -> ResourceVec {
        let mut acc = self
            .blocks
            .iter()
            .fold(ResourceVec::default(), |acc, &(b, n)| {
                acc.plus(b.cost().times(n))
            });
        if self.state_words > 0 {
            acc.brams += Self::brams_for_words(self.state_words);
        }
        acc
    }

    /// Utilization percentages against a device: (lut%, ff%, bram%).
    pub fn utilization(&self, dev: Device) -> (f64, f64, f64) {
        let t = self.total();
        (
            100.0 * t.luts as f64 / dev.totals.luts as f64,
            100.0 * t.ffs as f64 / dev.totals.ffs as f64,
            100.0 * t.brams as f64 / dev.totals.brams as f64,
        )
    }
}

/// The baseline SUME switch configuration (PSA-shaped, Figure 1): 4×10G
/// ports + DMA, parser, 4 match-action stages, deparser, output queues.
pub fn baseline_sume_switch() -> Design {
    Design::new("SUME baseline switch")
        .with(Block::TenGigPort, 4)
        .with(Block::DmaEngine, 1)
        .with(Block::InputArbiter, 1)
        .with(Block::Parser, 1)
        .with(Block::MatchActionStage, 4)
        .with(Block::Deparser, 1)
        .with(Block::OutputQueue, 5)
}

/// The SUME Event Switch (Figure 4): the baseline plus the event
/// machinery — merger, queue taps, timer, packet generator, link monitor,
/// metadata bus widening per stage, and event state memory.
pub fn sume_event_switch() -> Design {
    let mut d = baseline_sume_switch();
    d.name = "SUME Event Switch".into();
    d.with(Block::EventMerger, 1)
        .with(Block::QueueEventTaps, 5)
        .with(Block::TimerBlock, 1)
        .with(Block::PacketGenerator, 1)
        .with(Block::LinkStatusMonitor, 4)
        .with(Block::EventMetadataBus, 6)
        .with(Block::EventStateMemory, 5)
}

/// One row of the Table 3 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Resource class name.
    pub resource: &'static str,
    /// Percent of the device the baseline uses.
    pub baseline_pct: f64,
    /// Percent of the device the event switch uses.
    pub event_pct: f64,
    /// The Table 3 quantity: increase as % of total device resources.
    pub increase_pct: f64,
    /// The value the paper reports.
    pub paper_pct: f64,
}

/// Reproduces Table 3 for a device.
pub fn table3(dev: Device) -> Vec<Table3Row> {
    let base = baseline_sume_switch().utilization(dev);
    let event = sume_event_switch().utilization(dev);
    vec![
        Table3Row {
            resource: "Lookup Tables",
            baseline_pct: base.0,
            event_pct: event.0,
            increase_pct: event.0 - base.0,
            paper_pct: 0.5,
        },
        Table3Row {
            resource: "Flip Flops",
            baseline_pct: base.1,
            event_pct: event.1,
            increase_pct: event.1 - base.1,
            paper_pct: 0.4,
        },
        Table3Row {
            resource: "Block RAM",
            baseline_pct: base.2,
            event_pct: event.2,
            increase_pct: event.2 - base.2,
            paper_pct: 2.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_vec_algebra() {
        let a = ResourceVec {
            luts: 1,
            ffs: 2,
            brams: 3,
        };
        let b = ResourceVec {
            luts: 10,
            ffs: 20,
            brams: 30,
        };
        assert_eq!(
            a.plus(b),
            ResourceVec {
                luts: 11,
                ffs: 22,
                brams: 33
            }
        );
        assert_eq!(
            a.times(4),
            ResourceVec {
                luts: 4,
                ffs: 8,
                brams: 12
            }
        );
    }

    #[test]
    fn event_switch_is_superset_of_baseline() {
        let b = baseline_sume_switch().total();
        let e = sume_event_switch().total();
        assert!(e.luts > b.luts);
        assert!(e.ffs > b.ffs);
        assert!(e.brams > b.brams);
    }

    #[test]
    fn table3_shape_matches_paper() {
        // The reproduction target: every increase ≤ ~2.2%, BRAM largest,
        // LUT/FF well under 1%.
        let rows = table3(VIRTEX7_690T);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.increase_pct > 0.0 && r.increase_pct <= 2.2,
                "{}: {:.2}%",
                r.resource,
                r.increase_pct
            );
            assert!(
                r.increase_pct <= r.paper_pct * 2.0 && r.increase_pct >= r.paper_pct * 0.3,
                "{}: got {:.2}%, paper {:.2}%",
                r.resource,
                r.increase_pct,
                r.paper_pct
            );
        }
        let bram = &rows[2];
        assert!(
            bram.increase_pct > rows[0].increase_pct && bram.increase_pct > rows[1].increase_pct,
            "BRAM must dominate the event cost"
        );
    }

    #[test]
    fn baseline_uses_plausible_fraction_of_device() {
        let (lut, ff, bram) = baseline_sume_switch().utilization(VIRTEX7_690T);
        assert!((15.0..60.0).contains(&lut), "LUT {lut}%");
        assert!((10.0..60.0).contains(&ff), "FF {ff}%");
        assert!((10.0..60.0).contains(&bram), "BRAM {bram}%");
    }

    #[test]
    fn brams_for_words() {
        assert_eq!(Design::brams_for_words(0), 0);
        assert_eq!(Design::brams_for_words(1), 1);
        assert_eq!(Design::brams_for_words(576), 1); // exactly one block
        assert_eq!(Design::brams_for_words(577), 2);
    }

    #[test]
    fn state_words_priced_into_bram() {
        let d = Design::new("x").with_state_words(10_000);
        assert_eq!(d.total().brams, Design::brams_for_words(10_000));
        assert_eq!(d.total().luts, 0);
    }
}
