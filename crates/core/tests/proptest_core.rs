//! Property-based tests for the event-driven architecture's invariants.

use edp_core::event::UserEvent;
use edp_core::{AggregConfig, AggregatedState, Event, EventMerger, MergerConfig};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum AggOp {
    Enqueue(usize, u16),
    Dequeue(usize, u16),
    Idle,
    Read(usize),
}

fn arb_op(entries: usize) -> impl Strategy<Value = AggOp> {
    prop_oneof![
        (0..entries, 1u16..2000).prop_map(|(i, d)| AggOp::Enqueue(i, d)),
        (0..entries, 1u16..2000).prop_map(|(i, d)| AggOp::Dequeue(i, d)),
        Just(AggOp::Idle),
        (0..entries).prop_map(AggOp::Read),
    ]
}

proptest! {
    /// After fully draining, the main register equals an exact reference
    /// model for ANY interleaving of enqueue/dequeue/idle/read ops.
    ///
    /// (Because folds apply enq and deq sides in FIFO-dirty order rather
    /// than program order, intermediate saturation can differ — so the
    /// reference avoids transient underflow by construction: dequeues are
    /// bounded by the running true value.)
    #[test]
    fn drained_state_matches_reference(
        entries in 1usize..16,
        ops in prop::collection::vec(arb_op(16), 1..400),
    ) {
        let mut st = AggregatedState::new(AggregConfig { entries, folds_per_idle_cycle: 1 });
        let mut truth = vec![0u64; entries];
        for &op in &ops {
            match op {
                AggOp::Enqueue(i, d) => {
                    let i = i % entries;
                    st.enqueue(i, d as u64);
                    truth[i] += d as u64;
                }
                AggOp::Dequeue(i, d) => {
                    let i = i % entries;
                    // Keep the workload physical: never dequeue more than
                    // is logically buffered.
                    let d = (d as u64).min(truth[i]);
                    if d > 0 {
                        st.dequeue(i, d);
                        truth[i] -= d;
                    }
                }
                AggOp::Idle => {
                    st.idle_cycle();
                }
                AggOp::Read(i) => {
                    // A stale read is allowed; it must never exceed the
                    // true value plus parked enqueues (sanity bound).
                    let _ = st.packet_read(i % entries);
                }
            }
        }
        while !st.is_drained() {
            st.idle_cycle();
        }
        for (i, &t) in truth.iter().enumerate() {
            prop_assert_eq!(st.packet_read(i), t, "entry {}", i);
            prop_assert_eq!(st.staleness(i), 0);
        }
    }

    /// true_value is invariant under idle cycles (folding moves value
    /// between arrays, never creates or destroys it).
    #[test]
    fn folding_preserves_true_value(
        entries in 1usize..8,
        ops in prop::collection::vec(arb_op(8), 1..200),
        extra_idles in 0usize..50,
    ) {
        let mut st = AggregatedState::new(AggregConfig { entries, folds_per_idle_cycle: 2 });
        let mut truth = vec![0u64; entries];
        for &op in &ops {
            match op {
                AggOp::Enqueue(i, d) => {
                    let i = i % entries;
                    st.enqueue(i, d as u64);
                    truth[i] += d as u64;
                }
                AggOp::Dequeue(i, d) => {
                    let i = i % entries;
                    let d = (d as u64).min(truth[i]);
                    if d > 0 {
                        st.dequeue(i, d);
                        truth[i] -= d;
                    }
                }
                _ => {
                    st.idle_cycle();
                }
            }
        }
        let before: Vec<u64> = (0..entries).map(|i| st.true_value(i)).collect();
        for _ in 0..extra_idles {
            st.idle_cycle();
        }
        let after: Vec<u64> = (0..entries).map(|i| st.true_value(i)).collect();
        prop_assert_eq!(before, after);
    }

    /// Event-merger conservation: events in = delivered + pending, and
    /// batches never exceed the configured slot capacity.
    #[test]
    fn merger_conserves_events(
        max_per_slot in 1usize..8,
        script in prop::collection::vec((0u8..3, 0u32..5), 1..300),
    ) {
        let cfg = MergerConfig { max_events_per_slot: max_per_slot, carrier_len_bytes: 64 };
        let mut m = EventMerger::new(cfg);
        let mut pushed = 0u64;
        let mut delivered = 0u64;
        for (cycle, &(slot_kind, n_events)) in script.iter().enumerate() {
            let c = cycle as u64;
            for k in 0..n_events {
                m.push_event(c, Event::User(UserEvent { code: k, args: [0; 4] }));
                pushed += 1;
            }
            match slot_kind {
                0 => {
                    let batch = m.packet_slot(c);
                    prop_assert!(batch.len() <= max_per_slot);
                    delivered += batch.len() as u64;
                }
                1 => {
                    if let Some(batch) = m.idle_slot(c) {
                        prop_assert!(!batch.is_empty());
                        prop_assert!(batch.len() <= max_per_slot);
                        delivered += batch.len() as u64;
                    }
                }
                _ => {} // stalled slot: nothing happens
            }
        }
        prop_assert_eq!(pushed, delivered + m.pending() as u64);
        let s = m.stats();
        prop_assert_eq!(s.events_in, pushed);
        prop_assert_eq!(s.piggybacked + s.carried_injected, delivered);
    }

    /// Merger delivery is FIFO: user-event codes come out in push order.
    #[test]
    fn merger_is_fifo(n in 1u32..100, cap in 1usize..5) {
        let cfg = MergerConfig { max_events_per_slot: cap, carrier_len_bytes: 64 };
        let mut m = EventMerger::new(cfg);
        for code in 0..n {
            m.push_event(0, Event::User(UserEvent { code, args: [0; 4] }));
        }
        let mut seen = Vec::new();
        let mut cycle = 1;
        while m.pending() > 0 {
            for ev in m.packet_slot(cycle) {
                if let Event::User(u) = ev {
                    seen.push(u.code);
                }
            }
            cycle += 1;
        }
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }
}

mod switch_conservation {
    use edp_core::{EventActions, EventProgram, EventSwitch, EventSwitchConfig};
    use edp_evsim::{SimDuration, SimTime};
    use edp_packet::{Packet, PacketBuilder, ParsedPacket};
    use edp_pisa::{Destination, QueueConfig, StdMeta};
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    /// A program that exercises many switch paths deterministically from
    /// the packet ident: forward / flood / drop / recirculate-once.
    struct Chaotic;
    impl EventProgram for Chaotic {
        fn on_ingress(
            &mut self,
            _p: &mut Packet,
            h: &ParsedPacket,
            m: &mut StdMeta,
            _n: SimTime,
            _a: &mut EventActions,
        ) {
            let sel = h.ipv4.map(|ip| ip.ident % 5).unwrap_or(0);
            m.dest = match sel {
                0 | 1 => Destination::Port((sel as u8) % 3),
                2 => Destination::Flood,
                3 => {
                    if m.recirc_count == 0 {
                        Destination::Recirculate
                    } else {
                        Destination::Port(1)
                    }
                }
                _ => Destination::Drop,
            };
        }
    }

    #[derive(Debug, Clone, Copy)]
    enum Stim {
        Rx { port: u8, ident: u16, len: usize },
        Tx { port: u8 },
        Timer,
        Link { port: u8, up: bool },
        Cp,
        User,
    }

    fn arb_stim() -> impl Strategy<Value = Stim> {
        prop_oneof![
            (0u8..3, any::<u16>(), 60usize..1500).prop_map(|(port, ident, len)| Stim::Rx {
                port,
                ident,
                len
            }),
            (0u8..3).prop_map(|port| Stim::Tx { port }),
            Just(Stim::Timer),
            (0u8..3, any::<bool>()).prop_map(|(port, up)| Stim::Link { port, up }),
            Just(Stim::Cp),
            Just(Stim::User),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The event switch never panics and never loses track of a
        /// packet: every frame that entered is eventually transmitted,
        /// still queued, or counted in exactly one drop bucket.
        #[test]
        fn switch_conserves_frames(stims in prop::collection::vec(arb_stim(), 1..250)) {
            let cfg = EventSwitchConfig {
                n_ports: 3,
                queue: QueueConfig { capacity_bytes: 5_000, ..QueueConfig::default() },
                timers: vec![edp_core::TimerSpec {
                    id: 0,
                    period: SimDuration::from_micros(10),
                    start: SimDuration::from_micros(10),
                }],
                ..Default::default()
            };
            let mut sw = EventSwitch::new(Chaotic, cfg);
            let mut now = SimTime::ZERO;
            let mut copies_in = 0u64; // frames offered to queues (flood counts per copy)
            for stim in stims {
                now += SimDuration::from_nanos(50);
                match stim {
                    Stim::Rx { port, ident, len } => {
                        let sel = ident % 5;
                        // Copies this frame will offer to the TM.
                        copies_in += match sel {
                            0 | 1 | 3 => 1,
                            2 => 2, // flood on a 3-port switch
                            _ => 0,
                        };
                        let f = PacketBuilder::udp(
                            Ipv4Addr::new(10, 0, 0, 1),
                            Ipv4Addr::new(10, 0, 0, 2),
                            7,
                            8,
                            &[],
                        )
                        .ident(ident)
                        .pad_to(len)
                        .build();
                        sw.receive(now, port, Packet::anonymous(f));
                    }
                    Stim::Tx { port } => {
                        sw.transmit(now, port);
                    }
                    Stim::Timer => {
                        sw.fire_due_timers(now);
                    }
                    Stim::Link { port, up } => sw.set_link_status(now, port, up),
                    Stim::Cp => sw.control_plane(now, 1, [0; 4]),
                    Stim::User => sw.raise_user_event(now, 2, [0; 4]),
                }
            }
            let c = sw.counters();
            let queued: u64 = (0..3u8).map(|p| sw.queue_stats(p).pkts as u64).sum();
            // Conservation over TM offers: enqueued copies = tx + egress
            // drops + link-down drops + still queued.
            prop_assert_eq!(
                copies_in,
                c.tx + c.dropped_overflow + c.dropped_link_down + queued,
                "counters: {:?}",
                c
            );
        }
    }
}
