//! The Event Merger (Figure 4).
//!
//! "The Event Merger is responsible for gathering all new events and
//! placing them into metadata that flows through the pipeline. If there
//! are no ingress packets for the metadata to piggyback onto, the Event
//! Merger generates an empty packet, attaches the event metadata and
//! injects it into the P4 pipeline."
//!
//! This is a cycle-granular model of that block: each pipeline slot either
//! carries an ingress packet (events piggyback for free) or is idle (a
//! carrier frame is injected if events are waiting). The observable
//! trade-off — event delivery latency vs. carrier-frame overhead vs.
//! offered load — is what the Figure 4 bench sweeps.

use crate::event::Event;
use edp_evsim::{Cycles, Histogram};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Event Merger configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MergerConfig {
    /// Maximum events that fit in one packet's event metadata.
    ///
    /// The SUME pipeline carries event metadata in a fixed-width bus
    /// alongside the packet; 4 matches one 32-byte metadata word holding
    /// four 8-byte event records.
    pub max_events_per_slot: usize,
    /// Length of an injected carrier frame in bytes (pipeline overhead).
    pub carrier_len_bytes: usize,
}

impl Default for MergerConfig {
    fn default() -> Self {
        MergerConfig {
            max_events_per_slot: 4,
            carrier_len_bytes: 64,
        }
    }
}

/// Counters and latency distribution for the merger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MergerStats {
    /// Events offered to the merger.
    pub events_in: u64,
    /// Events delivered by piggybacking on a real packet.
    pub piggybacked: u64,
    /// Events delivered on an injected carrier frame.
    pub carried_injected: u64,
    /// Carrier frames injected.
    pub carriers_injected: u64,
    /// Carrier bytes injected (pipeline bandwidth overhead).
    pub carrier_bytes: u64,
    /// Distribution of event wait times, in pipeline cycles.
    pub wait_cycles: Histogram,
}

impl MergerStats {
    fn new() -> Self {
        MergerStats {
            events_in: 0,
            piggybacked: 0,
            carried_injected: 0,
            carriers_injected: 0,
            carrier_bytes: 0,
            wait_cycles: Histogram::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct Pending {
    ev: Event,
    arrived: Cycles,
}

/// The Event Merger block.
#[derive(Debug, Clone)]
pub struct EventMerger {
    cfg: MergerConfig,
    pending: VecDeque<Pending>,
    stats: MergerStats,
}

impl EventMerger {
    /// Creates a merger.
    pub fn new(cfg: MergerConfig) -> Self {
        assert!(cfg.max_events_per_slot > 0);
        EventMerger {
            cfg,
            pending: VecDeque::new(),
            stats: MergerStats::new(),
        }
    }

    /// Offers a new event at `cycle`.
    pub fn push_event(&mut self, cycle: Cycles, ev: Event) {
        self.stats.events_in += 1;
        edp_telemetry::emit(
            cycle,
            edp_telemetry::RecordKind::EventEnqueued {
                kind: ev.kind().code(),
            },
        );
        self.pending.push_back(Pending { ev, arrived: cycle });
    }

    /// Events currently waiting for a carrier.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &MergerStats {
        &self.stats
    }

    fn take_batch(&mut self, cycle: Cycles) -> Vec<Event> {
        let n = self.pending.len().min(self.cfg.max_events_per_slot);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let p = self.pending.pop_front().expect("counted");
            self.stats
                .wait_cycles
                .record(cycle.saturating_sub(p.arrived));
            out.push(p.ev);
        }
        out
    }

    /// A pipeline slot carrying a real ingress packet: piggyback up to
    /// `max_events_per_slot` pending events onto its metadata.
    pub fn packet_slot(&mut self, cycle: Cycles) -> Vec<Event> {
        let batch = self.take_batch(cycle);
        self.stats.piggybacked += batch.len() as u64;
        batch
    }

    /// An idle pipeline slot: if events are waiting, inject a carrier
    /// frame and attach a batch. Returns `None` when nothing is pending
    /// (no carrier injected — idle slots are free).
    pub fn idle_slot(&mut self, cycle: Cycles) -> Option<Vec<Event>> {
        if self.pending.is_empty() {
            return None;
        }
        let batch = self.take_batch(cycle);
        self.stats.carried_injected += batch.len() as u64;
        self.stats.carriers_injected += 1;
        self.stats.carrier_bytes += self.cfg.carrier_len_bytes as u64;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TimerEvent, UserEvent};

    fn ev(n: u32) -> Event {
        Event::User(UserEvent {
            code: n,
            args: [0; 4],
        })
    }

    #[test]
    fn piggybacks_on_packets() {
        let mut m = EventMerger::new(MergerConfig::default());
        m.push_event(0, ev(1));
        m.push_event(0, ev(2));
        let batch = m.packet_slot(3);
        assert_eq!(batch.len(), 2);
        assert_eq!(m.stats().piggybacked, 2);
        assert_eq!(m.stats().carriers_injected, 0);
        assert_eq!(m.stats().wait_cycles.max(), 3);
    }

    #[test]
    fn injects_carrier_when_idle() {
        let mut m = EventMerger::new(MergerConfig::default());
        m.push_event(
            5,
            Event::Timer(TimerEvent {
                timer_id: 0,
                firing: 1,
            }),
        );
        let batch = m.idle_slot(6).expect("carrier");
        assert_eq!(batch.len(), 1);
        assert_eq!(m.stats().carriers_injected, 1);
        assert_eq!(m.stats().carrier_bytes, 64);
    }

    #[test]
    fn idle_slot_free_when_empty() {
        let mut m = EventMerger::new(MergerConfig::default());
        assert!(m.idle_slot(0).is_none());
        assert_eq!(m.stats().carriers_injected, 0);
    }

    #[test]
    fn batches_respect_capacity_and_order() {
        let cfg = MergerConfig {
            max_events_per_slot: 2,
            carrier_len_bytes: 64,
        };
        let mut m = EventMerger::new(cfg);
        for i in 0..5 {
            m.push_event(0, ev(i));
        }
        let b1 = m.packet_slot(1);
        assert_eq!(b1.len(), 2);
        assert!(matches!(b1[0], Event::User(UserEvent { code: 0, .. })));
        let b2 = m.idle_slot(2).expect("carrier");
        assert!(matches!(b2[0], Event::User(UserEvent { code: 2, .. })));
        assert_eq!(m.pending(), 1);
    }

    #[test]
    fn wait_latency_accumulates_under_load() {
        // No idle slots and heavy event rate: waits grow.
        let cfg = MergerConfig {
            max_events_per_slot: 1,
            carrier_len_bytes: 64,
        };
        let mut m = EventMerger::new(cfg);
        for c in 0..10 {
            m.push_event(c, ev(c as u32));
            m.push_event(c, ev(c as u32 + 100));
            m.packet_slot(c); // only 1 carried per slot, backlog builds
        }
        assert!(m.pending() >= 9, "backlog should build: {}", m.pending());
        assert!(m.stats().wait_cycles.max() >= 4);
    }
}
