//! Analyzer manifests: what a deployed event program declares about
//! itself so `edp-analyze` can lint it without simulating traffic.
//!
//! Rust trait objects cannot be asked "which default methods did you
//! override?", and several [`crate::EventProgram`] defaults deliberately
//! delegate (recirculated/generated packets fall through to
//! `on_ingress`). A manifest therefore *declares* the handlers a program
//! implements, the timers and control-plane opcodes its deployments arm,
//! the user-event codes it understands, the merge ops backing its shared
//! state, snapshots of its match tables — and any diagnostics it
//! explicitly allows, one `(code, subject)` pair at a time with a written
//! reason. There is intentionally no way to suppress a code wholesale.

use crate::aggreg::MergeOp;
use crate::effects::EmitFootprint;
use crate::event::EventKind;
use edp_pisa::TableShape;

/// A single allowed (suppressed) diagnostic: one stable code against one
/// subject, with the reason on record. Blanket suppression is not
/// expressible — each intentional hazard is acknowledged individually.
#[derive(Debug, Clone)]
pub struct LintAllow {
    /// The stable diagnostic code being allowed (e.g. `"EDP-W001"`).
    pub code: &'static str,
    /// The diagnostic subject the allowance is scoped to (a register or
    /// table name, an event name, a user-event code rendered in decimal).
    pub subject: String,
    /// Why this instance is intentional. Shows up in lint reports.
    pub reason: &'static str,
}

/// Everything an app registers with the analyzer. Built fluently:
///
/// ```
/// use edp_core::{AppManifest, EventKind, aggreg::MERGE_ADD};
///
/// let m = AppManifest::new("microburst")
///     .handles([EventKind::IngressPacket, EventKind::BufferEnqueue,
///               EventKind::BufferDequeue])
///     .merge_op(MERGE_ADD)
///     .allow("EDP-W001", "flowBufSize_reg",
///            "intentional multiported shared_register (paper §2)");
/// assert_eq!(m.name, "microburst");
/// assert!(m.implements(EventKind::BufferEnqueue));
/// ```
#[derive(Debug, Clone)]
pub struct AppManifest {
    /// App name as reported in diagnostics.
    pub name: &'static str,
    /// Handlers the program actually implements (overrides).
    pub handlers: Vec<EventKind>,
    /// Timer ids the deployment arms (`TimerSpec::id` values). A program
    /// handling [`EventKind::TimerExpiration`] with no armed timer is
    /// dead code, and the analyzer says so.
    pub timer_ids: Vec<u16>,
    /// Control-plane opcodes the program reacts to (probed one by one).
    pub cp_opcodes: Vec<u32>,
    /// User-event codes `on_user` understands.
    pub handles_user_codes: Vec<u32>,
    /// User-event codes the program may raise (beyond what probing
    /// observes — probes only exercise one synthetic input per handler).
    pub raises_user_codes: Vec<u32>,
    /// True when the program generates packets on paths probing may not
    /// reach (e.g. replies only to cache-hit requests).
    pub generates_packets: bool,
    /// Merge/fold ops backing the program's shared state. For a
    /// multi-writer register this is the op an aggregation-register
    /// realization (§4, Figure 3) would fold with; the analyzer proves it
    /// reorder-tolerant.
    pub merge_ops: Vec<MergeOp>,
    /// Match-table snapshots for rule analysis.
    pub tables: Vec<TableShape>,
    /// Explicitly allowed diagnostics.
    pub allows: Vec<LintAllow>,
    /// Declared per-event emission footprints (see
    /// [`crate::effects::EffectSummary`]). `None` leaves the app
    /// open-world: nothing is certified and any probed emission is an
    /// EDP-W008 warning. `Some` closes the world: kinds absent from the
    /// map are declared emission-free, and a probed emission outside the
    /// declaration is an EDP-E007 error.
    pub emissions: Option<Vec<(EventKind, EmitFootprint)>>,
    /// Source file of the app (for SARIF locations), typically `file!()`.
    pub source: Option<&'static str>,
}

impl AppManifest {
    /// Creates an empty manifest for `name`.
    pub fn new(name: &'static str) -> Self {
        AppManifest {
            name,
            handlers: Vec::new(),
            timer_ids: Vec::new(),
            cp_opcodes: Vec::new(),
            handles_user_codes: Vec::new(),
            raises_user_codes: Vec::new(),
            generates_packets: false,
            merge_ops: Vec::new(),
            tables: Vec::new(),
            allows: Vec::new(),
            emissions: None,
            source: None,
        }
    }

    /// Declares the handlers the program implements.
    pub fn handles(mut self, kinds: impl IntoIterator<Item = EventKind>) -> Self {
        self.handlers.extend(kinds);
        self
    }

    /// Declares the timer ids the deployment arms.
    pub fn timers(mut self, ids: impl IntoIterator<Item = u16>) -> Self {
        self.timer_ids.extend(ids);
        self
    }

    /// Declares control-plane opcodes the program reacts to.
    pub fn cp_ops(mut self, opcodes: impl IntoIterator<Item = u32>) -> Self {
        self.cp_opcodes.extend(opcodes);
        self
    }

    /// Declares user-event codes `on_user` understands.
    pub fn user_codes(mut self, codes: impl IntoIterator<Item = u32>) -> Self {
        self.handles_user_codes.extend(codes);
        self
    }

    /// Declares user-event codes the program may raise.
    pub fn raises(mut self, codes: impl IntoIterator<Item = u32>) -> Self {
        self.raises_user_codes.extend(codes);
        self
    }

    /// Declares that the program generates packets (on some path).
    pub fn generates(mut self) -> Self {
        self.generates_packets = true;
        self
    }

    /// Registers a merge op backing the program's shared state.
    pub fn merge_op(mut self, op: MergeOp) -> Self {
        self.merge_ops.push(op);
        self
    }

    /// Registers a match-table snapshot for rule analysis.
    pub fn table(mut self, shape: TableShape) -> Self {
        self.tables.push(shape);
        self
    }

    /// Allows one diagnostic `(code, subject)` with a written reason.
    pub fn allow(
        mut self,
        code: &'static str,
        subject: impl Into<String>,
        reason: &'static str,
    ) -> Self {
        self.allows.push(LintAllow {
            code,
            subject: subject.into(),
            reason,
        });
        self
    }

    /// Declares the emission footprint of one event kind, closing the
    /// app's emission world (kinds never passed here are declared
    /// emission-free). See [`crate::effects::EffectSummary`].
    pub fn emits(mut self, kind: EventKind, footprint: EmitFootprint) -> Self {
        self.emissions
            .get_or_insert_with(Vec::new)
            .push((kind, footprint));
        self
    }

    /// Declares that no handler of this app ever transmits a frame — the
    /// empty closed world, the strongest certificate an app can carry.
    pub fn no_emissions(mut self) -> Self {
        self.emissions.get_or_insert_with(Vec::new);
        self
    }

    /// Records the app's defining source file (use `file!()`), surfaced
    /// as the finding location in `edp_lint --sarif` output.
    pub fn source(mut self, path: &'static str) -> Self {
        self.source = Some(path);
        self
    }

    /// True when the program declares a handler for `kind`.
    pub fn implements(&self, kind: EventKind) -> bool {
        self.handlers.contains(&kind)
    }
}
