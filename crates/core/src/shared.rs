//! The `shared_register` extern.
//!
//! The paper introduces a new extern type so that *event processing
//! threads can share state* with packet processing threads (§2). In the
//! logical architecture model (Figure 2), a shared register is multiported
//! memory every handler reads and writes directly; that is what this type
//! models. The single-ported, aggregated realization for high-line-rate
//! devices (Figure 3) lives in [`crate::aggreg`].

use edp_pisa::RegisterArray;
use serde::{Deserialize, Serialize};

/// Which class of handler performed an access — used to attribute memory
/// bandwidth, the scarce resource §4 trades in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Accessor {
    /// The ingress/egress packet-event handler.
    Packet,
    /// The enqueue event handler.
    Enqueue,
    /// The dequeue event handler.
    Dequeue,
    /// Any other handler (timer, link, control plane, user).
    Other,
}

impl Accessor {
    /// Stable lowercase name, as recorded in analyzer probe claims.
    pub fn name(self) -> &'static str {
        match self {
            Accessor::Packet => "packet",
            Accessor::Enqueue => "enqueue",
            Accessor::Dequeue => "dequeue",
            Accessor::Other => "other",
        }
    }
}

/// A multiported shared register array: the `shared_register<bit<W>>(N)`
/// extern from `microburst.p4`.
///
/// Functionally identical to a plain [`RegisterArray`], plus per-accessor
/// port accounting: the number of distinct accessor classes that touched
/// the array is the number of memory ports a direct hardware realization
/// would need (the paper's low-line-rate option).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharedRegister {
    inner: RegisterArray,
    port_accesses: std::collections::BTreeMap<Accessor, u64>,
}

impl SharedRegister {
    /// Allocates `size` zeroed shared registers.
    pub fn new(name: impl Into<String>, size: usize) -> Self {
        SharedRegister {
            inner: RegisterArray::new(name, size),
            port_accesses: Default::default(),
        }
    }

    /// Records one access by `who`: port accounting, plus the accessor
    /// *claim* the analyzer cross-checks against the handler context the
    /// access actually ran in (no-op unless a probe is armed).
    fn account(&mut self, who: Accessor) {
        *self.port_accesses.entry(who).or_insert(0) += 1;
        edp_pisa::probe::record_claim(self.inner.name(), who.name());
    }

    /// Reads entry `index` as accessor `who`.
    pub fn read(&mut self, who: Accessor, index: usize) -> u64 {
        self.account(who);
        self.inner.read(index)
    }

    /// Writes entry `index` as accessor `who`.
    pub fn write(&mut self, who: Accessor, index: usize, value: u64) {
        self.account(who);
        self.inner.write(index, value)
    }

    /// Read-modify-write as accessor `who` (one port transaction).
    pub fn rmw(&mut self, who: Accessor, index: usize, f: impl FnOnce(u64) -> u64) -> u64 {
        self.account(who);
        self.inner.rmw(index, f)
    }

    /// Saturating add (the enqueue-handler idiom).
    pub fn add(&mut self, who: Accessor, index: usize, delta: u64) -> u64 {
        self.rmw(who, index, |v| v.saturating_add(delta))
    }

    /// Saturating subtract (the dequeue-handler idiom).
    pub fn sub(&mut self, who: Accessor, index: usize, delta: u64) -> u64 {
        self.rmw(who, index, |v| v.saturating_sub(delta))
    }

    /// Zeroes the array (timer-driven reset).
    pub fn reset(&mut self, who: Accessor) {
        self.account(who);
        self.inner.reset();
    }

    /// Peek without accounting (tests/observability).
    pub fn peek(&self, index: usize) -> u64 {
        self.inner.peek(index)
    }

    /// Entry count.
    pub fn size(&self) -> usize {
        self.inner.size()
    }

    /// State footprint in words (for the state-reduction comparison).
    pub fn state_words(&self) -> usize {
        self.inner.state_words()
    }

    /// Entries currently non-zero.
    pub fn nonzero_entries(&self) -> usize {
        self.inner.nonzero_entries()
    }

    /// Number of memory ports a direct multiported realization needs:
    /// one per accessor class that has touched the array.
    pub fn ports_required(&self) -> usize {
        self.port_accesses.len()
    }

    /// Accesses performed by `who`.
    pub fn accesses_by(&self, who: Accessor) -> u64 {
        self.port_accesses.get(&who).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microburst_usage_pattern() {
        // The exact access pattern of microburst.p4 §2.
        let mut reg = SharedRegister::new("flowBufSize", 64);
        let flow = 17usize;
        // Enqueue handler: read + add.
        reg.add(Accessor::Enqueue, flow, 1500);
        // Ingress packet handler: read and compare to threshold.
        let occ = reg.read(Accessor::Packet, flow);
        assert_eq!(occ, 1500);
        // Dequeue handler: subtract.
        reg.sub(Accessor::Dequeue, flow, 1500);
        assert_eq!(reg.peek(flow), 0);
        assert_eq!(reg.ports_required(), 3, "pkt + enq + deq ports");
    }

    #[test]
    fn accessor_accounting() {
        let mut reg = SharedRegister::new("x", 4);
        reg.write(Accessor::Packet, 0, 1);
        reg.write(Accessor::Packet, 1, 1);
        reg.read(Accessor::Other, 0);
        assert_eq!(reg.accesses_by(Accessor::Packet), 2);
        assert_eq!(reg.accesses_by(Accessor::Other), 1);
        assert_eq!(reg.accesses_by(Accessor::Enqueue), 0);
        assert_eq!(reg.ports_required(), 2);
    }

    #[test]
    fn reset_and_footprint() {
        let mut reg = SharedRegister::new("y", 32);
        reg.write(Accessor::Other, 3, 9);
        assert_eq!(reg.nonzero_entries(), 1);
        reg.reset(Accessor::Other);
        assert_eq!(reg.nonzero_entries(), 0);
        assert_eq!(reg.state_words(), 32);
        assert_eq!(reg.size(), 32);
    }
}
