//! # edp-core — the event-driven PISA architecture
//!
//! The primary contribution of *Event-Driven Packet Processing* (Ibanez,
//! Antichi, Brebner, McKeown — HotNets 2019), reproduced as a software
//! architecture model:
//!
//! * [`EventKind`] / [`Event`] — the thirteen data-plane events of
//!   Table 1, with typed payloads;
//! * [`EventProgram`] — the event-driven programming model: one handler
//!   per event, sharing state through ordinary program fields or the
//!   [`SharedRegister`] extern from `microburst.p4`;
//! * [`EventSwitch`] — the SUME Event Switch (Figure 4): the full
//!   architecture delivering every event to the program, built on the
//!   same traffic-manager substrate as the baseline PSA switch so the
//!   two models differ *only* in what they expose;
//! * [`EventMerger`] — the Figure 4 block that piggybacks event metadata
//!   on packets or injects carrier frames, modelled at cycle granularity;
//! * [`AggregatedState`] — the §4/Figure 3 single-ported realization of
//!   shared state with aggregation registers, idle-cycle folding and
//!   measurable, bounded staleness;
//! * [`BaselineAdapter`] — embeds any baseline program unchanged,
//!   witnessing that the baseline model is a strict subset (§8).
//!
//! ## Example: the paper's microburst program, condensed
//!
//! ```
//! use edp_core::{Accessor, EventActions, EventProgram, SharedRegister};
//! use edp_core::event::{EnqueueEvent, DequeueEvent};
//! use edp_evsim::SimTime;
//! use edp_packet::{Packet, ParsedPacket};
//! use edp_pisa::{Destination, StdMeta};
//!
//! struct Microburst {
//!     buf_size: SharedRegister,
//!     threshold: u64,
//!     culprits: u64,
//! }
//!
//! impl EventProgram for Microburst {
//!     fn on_ingress(&mut self, _p: &mut Packet, parsed: &ParsedPacket,
//!                   meta: &mut StdMeta, _now: SimTime, _a: &mut EventActions) {
//!         let flow = parsed.flow_key().map(|k| k.ip_pair_index(self.buf_size.size()));
//!         if let Some(flow) = flow {
//!             // Stage enq/deq metadata, read occupancy, detect culprit.
//!             meta.event_meta = [flow as u64, meta.pkt_len as u64, 0, 0];
//!             if self.buf_size.read(Accessor::Packet, flow) > self.threshold {
//!                 self.culprits += 1;
//!             }
//!         }
//!         meta.dest = Destination::Port(1);
//!     }
//!     fn on_enqueue(&mut self, ev: &EnqueueEvent, _now: SimTime, _a: &mut EventActions) {
//!         self.buf_size.add(Accessor::Enqueue, ev.meta[0] as usize, ev.meta[1]);
//!     }
//!     fn on_dequeue(&mut self, ev: &DequeueEvent, _now: SimTime, _a: &mut EventActions) {
//!         self.buf_size.sub(Accessor::Dequeue, ev.meta[0] as usize, ev.meta[1]);
//!     }
//! }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggreg;
pub mod effects;
pub mod event;
pub mod manifest;
mod merger;
mod program;
mod shared;
mod sume;

pub use aggreg::{
    run_staleness_experiment, AggregConfig, AggregatedState, MergeOp, StalenessReport,
};
pub use effects::{EffectSummary, EmitFootprint};
pub use event::{Event, EventCounters, EventKind};
pub use manifest::{AppManifest, LintAllow};
pub use merger::{EventMerger, MergerConfig, MergerStats};
pub use program::{BaselineAdapter, EventActions, EventProgram};
pub use shared::{Accessor, SharedRegister};
pub use sume::{
    CpNotification, EventSwitch, EventSwitchConfig, EventSwitchCounters, PacketGenConfig,
    TimerSpec, MAX_CASCADE_DEPTH, MAX_RECIRCULATIONS,
};
