//! The SUME Event Switch (Figures 2 and 4).
//!
//! [`EventSwitch`] is the event-driven PISA architecture: the same parser,
//! pipeline-program and traffic-manager substrate as
//! [`edp_pisa::BaselineSwitch`], but every architectural event — enqueue,
//! dequeue, overflow, underflow, timers, link status changes,
//! control-plane triggers, generated packets, transmissions, user events —
//! is delivered to the program's handlers.
//!
//! Dispatch semantics follow the *logical architecture model* (Figure 2):
//! handlers run immediately when their event occurs and share state
//! directly (Rust struct fields = multiported `shared_register`s). The
//! cycle-level costs of realizing this on hardware — carrier injection in
//! the event merger, staleness under single-ported aggregation — are
//! modelled separately in [`crate::merger`] and [`crate::aggreg`], which
//! is exactly the split the paper makes between §2/§5 and §4.

use crate::event::{
    ControlPlaneEvent, DequeueEvent, EnqueueEvent, Event, EventCounters, EventKind,
    LinkStatusEvent, OverflowEvent, TimerEvent, TransmitEvent, UnderflowEvent, UserEvent,
};
use crate::program::{EventActions, EventProgram};
use edp_evsim::{SimDuration, SimTime};
use edp_packet::{parse_packet, Burst, Packet, PacketUid, ParsedPacket};
use edp_pisa::{
    CachedDecision, Destination, FlowCache, FlowCacheStats, PortId, QueueConfig, QueueStats,
    StdMeta, TrafficManager,
};
use edp_telemetry::{emit, DropReason, RecordKind};
use serde::{Deserialize, Serialize};

/// Upper bound on recirculations per packet.
pub const MAX_RECIRCULATIONS: u8 = 8;
/// Upper bound on nested handler-triggered work (a generated packet whose
/// handlers generate packets, etc.) per externally-triggered event.
pub const MAX_CASCADE_DEPTH: u8 = 8;

/// A configured periodic timer (the "Timer period" register in Figure 4).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimerSpec {
    /// Program-visible timer id.
    pub id: u16,
    /// Firing period.
    pub period: SimDuration,
    /// First firing time.
    pub start: SimDuration,
}

/// Configuration of the on-switch packet generator block (Figure 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PacketGenConfig {
    /// Generation period.
    pub period: SimDuration,
    /// Frame template injected each period (the program's `on_generated`
    /// handler typically rewrites and routes it).
    pub template: Vec<u8>,
}

/// Event switch configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventSwitchConfig {
    /// Number of ports (SUME: 4 Ethernet + 1 DMA = 5).
    pub n_ports: usize,
    /// Output queue configuration.
    pub queue: QueueConfig,
    /// Periodic timers available to the program.
    pub timers: Vec<TimerSpec>,
    /// Optional template-based packet generator.
    pub generator: Option<PacketGenConfig>,
    /// Identifier mixed into generated-packet uids (keep unique per
    /// switch in multi-switch topologies).
    pub switch_id: u16,
}

impl Default for EventSwitchConfig {
    fn default() -> Self {
        EventSwitchConfig {
            n_ports: 5,
            queue: QueueConfig::default(),
            timers: Vec::new(),
            generator: None,
            switch_id: 0,
        }
    }
}

/// Aggregate counters (superset of the baseline switch's).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventSwitchCounters {
    /// Frames offered to ingress.
    pub rx: u64,
    /// Frames handed out of egress.
    pub tx: u64,
    /// Frames dropped by program decision.
    pub dropped_by_program: u64,
    /// Frames dropped on queue overflow.
    pub dropped_overflow: u64,
    /// Frames dropped because the egress link was down.
    pub dropped_link_down: u64,
    /// Parse failures.
    pub parse_errors: u64,
    /// Recirculation passes.
    pub recirculated: u64,
    /// Packets created by the generator block or `generate_packet`.
    pub generated: u64,
    /// Overflow victims rescued by trim-and-requeue.
    pub trimmed: u64,
    /// Cascade-depth guard trips (generated work discarded).
    pub cascade_limit_drops: u64,
    /// Link status transitions observed (each dispatches a
    /// [`LinkStatusEvent`]; repeats of the same status are deduplicated
    /// and not counted).
    pub link_transitions: u64,
}

impl EventSwitchCounters {
    /// Publishes the snapshot into the unified metrics registry under
    /// `scope` (conventionally `sw<N>`).
    pub fn publish(&self, reg: &mut edp_telemetry::Registry, scope: &str) {
        reg.set_counter("rx", scope, self.rx);
        reg.set_counter("tx", scope, self.tx);
        reg.set_counter("dropped_by_program", scope, self.dropped_by_program);
        reg.set_counter("dropped_overflow", scope, self.dropped_overflow);
        reg.set_counter("dropped_link_down", scope, self.dropped_link_down);
        reg.set_counter("parse_errors", scope, self.parse_errors);
        reg.set_counter("recirculated", scope, self.recirculated);
        reg.set_counter("generated", scope, self.generated);
        reg.set_counter("trimmed", scope, self.trimmed);
        reg.set_counter("cascade_limit_drops", scope, self.cascade_limit_drops);
        reg.set_counter("link_transitions", scope, self.link_transitions);
    }
}

/// A control-plane notification emitted by a handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpNotification {
    /// When it was raised.
    pub at: SimTime,
    /// Program-defined code.
    pub code: u32,
    /// Program-defined arguments.
    pub args: [u64; 4],
}

#[derive(Debug, Clone, Copy)]
struct TimerState {
    spec: TimerSpec,
    next_due: SimTime,
    firings: u64,
}

/// The event-driven switch around an [`EventProgram`].
#[derive(Debug)]
pub struct EventSwitch<P> {
    /// The event-driven program.
    pub program: P,
    cfg: EventSwitchConfig,
    tm: TrafficManager,
    timers: Vec<TimerState>,
    gen_next_due: Option<SimTime>,
    /// The generator template, shared once: every injected packet clones
    /// the `Arc`, not the bytes (handlers that rewrite it copy-on-write).
    gen_template: Option<std::sync::Arc<Vec<u8>>>,
    gen_seq: u64,
    link_up: Vec<bool>,
    counters: EventSwitchCounters,
    events: EventCounters,
    cp_out: Vec<CpNotification>,
    cache: FlowCache,
    /// The program's [`EventProgram::passive_events`] mask, sampled once
    /// at construction (the contract requires it constant).
    passive: u16,
}

impl<P: EventProgram> EventSwitch<P> {
    /// Creates an event switch.
    pub fn new(program: P, cfg: EventSwitchConfig) -> Self {
        assert!(cfg.n_ports > 0);
        let timers = cfg
            .timers
            .iter()
            .map(|&spec| TimerState {
                spec,
                next_due: SimTime::ZERO + spec.start,
                firings: 0,
            })
            .collect();
        let gen_next_due = cfg.generator.as_ref().map(|g| SimTime::ZERO + g.period);
        let gen_template = cfg
            .generator
            .as_ref()
            .map(|g| std::sync::Arc::new(g.template.clone()));
        let passive = program.passive_events();
        EventSwitch {
            program,
            tm: TrafficManager::new(cfg.n_ports, cfg.queue),
            timers,
            gen_next_due,
            gen_template,
            gen_seq: 0,
            link_up: vec![true; cfg.n_ports],
            counters: EventSwitchCounters::default(),
            events: EventCounters::new(),
            cp_out: Vec::new(),
            cache: FlowCache::default(),
            passive,
            cfg,
        }
    }

    /// Flow-cache counters (hits stay 0 unless the program opted in via
    /// [`EventProgram::flow_cacheable`]).
    pub fn flow_cache_stats(&self) -> FlowCacheStats {
        self.cache.stats()
    }

    /// Number of ports.
    pub fn n_ports(&self) -> usize {
        self.cfg.n_ports
    }

    /// Counter snapshot.
    pub fn counters(&self) -> EventSwitchCounters {
        self.counters
    }

    /// Per-kind event counts (the Table 1 coverage matrix).
    pub fn event_counters(&self) -> &EventCounters {
        &self.events
    }

    /// Per-port queue statistics.
    pub fn queue_stats(&self, port: PortId) -> QueueStats {
        self.tm.stats(port)
    }

    /// Occupancy of `port`'s output queue in bytes.
    pub fn occupancy_bytes(&self, port: PortId) -> u64 {
        self.tm.occupancy_bytes(port)
    }

    /// Total buffered bytes.
    pub fn total_buffered_bytes(&self) -> u64 {
        self.tm.total_bytes()
    }

    /// True if `port` has frames waiting to transmit.
    pub fn has_pending(&self, port: PortId) -> bool {
        self.tm.depth_pkts(port) > 0
    }

    /// Current link status of `port`.
    pub fn link_is_up(&self, port: PortId) -> bool {
        self.link_up[port as usize]
    }

    /// Drains control-plane notifications raised since the last call.
    pub fn drain_cp_notifications(&mut self) -> Vec<CpNotification> {
        std::mem::take(&mut self.cp_out)
    }

    // ------------------------------------------------------------------
    // External stimuli
    // ------------------------------------------------------------------

    /// A frame arrives on `port`.
    pub fn receive(&mut self, now: SimTime, port: PortId, pkt: Packet) {
        self.counters.rx += 1;
        self.events.record(EventKind::IngressPacket);
        emit(
            now.as_nanos(),
            RecordKind::PacketRx {
                switch: self.cfg.switch_id,
                port,
                len: pkt.len() as u32,
            },
        );
        let meta = StdMeta::ingress(port, now, pkt.len());
        self.pipeline_pass(now, pkt, meta, EventKind::IngressPacket, 0);
    }

    /// A burst of same-instant frames arrives on `port` (the `rx_burst`
    /// fast path).
    ///
    /// Byte-identical to calling [`EventSwitch::receive`] once per frame
    /// in arrival order — same record order, same counters, same handler
    /// firing sequence — but the loop-invariant work is amortized across
    /// the burst: ingress counters update once, frames go through one
    /// array-of-packets parse ([`Burst::parse`]), and the flow cache is
    /// probed once per *run* of equal flow hashes instead of once per
    /// packet (one megaflow probe classifies the whole run).
    pub fn receive_burst(&mut self, now: SimTime, port: PortId, burst: Burst) {
        let n = burst.len();
        if n == 0 {
            return;
        }
        // Hoisted once-per-burst counter updates. Counters are cumulative
        // values, not trace-ordered records, so batching keeps the final
        // state identical to per-packet increments.
        self.counters.rx += n as u64;
        self.events.record_n(EventKind::IngressPacket, n as u64);
        let cacheable = self.program.flow_cacheable();
        let telemetry_on = edp_telemetry::on();
        let switch_id = self.cfg.switch_id;
        // Phase 1 (pure): parse every frame and derive its flow hash.
        // No records are emitted here, so phase 2 can replay the exact
        // per-packet record order of the sequential path.
        let pb = burst.parse();
        let mut pkts: Vec<Option<Packet>> = pb.pkts.into_iter().map(Some).collect();
        let parsed = pb.parsed;
        let hashes = pb.flow_hashes;
        // Phase 2: per-packet work, in arrival order.
        let mut i = 0;
        while i < n {
            let run_hash = if cacheable { hashes[i] } else { None };
            if let Some(h) = run_hash {
                let mut j = i + 1;
                while j < n && hashes[j] == Some(h) {
                    j += 1;
                }
                if let Some(d) = self.cache.lookup_run(h, (j - i) as u64) {
                    // One probe classified the run; each packet still
                    // emits its own records and fires its own
                    // architectural events, in order.
                    for (pkt_slot, p) in pkts[i..j].iter_mut().zip(&parsed[i..j]) {
                        let pkt = pkt_slot.take().expect("burst slot consumed once");
                        let p = p.as_ref().expect("keyed frames parsed");
                        if telemetry_on {
                            emit(
                                now.as_nanos(),
                                RecordKind::PacketRx {
                                    switch: switch_id,
                                    port,
                                    len: pkt.len() as u32,
                                },
                            );
                        }
                        let meta = StdMeta::ingress(port, now, pkt.len());
                        self.pipeline_parsed(
                            now,
                            pkt,
                            p,
                            meta,
                            EventKind::IngressPacket,
                            0,
                            Some(h),
                            Some(d),
                        );
                    }
                    i = j;
                    continue;
                }
                // Miss: only the first packet of the run is known to miss
                // (its pipeline pass may admit the flow, turning the rest
                // of the run into hits on the re-probe).
                let pkt = pkts[i].take().expect("burst slot consumed once");
                let p = parsed[i].as_ref().expect("keyed frames parsed");
                if telemetry_on {
                    emit(
                        now.as_nanos(),
                        RecordKind::PacketRx {
                            switch: switch_id,
                            port,
                            len: pkt.len() as u32,
                        },
                    );
                }
                let meta = StdMeta::ingress(port, now, pkt.len());
                self.pipeline_parsed(
                    now,
                    pkt,
                    p,
                    meta,
                    EventKind::IngressPacket,
                    0,
                    Some(h),
                    None,
                );
                i += 1;
            } else {
                // Unkeyed, uncacheable or unparseable frame: sequential
                // semantics, slot by slot.
                let pkt = pkts[i].take().expect("burst slot consumed once");
                if telemetry_on {
                    emit(
                        now.as_nanos(),
                        RecordKind::PacketRx {
                            switch: switch_id,
                            port,
                            len: pkt.len() as u32,
                        },
                    );
                }
                match parsed[i].as_ref() {
                    Some(p) => {
                        let meta = StdMeta::ingress(port, now, pkt.len());
                        self.pipeline_parsed(
                            now,
                            pkt,
                            p,
                            meta,
                            EventKind::IngressPacket,
                            0,
                            None,
                            None,
                        );
                    }
                    None => {
                        self.counters.parse_errors += 1;
                        self.drop_record(now, DropReason::ParseError);
                    }
                }
                i += 1;
            }
        }
    }

    /// Pulls the next frame queued for `port` through egress. Returns
    /// `None` when the queue is empty (firing a buffer-underflow event) or
    /// the program/link dropped the frame.
    pub fn transmit(&mut self, now: SimTime, port: PortId) -> Option<Packet> {
        let (mut pkt, stashed, mut meta, ev) = match self.tm.dequeue_parsed(port, now) {
            Ok(x) => x,
            Err(_) => {
                self.dispatch_event(now, Event::Underflow(UnderflowEvent { port }), 0);
                return None;
            }
        };
        // Dequeue event fires as the packet leaves the buffer.
        if let edp_pisa::TmEvent::Dequeue {
            port,
            pkt_len,
            q_bytes,
            q_pkts,
            sojourn_ns,
            meta: m,
        } = ev
        {
            self.dispatch_event(
                now,
                Event::Dequeue(DequeueEvent {
                    port,
                    pkt_len,
                    q_bytes,
                    q_pkts,
                    sojourn_ns,
                    meta: m,
                }),
                0,
            );
        }
        if !self.link_up[port as usize] {
            self.counters.dropped_link_down += 1;
            self.drop_record(now, DropReason::LinkDown);
            return None;
        }
        self.events.record(EventKind::EgressPacket);
        // The ingress parse rides through the TM whenever the frame bytes
        // provably did not change after parsing (see `enqueue`); parsing
        // is pure, so reusing it here is byte-identical to re-parsing.
        let parsed = match stashed {
            Some(p) => p,
            None => match parse_packet(pkt.bytes()) {
                Ok(p) => p,
                Err(_) => {
                    self.counters.parse_errors += 1;
                    self.drop_record(now, DropReason::ParseError);
                    return None;
                }
            },
        };
        {
            let _probe = ProbeScope::enter(EventKind::EgressPacket.probe_context());
            let mut actions = EventActions::new();
            self.program
                .on_egress(&mut pkt, &parsed, &mut meta, now, &mut actions);
            self.drain_actions(now, actions, 0);
        }
        if meta.egress_drop {
            self.counters.dropped_by_program += 1;
            self.drop_record(now, DropReason::Program);
            return None;
        }
        self.counters.tx += 1;
        let len = pkt.len() as u32;
        emit(
            now.as_nanos(),
            RecordKind::PacketTx {
                switch: self.cfg.switch_id,
                port,
                len,
            },
        );
        self.dispatch_event(
            now,
            Event::Transmit(TransmitEvent { port, pkt_len: len }),
            0,
        );
        Some(pkt)
    }

    /// Pulls up to `max` queued frames through egress on `port` in one
    /// call — the `tx_burst` fan-out half of the fast path.
    ///
    /// Equivalent to a caller looping `has_pending` + [`transmit`]: the
    /// queue-empty check is hoisted here, so draining stops at the first
    /// empty poll without firing the buffer-underflow event an unguarded
    /// sequential loop would raise. Frames dropped at egress (program or
    /// link-down) are skipped from the return just as `transmit` returns
    /// `None` for them.
    ///
    /// [`transmit`]: EventSwitch::transmit
    pub fn transmit_burst(&mut self, now: SimTime, port: PortId, max: usize) -> Vec<Packet> {
        let mut out = Vec::with_capacity(max);
        for _ in 0..max {
            if !self.has_pending(port) {
                break;
            }
            if let Some(pkt) = self.transmit(now, port) {
                out.push(pkt);
            }
        }
        out
    }

    /// Fires every timer (and the packet generator) due at or before
    /// `now`. Returns the number of timer firings.
    pub fn fire_due_timers(&mut self, now: SimTime) -> u32 {
        let mut fired = 0;
        for i in 0..self.timers.len() {
            while self.timers[i].next_due <= now {
                self.timers[i].firings += 1;
                self.timers[i].next_due = self.timers[i].next_due + self.timers[i].spec.period;
                let ev = TimerEvent {
                    timer_id: self.timers[i].spec.id,
                    firing: self.timers[i].firings,
                };
                let at = now;
                self.dispatch_event(at, Event::Timer(ev), 0);
                fired += 1;
            }
        }
        while let Some(due) = self.gen_next_due {
            if due > now {
                break;
            }
            let period = self.cfg.generator.as_ref().expect("gen configured").period;
            self.gen_next_due = Some(due + period);
            let template = std::sync::Arc::clone(self.gen_template.as_ref().expect("gen"));
            self.inject_generated(now, template, 0);
        }
        fired
    }

    /// The earliest pending timer/generator deadline, for schedulers.
    pub fn next_timer_due(&self) -> Option<SimTime> {
        let t = self.timers.iter().map(|t| t.next_due).min();
        match (t, self.gen_next_due) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The control plane triggers an event (Table 1 "Control-Plane
    /// Triggered"). Program state may have changed, so every memoized
    /// flow decision is invalidated.
    pub fn control_plane(&mut self, now: SimTime, opcode: u32, args: [u64; 4]) {
        self.dispatch_event(
            now,
            Event::ControlPlane(ControlPlaneEvent { opcode, args }),
            0,
        );
        let evicted = self.cache.len() as u32;
        self.cache.invalidate_all();
        emit(now.as_nanos(), RecordKind::FlowCacheInvalidate { evicted });
    }

    /// A port's link status changed.
    pub fn set_link_status(&mut self, now: SimTime, port: PortId, up: bool) {
        if self.link_up[port as usize] == up {
            return;
        }
        self.link_up[port as usize] = up;
        self.counters.link_transitions += 1;
        self.dispatch_event(now, Event::LinkStatus(LinkStatusEvent { port, up }), 0);
    }

    /// Raises a user event from outside (tests; handlers use
    /// [`EventActions::raise_user_event`]).
    pub fn raise_user_event(&mut self, now: SimTime, code: u32, args: [u64; 4]) {
        self.dispatch_event(now, Event::User(UserEvent { code, args }), 0);
    }

    /// Publishes counters, event coverage, flow-cache stats and per-port
    /// queue stats into the unified metrics registry under `scope`.
    pub fn publish_metrics(&self, reg: &mut edp_telemetry::Registry, scope: &str) {
        self.counters.publish(reg, scope);
        self.events.publish(reg, scope);
        self.cache.stats().publish(reg, scope);
        for port in 0..self.cfg.n_ports as PortId {
            self.tm
                .stats(port)
                .publish(reg, &format!("{scope}:p{port}"));
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn drop_record(&self, now: SimTime, reason: DropReason) {
        emit(
            now.as_nanos(),
            RecordKind::PacketDrop {
                switch: self.cfg.switch_id,
                reason,
            },
        );
    }

    fn pipeline_pass(
        &mut self,
        now: SimTime,
        pkt: Packet,
        meta: StdMeta,
        kind: EventKind,
        depth: u8,
    ) {
        let parsed = match parse_packet(pkt.bytes()) {
            Ok(p) => p,
            Err(_) => {
                self.counters.parse_errors += 1;
                self.drop_record(now, DropReason::ParseError);
                return;
            }
        };
        // Fast path: first-pass ingress packets of a flow-cacheable
        // program replay the memoized decision instead of invoking the
        // handler. Architectural events (enqueue etc.) still fire below.
        let flow_hash = if kind == EventKind::IngressPacket
            && meta.recirc_count == 0
            && self.program.flow_cacheable()
        {
            parsed.flow_key().map(|k| k.hash64())
        } else {
            None
        };
        let cached = flow_hash.and_then(|h| self.cache.lookup(h));
        self.pipeline_parsed(now, pkt, &parsed, meta, kind, depth, flow_hash, cached);
    }

    /// The pipeline on an already-parsed frame. `cached` is the flow-cache
    /// probe outcome for `flow_hash` — the caller owns the probe so the
    /// burst path can amortize one probe across a run of equal keys.
    #[allow(clippy::too_many_arguments)] // deliberate: the single merge point of both the scalar and burst paths
    fn pipeline_parsed(
        &mut self,
        now: SimTime,
        mut pkt: Packet,
        parsed: &ParsedPacket,
        mut meta: StdMeta,
        kind: EventKind,
        depth: u8,
        flow_hash: Option<u64>,
        cached: Option<CachedDecision>,
    ) {
        let _probe = ProbeScope::enter(kind.probe_context());
        // `still_parsed` is `parsed` for as long as it provably describes
        // `pkt`'s current bytes; a handler mutation invalidates it. It is
        // stashed with the packet at enqueue so egress can skip its
        // re-parse (parsing is pure — reuse is unobservable).
        let still_parsed = if let Some(decision) = cached {
            decision.apply(&mut meta);
            Some(*parsed)
        } else {
            let muts_before = pkt.mutation_count();
            let mut actions = EventActions::new();
            match kind {
                EventKind::RecirculatedPacket => {
                    self.program
                        .on_recirculated(&mut pkt, parsed, &mut meta, now, &mut actions)
                }
                EventKind::GeneratedPacket => {
                    self.program
                        .on_generated(&mut pkt, parsed, &mut meta, now, &mut actions)
                }
                _ => self
                    .program
                    .on_ingress(&mut pkt, parsed, &mut meta, now, &mut actions),
            }
            if let Some(h) = flow_hash {
                self.cache.admit(h, &meta);
                emit(
                    now.as_nanos(),
                    RecordKind::FlowCacheAdmit {
                        entries: self.cache.len() as u32,
                    },
                );
            }
            self.drain_actions(now, actions, depth);
            if pkt.mutation_count() == muts_before {
                Some(*parsed)
            } else {
                None
            }
        };
        match meta.dest {
            Destination::Port(out) => {
                if (out as usize) < self.cfg.n_ports {
                    self.enqueue(now, out, pkt, still_parsed, meta, depth);
                } else {
                    self.counters.dropped_by_program += 1;
                    self.drop_record(now, DropReason::Program);
                }
            }
            Destination::Flood => {
                let ingress = meta.ingress_port;
                for out in 0..self.cfg.n_ports as PortId {
                    if out != ingress {
                        self.enqueue(now, out, pkt.clone(), still_parsed, meta, depth);
                    }
                }
            }
            Destination::Recirculate => {
                if meta.recirc_count >= MAX_RECIRCULATIONS {
                    self.counters.dropped_by_program += 1;
                    self.drop_record(now, DropReason::RecircLimit);
                    return;
                }
                self.counters.recirculated += 1;
                self.events.record(EventKind::RecirculatedPacket);
                meta.recirc_count += 1;
                emit(
                    now.as_nanos(),
                    RecordKind::PacketRecirc {
                        switch: self.cfg.switch_id,
                        pass: meta.recirc_count,
                    },
                );
                meta.dest = Destination::Unspecified;
                self.pipeline_pass(now, pkt, meta, EventKind::RecirculatedPacket, depth);
            }
            Destination::Drop | Destination::Unspecified => {
                self.counters.dropped_by_program += 1;
                self.drop_record(now, DropReason::Program);
            }
        }
    }

    fn enqueue(
        &mut self,
        now: SimTime,
        out: PortId,
        pkt: Packet,
        parsed: Option<ParsedPacket>,
        meta: StdMeta,
        depth: u8,
    ) {
        // The emission probe point: every routing decision that commits a
        // frame toward an egress queue funnels through here (unicast,
        // per-port flood copies, and the overflow trim re-offer targets
        // the same port this first offer already recorded).
        edp_pisa::probe::record_emission(u16::from(out));
        let orig_meta = meta;
        let (returned, tm_event) = self.tm.offer_parsed(out, pkt, parsed, meta, now);
        match tm_event {
            edp_pisa::TmEvent::Enqueue {
                port,
                pkt_len,
                q_bytes,
                q_pkts,
                meta,
            } => {
                self.dispatch_event(
                    now,
                    Event::Enqueue(EnqueueEvent {
                        port,
                        pkt_len,
                        q_bytes,
                        q_pkts,
                        meta,
                    }),
                    depth,
                );
            }
            edp_pisa::TmEvent::Overflow {
                port,
                pkt_len,
                q_bytes,
                meta,
            } => {
                // The overflow handler may rescue the victim by trimming
                // it to its network header (NDP-style), so dispatch it
                // inline and inspect the requested actions.
                if depth >= MAX_CASCADE_DEPTH {
                    self.counters.cascade_limit_drops += 1;
                    self.counters.dropped_overflow += 1;
                    self.drop_record(now, DropReason::CascadeLimit);
                    return;
                }
                self.events.record(EventKind::BufferOverflow);
                let ev = OverflowEvent {
                    port,
                    pkt_len,
                    q_bytes,
                    meta,
                };
                let _probe = ProbeScope::enter(EventKind::BufferOverflow.probe_context());
                let mut actions = EventActions::new();
                self.program.on_overflow(&ev, now, &mut actions);
                let trim_rank = actions.trim_requeue.take();
                self.drain_actions(now, actions, depth);
                match (trim_rank, returned) {
                    (Some(rank), Some(mut victim)) => {
                        // In-place NDP-style cut payload: the victim just
                        // came back from the TM uniquely owned, so no
                        // full-frame copy is made.
                        if victim.trim_to_network_header() {
                            let mut m = orig_meta;
                            m.rank = rank;
                            m.pkt_len = victim.len() as u32;
                            let (ret2, ev2) = self.tm.offer(out, victim, m, now);
                            if ret2.is_none() {
                                self.counters.trimmed += 1;
                                if let edp_pisa::TmEvent::Enqueue {
                                    port,
                                    pkt_len,
                                    q_bytes,
                                    q_pkts,
                                    meta,
                                } = ev2
                                {
                                    self.dispatch_event(
                                        now,
                                        Event::Enqueue(EnqueueEvent {
                                            port,
                                            pkt_len,
                                            q_bytes,
                                            q_pkts,
                                            meta,
                                        }),
                                        depth + 1,
                                    );
                                }
                                return;
                            }
                        }
                        self.counters.dropped_overflow += 1;
                        self.drop_record(now, DropReason::Overflow);
                    }
                    _ => {
                        self.counters.dropped_overflow += 1;
                        self.drop_record(now, DropReason::Overflow);
                    }
                }
            }
            _ => unreachable!("offer emits Enqueue or Overflow"),
        }
    }

    fn inject_generated(&mut self, now: SimTime, frame: std::sync::Arc<Vec<u8>>, depth: u8) {
        if depth >= MAX_CASCADE_DEPTH {
            self.counters.cascade_limit_drops += 1;
            self.drop_record(now, DropReason::CascadeLimit);
            return;
        }
        self.gen_seq += 1;
        self.counters.generated += 1;
        self.events.record(EventKind::GeneratedPacket);
        emit(
            now.as_nanos(),
            RecordKind::EventRaised {
                kind: EventKind::GeneratedPacket.code(),
            },
        );
        let uid = PacketUid(((self.cfg.switch_id as u64) << 48) | (1 << 47) | self.gen_seq);
        let pkt = Packet::from_shared(uid, frame);
        // Generated packets enter "from" the highest port index + 1 so
        // programs can distinguish them; Flood excludes no real port.
        let meta = StdMeta::ingress(self.cfg.n_ports as PortId, now, pkt.len());
        self.pipeline_pass(now, pkt, meta, EventKind::GeneratedPacket, depth + 1);
    }

    fn dispatch_event(&mut self, now: SimTime, ev: Event, depth: u8) {
        if depth >= MAX_CASCADE_DEPTH {
            self.counters.cascade_limit_drops += 1;
            return;
        }
        let kind = ev.kind();
        self.events.record(kind);
        // A passive handler (trait-default no-op, declared by the program)
        // observably does nothing, so with no telemetry session live the
        // dispatch scaffolding — span records, action staging, the handler
        // call itself — is skipped. With telemetry on, the full path runs
        // so every `EventFired`/`HandlerDone` record is still emitted.
        if self.passive & kind.bit() != 0 && !edp_telemetry::on() {
            return;
        }
        let code = kind.code();
        // Span covers the handler *and* its cascaded actions, so packets
        // enqueued and events raised inside carry this firing as cause.
        let span = edp_telemetry::span_begin(now.as_nanos(), RecordKind::EventFired { kind: code });
        if edp_telemetry::on() {
            if let Event::Dequeue(e) = &ev {
                edp_telemetry::observe(
                    "sojourn_ns",
                    &format!("sw{}:p{}", self.cfg.switch_id, e.port),
                    e.sojourn_ns,
                );
            }
        }
        let _probe = ProbeScope::enter(kind.probe_context());
        let mut actions = EventActions::new();
        match &ev {
            Event::Enqueue(e) => self.program.on_enqueue(e, now, &mut actions),
            Event::Dequeue(e) => self.program.on_dequeue(e, now, &mut actions),
            Event::Overflow(e) => self.program.on_overflow(e, now, &mut actions),
            Event::Underflow(e) => self.program.on_underflow(e, now, &mut actions),
            Event::Timer(e) => self.program.on_timer(e, now, &mut actions),
            Event::ControlPlane(e) => self.program.on_control_plane(e, now, &mut actions),
            Event::LinkStatus(e) => self.program.on_link_status(e, now, &mut actions),
            Event::User(e) => self.program.on_user(e, now, &mut actions),
            Event::Transmit(e) => self.program.on_transmit(e, now, &mut actions),
        }
        self.drain_actions(now, actions, depth);
        edp_telemetry::span_end(now.as_nanos(), span, RecordKind::HandlerDone { kind: code });
    }

    fn drain_actions(&mut self, now: SimTime, actions: EventActions, depth: u8) {
        for (code, args) in actions.notify_cp {
            self.cp_out.push(CpNotification {
                at: now,
                code,
                args,
            });
        }
        for ue in actions.user_events {
            emit(
                now.as_nanos(),
                RecordKind::EventRaised {
                    kind: EventKind::UserEvent.code(),
                },
            );
            self.dispatch_event(now, Event::User(ue), depth + 1);
        }
        for frame in actions.generated {
            self.inject_generated(now, std::sync::Arc::new(frame), depth + 1);
        }
    }
}

/// RAII probe-context frame: while `edp_pisa::probe` is armed (analysis
/// runs only), dispatch sites push the handler context they enter so
/// recorded accesses carry the innermost handler and recorded emissions
/// carry both it and the outermost entry event. Disarmed cost is one
/// thread-local flag check per dispatch; the `Drop` impl keeps the stack
/// balanced across early returns and handler panics.
struct ProbeScope(bool);

impl ProbeScope {
    #[inline]
    fn enter(context: &'static str) -> ProbeScope {
        let armed = edp_pisa::probe::armed();
        if armed {
            edp_pisa::probe::push_context(context);
        }
        ProbeScope(armed)
    }
}

impl Drop for ProbeScope {
    #[inline]
    fn drop(&mut self) {
        if self.0 {
            edp_pisa::probe::pop_context();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::EventProgram;
    use edp_packet::{PacketBuilder, ParsedPacket};
    use std::net::Ipv4Addr;

    fn frame() -> Packet {
        Packet::anonymous(
            PacketBuilder::udp(
                Ipv4Addr::new(1, 0, 0, 1),
                Ipv4Addr::new(1, 0, 0, 2),
                1,
                2,
                b"x",
            )
            .pad_to(100)
            .build(),
        )
    }

    /// Counts every handler invocation.
    #[derive(Default)]
    struct Recorder {
        enq: u32,
        deq: u32,
        ovf: u32,
        und: u32,
        timer: u32,
        link: u32,
        cp: u32,
        user: u32,
        tx: u32,
    }

    impl EventProgram for Recorder {
        fn on_ingress(
            &mut self,
            _pkt: &mut Packet,
            _parsed: &ParsedPacket,
            meta: &mut StdMeta,
            _now: SimTime,
            _a: &mut EventActions,
        ) {
            meta.dest = Destination::Port(1);
        }
        fn on_enqueue(&mut self, _e: &EnqueueEvent, _n: SimTime, _a: &mut EventActions) {
            self.enq += 1;
        }
        fn on_dequeue(&mut self, _e: &DequeueEvent, _n: SimTime, _a: &mut EventActions) {
            self.deq += 1;
        }
        fn on_overflow(&mut self, _e: &OverflowEvent, _n: SimTime, _a: &mut EventActions) {
            self.ovf += 1;
        }
        fn on_underflow(&mut self, _e: &UnderflowEvent, _n: SimTime, _a: &mut EventActions) {
            self.und += 1;
        }
        fn on_timer(&mut self, _e: &TimerEvent, _n: SimTime, _a: &mut EventActions) {
            self.timer += 1;
        }
        fn on_link_status(&mut self, _e: &LinkStatusEvent, _n: SimTime, _a: &mut EventActions) {
            self.link += 1;
        }
        fn on_control_plane(&mut self, _e: &ControlPlaneEvent, _n: SimTime, _a: &mut EventActions) {
            self.cp += 1;
        }
        fn on_user(&mut self, _e: &UserEvent, _n: SimTime, _a: &mut EventActions) {
            self.user += 1;
        }
        fn on_transmit(&mut self, _e: &TransmitEvent, _n: SimTime, _a: &mut EventActions) {
            self.tx += 1;
        }
    }

    fn cfg() -> EventSwitchConfig {
        EventSwitchConfig {
            n_ports: 4,
            ..Default::default()
        }
    }

    #[test]
    fn packet_path_fires_enqueue_dequeue_transmit() {
        let mut sw = EventSwitch::new(Recorder::default(), cfg());
        sw.receive(SimTime::ZERO, 0, frame());
        assert_eq!(sw.program.enq, 1);
        let out = sw.transmit(SimTime::from_nanos(10), 1);
        assert!(out.is_some());
        assert_eq!(sw.program.deq, 1);
        assert_eq!(sw.program.tx, 1);
        let ec = sw.event_counters();
        assert_eq!(ec.get(EventKind::IngressPacket), 1);
        assert_eq!(ec.get(EventKind::BufferEnqueue), 1);
        assert_eq!(ec.get(EventKind::BufferDequeue), 1);
        assert_eq!(ec.get(EventKind::PacketTransmitted), 1);
        assert_eq!(ec.get(EventKind::EgressPacket), 1);
    }

    #[test]
    fn overflow_fires_event() {
        let mut c = cfg();
        c.queue = QueueConfig {
            capacity_bytes: 150,
            ..QueueConfig::default()
        };
        let mut sw = EventSwitch::new(Recorder::default(), c);
        sw.receive(SimTime::ZERO, 0, frame()); // 100 bytes, fits
        sw.receive(SimTime::ZERO, 0, frame()); // would exceed 150
        assert_eq!(sw.program.ovf, 1);
        assert_eq!(sw.counters().dropped_overflow, 1);
    }

    #[test]
    fn underflow_on_empty_transmit() {
        let mut sw = EventSwitch::new(Recorder::default(), cfg());
        assert!(sw.transmit(SimTime::ZERO, 0).is_none());
        assert_eq!(sw.program.und, 1);
    }

    #[test]
    fn timers_fire_on_schedule() {
        let mut c = cfg();
        c.timers = vec![TimerSpec {
            id: 3,
            period: SimDuration::from_micros(10),
            start: SimDuration::from_micros(10),
        }];
        let mut sw = EventSwitch::new(Recorder::default(), c);
        assert_eq!(sw.next_timer_due(), Some(SimTime::from_micros(10)));
        sw.fire_due_timers(SimTime::from_micros(35));
        assert_eq!(sw.program.timer, 3, "t=10,20,30");
        assert_eq!(sw.next_timer_due(), Some(SimTime::from_micros(40)));
    }

    #[test]
    fn generator_injects_packets() {
        let mut c = cfg();
        c.generator = Some(PacketGenConfig {
            period: SimDuration::from_micros(5),
            template: PacketBuilder::udp(
                Ipv4Addr::new(9, 9, 9, 9),
                Ipv4Addr::new(8, 8, 8, 8),
                1,
                2,
                &[],
            )
            .build(),
        });
        let mut sw = EventSwitch::new(Recorder::default(), c);
        sw.fire_due_timers(SimTime::from_micros(12));
        assert_eq!(sw.counters().generated, 2, "t=5,10");
        // Generated packets flowed to port 1 via on_ingress default path.
        assert_eq!(sw.program.enq, 2);
        assert_eq!(sw.event_counters().get(EventKind::GeneratedPacket), 2);
    }

    #[test]
    fn link_status_and_cp_events() {
        let mut sw = EventSwitch::new(Recorder::default(), cfg());
        sw.set_link_status(SimTime::ZERO, 2, false);
        sw.set_link_status(SimTime::ZERO, 2, false); // no change, no event
        sw.set_link_status(SimTime::ZERO, 2, true);
        assert_eq!(sw.program.link, 2);
        assert_eq!(sw.counters().link_transitions, 2, "dedup counts once");
        sw.control_plane(SimTime::ZERO, 7, [1, 2, 3, 4]);
        assert_eq!(sw.program.cp, 1);
    }

    #[test]
    fn link_down_drops_at_egress() {
        let mut sw = EventSwitch::new(Recorder::default(), cfg());
        sw.receive(SimTime::ZERO, 0, frame());
        sw.set_link_status(SimTime::ZERO, 1, false);
        assert!(sw.transmit(SimTime::ZERO, 1).is_none());
        assert_eq!(sw.counters().dropped_link_down, 1);
        // Dequeue event still fired (the buffer did release the packet).
        assert_eq!(sw.program.deq, 1);
    }

    #[test]
    fn user_events_cascade_bounded() {
        /// Raises a user event from every user event: must hit the guard.
        struct Bomb;
        impl EventProgram for Bomb {
            fn on_user(&mut self, _e: &UserEvent, _n: SimTime, a: &mut EventActions) {
                a.raise_user_event(0, [0; 4]);
            }
        }
        let mut sw = EventSwitch::new(Bomb, cfg());
        sw.raise_user_event(SimTime::ZERO, 0, [0; 4]);
        assert!(sw.counters().cascade_limit_drops > 0);
        assert!(sw.event_counters().get(EventKind::UserEvent) <= MAX_CASCADE_DEPTH as u64);
    }

    #[test]
    fn flood_replicates_and_fires_enqueue_per_copy() {
        struct Flooder;
        impl EventProgram for Flooder {
            fn on_ingress(
                &mut self,
                _p: &mut Packet,
                _h: &ParsedPacket,
                m: &mut StdMeta,
                _n: SimTime,
                _a: &mut EventActions,
            ) {
                m.dest = Destination::Flood;
            }
        }
        let mut sw = EventSwitch::new(Flooder, cfg());
        sw.receive(SimTime::ZERO, 1, frame());
        // 4 ports, ingress excluded: 3 copies, 3 enqueue events.
        assert_eq!(sw.event_counters().get(EventKind::BufferEnqueue), 3);
        for p in [0u8, 2, 3] {
            assert!(sw.has_pending(p), "port {p}");
        }
        assert!(!sw.has_pending(1));
        assert_eq!(sw.total_buffered_bytes(), 300);
    }

    #[test]
    fn egress_drop_and_queue_stats() {
        struct EgressDropper;
        impl EventProgram for EgressDropper {
            fn on_ingress(
                &mut self,
                _p: &mut Packet,
                _h: &ParsedPacket,
                m: &mut StdMeta,
                _n: SimTime,
                _a: &mut EventActions,
            ) {
                m.dest = Destination::Port(1);
            }
            fn on_egress(
                &mut self,
                _p: &mut Packet,
                _h: &ParsedPacket,
                m: &mut StdMeta,
                _n: SimTime,
                _a: &mut EventActions,
            ) {
                m.egress_drop = true;
            }
        }
        let mut sw = EventSwitch::new(EgressDropper, cfg());
        sw.receive(SimTime::ZERO, 0, frame());
        assert!(sw.transmit(SimTime::ZERO, 1).is_none());
        let c = sw.counters();
        assert_eq!(c.tx, 0);
        assert_eq!(c.dropped_by_program, 1);
        // The dequeue happened even though egress dropped the frame.
        assert_eq!(sw.queue_stats(1).dequeued, 1);
        // No transmit event for a dropped frame.
        assert_eq!(sw.event_counters().get(EventKind::PacketTransmitted), 0);
    }

    #[test]
    fn baseline_adapter_runs_unchanged_on_event_switch() {
        use crate::program::BaselineAdapter;
        let mut sw = EventSwitch::new(BaselineAdapter(edp_pisa::ForwardTo(2)), cfg());
        sw.receive(SimTime::ZERO, 0, frame());
        assert!(sw.transmit(SimTime::ZERO, 2).is_some());
        let c = sw.counters();
        assert_eq!((c.rx, c.tx), (1, 1));
        // The architecture still *fired* the events; the baseline program
        // simply could not observe them — the §8 strict-subset argument.
        assert_eq!(sw.event_counters().get(EventKind::BufferEnqueue), 1);
        assert_eq!(sw.event_counters().get(EventKind::BufferDequeue), 1);
    }

    #[test]
    fn invalid_port_and_unspecified_drop() {
        struct Bad;
        impl EventProgram for Bad {
            fn on_ingress(
                &mut self,
                _p: &mut Packet,
                _h: &ParsedPacket,
                m: &mut StdMeta,
                _n: SimTime,
                _a: &mut EventActions,
            ) {
                m.dest = Destination::Port(99);
            }
        }
        let mut sw = EventSwitch::new(Bad, cfg());
        sw.receive(SimTime::ZERO, 0, frame());
        assert_eq!(sw.counters().dropped_by_program, 1);

        struct Undecided;
        impl EventProgram for Undecided {}
        let mut sw = EventSwitch::new(Undecided, cfg());
        sw.receive(SimTime::ZERO, 0, frame());
        assert_eq!(sw.counters().dropped_by_program, 1);
    }

    #[test]
    fn recirculation_bounded_on_event_switch() {
        struct Recirc;
        impl EventProgram for Recirc {
            fn on_ingress(
                &mut self,
                _p: &mut Packet,
                _h: &ParsedPacket,
                m: &mut StdMeta,
                _n: SimTime,
                _a: &mut EventActions,
            ) {
                m.dest = Destination::Recirculate;
            }
            fn on_recirculated(
                &mut self,
                _p: &mut Packet,
                _h: &ParsedPacket,
                m: &mut StdMeta,
                _n: SimTime,
                _a: &mut EventActions,
            ) {
                m.dest = Destination::Recirculate;
            }
        }
        let mut sw = EventSwitch::new(Recirc, cfg());
        sw.receive(SimTime::ZERO, 0, frame());
        assert_eq!(sw.counters().recirculated, MAX_RECIRCULATIONS as u64);
        assert_eq!(
            sw.event_counters().get(EventKind::RecirculatedPacket),
            MAX_RECIRCULATIONS as u64
        );
    }

    #[test]
    fn flow_cache_skips_handler_but_not_architecture_events() {
        use crate::program::BaselineAdapter;
        let mut sw = EventSwitch::new(BaselineAdapter(edp_pisa::ForwardTo(2)), cfg());
        for _ in 0..5 {
            sw.receive(SimTime::ZERO, 0, frame());
        }
        let stats = sw.flow_cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        // Cached packets still traverse the architecture: one enqueue
        // event per packet, all on the same port.
        assert_eq!(sw.event_counters().get(EventKind::BufferEnqueue), 5);
        for _ in 0..5 {
            assert!(sw.transmit(SimTime::ZERO, 2).is_some());
        }
    }

    #[test]
    fn control_plane_event_invalidates_flow_cache() {
        use crate::program::BaselineAdapter;
        use edp_pisa::TableRouter;
        let dst = Ipv4Addr::new(1, 0, 0, 2);
        let mut sw = EventSwitch::new(BaselineAdapter(TableRouter::new()), cfg());
        sw.control_plane(
            SimTime::ZERO,
            TableRouter::OP_INSERT_ROUTE,
            [u32::from(dst) as u64, 24, 1, 0],
        );
        sw.receive(SimTime::ZERO, 0, frame());
        sw.receive(SimTime::ZERO, 0, frame());
        assert!(sw.flow_cache_stats().hits >= 1);
        assert!(sw.transmit(SimTime::ZERO, 1).is_some());
        assert!(sw.transmit(SimTime::ZERO, 1).is_some());
        // Mid-run route change: a stale cache would keep port 1.
        sw.control_plane(
            SimTime::ZERO,
            TableRouter::OP_INSERT_ROUTE,
            [u32::from(dst) as u64, 32, 3, 0],
        );
        sw.receive(SimTime::ZERO, 0, frame());
        assert!(sw.has_pending(3));
        assert!(!sw.has_pending(1));
    }

    /// One run of the mixed-traffic workload; `burst` switches between
    /// per-packet [`EventSwitch::receive`] and the burst fast path.
    /// Returns every observable: trace render, counters, event counts,
    /// flow-cache stats, and the transmitted frame bytes.
    fn burst_observables(burst: bool) -> (String, EventSwitchCounters, String, FlowCacheStats) {
        use crate::program::BaselineAdapter;
        use edp_packet::Burst;
        let flow_frame = |src_port: u16| {
            Packet::anonymous(
                PacketBuilder::udp(
                    Ipv4Addr::new(1, 0, 0, 1),
                    Ipv4Addr::new(1, 0, 0, 2),
                    src_port,
                    2,
                    b"x",
                )
                .pad_to(100)
                .build(),
            )
        };
        // Two interleaved flows + a runt (parse error) mid-burst: runs of
        // equal keys, a run break, and an error slot that must stay put.
        let frames = || {
            vec![
                flow_frame(7),
                flow_frame(7),
                flow_frame(7),
                flow_frame(9),
                Packet::anonymous(vec![0xde, 0xad, 0xbe]),
                flow_frame(9),
                flow_frame(7),
            ]
        };
        edp_telemetry::enable(edp_telemetry::TelemetryConfig::default());
        let mut sw = EventSwitch::new(BaselineAdapter(edp_pisa::ForwardTo(2)), cfg());
        if burst {
            sw.receive_burst(SimTime::from_nanos(50), 0, Burst::from_frames(frames()));
        } else {
            for f in frames() {
                sw.receive(SimTime::from_nanos(50), 0, f);
            }
        }
        let drained = sw.transmit_burst(SimTime::from_nanos(90), 2, 16);
        let t = edp_telemetry::disable().expect("session");
        let payloads = drained
            .iter()
            .map(|p| format!("{:02x?}", p.bytes()))
            .collect::<Vec<_>>()
            .join("|");
        (
            t.render_trace(),
            sw.counters(),
            payloads,
            sw.flow_cache_stats(),
        )
    }

    #[test]
    fn receive_burst_is_byte_identical_to_sequential() {
        let (trace_seq, ctr_seq, tx_seq, fc_seq) = burst_observables(false);
        let (trace_b, ctr_b, tx_b, fc_b) = burst_observables(true);
        assert_eq!(trace_b, trace_seq, "telemetry record stream must match");
        assert_eq!(ctr_b, ctr_seq, "switch counters must match");
        assert_eq!(tx_b, tx_seq, "transmitted frames must match byte-for-byte");
        assert_eq!(fc_b, fc_seq, "flow-cache stats must match");
        // Sanity: the workload actually exercised the cache run probe —
        // flow 7's first packet misses, the rest of its run hits.
        assert!(fc_b.hits >= 3);
        assert!(fc_b.misses >= 2);
    }

    #[test]
    fn transmit_burst_drains_without_spurious_underflow() {
        let mut sw = EventSwitch::new(Recorder::default(), cfg());
        for _ in 0..3 {
            sw.receive(SimTime::ZERO, 0, frame());
        }
        let out = sw.transmit_burst(SimTime::from_nanos(10), 1, 8);
        assert_eq!(out.len(), 3, "drains exactly the queued frames");
        assert_eq!(sw.program.und, 0, "no underflow fired for the empty tail");
        assert_eq!(sw.program.tx, 3);
        assert!(sw.transmit_burst(SimTime::from_nanos(20), 1, 8).is_empty());
    }

    #[test]
    fn telemetry_trace_covers_packet_lifecycle() {
        use edp_telemetry::RecordKind as RK;
        edp_telemetry::enable(edp_telemetry::TelemetryConfig::default());
        let mut sw = EventSwitch::new(Recorder::default(), cfg());
        sw.receive(SimTime::ZERO, 0, frame());
        assert!(sw.transmit(SimTime::from_nanos(10), 1).is_some());
        let t = edp_telemetry::disable().expect("session");
        let recs: Vec<_> = t.ring.iter().copied().collect();
        assert!(recs.iter().any(|r| r.kind
            == RK::PacketRx {
                switch: 0,
                port: 0,
                len: 100
            }));
        assert!(recs.iter().any(|r| r.kind
            == RK::PacketTx {
                switch: 0,
                port: 1,
                len: 100
            }));
        // The enqueue handler ran under a span that its HandlerDone closes,
        // and the records between them carry the span as cause.
        let enq = EventKind::BufferEnqueue.code();
        let fired = recs
            .iter()
            .find(|r| r.kind == RK::EventFired { kind: enq })
            .expect("enqueue fired");
        assert!(recs
            .iter()
            .any(|r| r.kind == RK::HandlerDone { kind: enq } && r.span == fired.span));
        // Dequeue sojourn observed into the per-port histogram.
        let h = t
            .registry
            .histogram("sojourn_ns", "sw0:p1")
            .expect("sojourn histogram");
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 10);
    }

    #[test]
    fn telemetry_drop_records_carry_reasons() {
        use edp_telemetry::{DropReason as DR, RecordKind as RK};
        edp_telemetry::enable(edp_telemetry::TelemetryConfig::default());
        let mut sw = EventSwitch::new(Recorder::default(), cfg());
        // Link-down drop at egress.
        sw.receive(SimTime::ZERO, 0, frame());
        sw.set_link_status(SimTime::ZERO, 1, false);
        assert!(sw.transmit(SimTime::ZERO, 1).is_none());
        let t = edp_telemetry::disable().expect("session");
        assert!(t.ring.iter().any(|r| r.kind
            == RK::PacketDrop {
                switch: 0,
                reason: DR::LinkDown
            }));
    }

    #[test]
    fn publish_metrics_mirrors_counters() {
        let mut sw = EventSwitch::new(Recorder::default(), cfg());
        sw.receive(SimTime::ZERO, 0, frame());
        sw.receive(SimTime::ZERO, 0, frame());
        assert!(sw.transmit(SimTime::from_nanos(5), 1).is_some());
        let mut reg = edp_telemetry::Registry::new();
        sw.publish_metrics(&mut reg, "sw0");
        assert_eq!(reg.counter("rx", "sw0"), 2);
        assert_eq!(reg.counter("tx", "sw0"), 1);
        assert_eq!(reg.counter("events_enqueue", "sw0"), 2);
        assert_eq!(reg.counter("queue_enqueued", "sw0:p1"), 2);
        assert_eq!(reg.counter("queue_dequeued", "sw0:p1"), 1);
        assert_eq!(reg.gauge("queue_pkts", "sw0:p1"), Some(1));
    }

    #[test]
    fn cp_notifications_drain() {
        struct Notifier;
        impl EventProgram for Notifier {
            fn on_timer(&mut self, e: &TimerEvent, _n: SimTime, a: &mut EventActions) {
                a.notify_control_plane(42, [e.firing, 0, 0, 0]);
            }
        }
        let mut c = cfg();
        c.timers = vec![TimerSpec {
            id: 0,
            period: SimDuration::from_micros(1),
            start: SimDuration::from_micros(1),
        }];
        let mut sw = EventSwitch::new(Notifier, c);
        sw.fire_due_timers(SimTime::from_micros(3));
        let notes = sw.drain_cp_notifications();
        assert_eq!(notes.len(), 3);
        assert_eq!(notes[0].code, 42);
        assert_eq!(notes[2].args[0], 3);
        assert!(sw.drain_cp_notifications().is_empty());
    }
}
