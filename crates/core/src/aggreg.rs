//! Aggregation registers for single-ported state (§4, Figure 3).
//!
//! On a high-line-rate device, multiported memory is impractical, so the
//! logically-shared state is kept in a *single-ported* main register
//! array. Packet events get the main register's port every cycle they
//! need it; enqueue and dequeue events instead accumulate their
//! read-modify-writes into separate per-index *aggregation registers*.
//! During idle cycles — when the workload has larger-than-minimum packets
//! or the pipeline runs faster than line rate — the aggregated deltas are
//! folded into the main register.
//!
//! The price is *staleness*: the main register lags the true value by
//! whatever is still parked in the aggregation arrays. The paper's claim,
//! which `fig3_staleness` reproduces, is that staleness is **bounded** as
//! long as idle cycles arrive at a sufficient rate (pipeline faster than
//! line rate) and grows without bound otherwise.

use edp_evsim::Cycles;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A named binary merge/fold operation for aggregation registers.
///
/// Idle-cycle folding applies parked event-side updates to the main
/// register in an order the program does not control (§4): whichever
/// dirty slot reaches the front of the FIFO folds first, and updates from
/// different handler contexts interleave arbitrarily. A merge op is
/// therefore only legal when reordering provably cannot change the final
/// value — it must be **commutative**, **associative**, and have the
/// declared **identity** as its no-op element. `edp-analyze` checks all
/// three by exhaustive small-domain plus seeded randomized probing;
/// programs declare the ops backing their shared state in their
/// [`crate::AppManifest`].
#[derive(Debug, Clone, Copy)]
pub struct MergeOp {
    /// Human-readable operation name (stable; appears in diagnostics).
    pub name: &'static str,
    /// The identity element: `apply(identity, x) == x` for all `x`.
    pub identity: u64,
    /// The binary operation itself.
    pub apply: fn(u64, u64) -> u64,
}

fn merge_sat_add(a: u64, b: u64) -> u64 {
    a.saturating_add(b)
}

fn merge_max(a: u64, b: u64) -> u64 {
    a.max(b)
}

fn merge_min(a: u64, b: u64) -> u64 {
    a.min(b)
}

fn merge_or(a: u64, b: u64) -> u64 {
    a | b
}

/// Saturating addition — the enqueue/dequeue delta-accumulation idiom
/// ([`AggregatedState::enqueue`] uses exactly this on its aggregation
/// array). Saturation preserves associativity: the result clamps iff the
/// true sum exceeds `u64::MAX`, regardless of grouping.
pub const MERGE_ADD: MergeOp = MergeOp {
    name: "sat-add",
    identity: 0,
    apply: merge_sat_add,
};

/// Running maximum (peak trackers, high-watermarks).
pub const MERGE_MAX: MergeOp = MergeOp {
    name: "max",
    identity: 0,
    apply: merge_max,
};

/// Running minimum (e.g. best-path utilization in HULA-style probes).
pub const MERGE_MIN: MergeOp = MergeOp {
    name: "min",
    identity: u64::MAX,
    apply: merge_min,
};

/// Bitwise OR (flag accumulation / membership sketches).
pub const MERGE_OR: MergeOp = MergeOp {
    name: "or",
    identity: 0,
    apply: merge_or,
};

/// Configuration for an aggregated register bank.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AggregConfig {
    /// Number of state entries (e.g. queues whose size is tracked).
    pub entries: usize,
    /// Aggregated operations folded into the main register per idle
    /// cycle. 1 models a single spare port transaction; higher values
    /// model a wider idle-bandwidth budget.
    pub folds_per_idle_cycle: usize,
}

impl Default for AggregConfig {
    fn default() -> Self {
        AggregConfig {
            entries: 64,
            folds_per_idle_cycle: 1,
        }
    }
}

/// Which aggregation array a pending fold lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Side {
    Enq,
    Deq,
}

/// The Figure 3 register complex: main state + enqueue/dequeue
/// aggregation arrays with idle-cycle folding.
#[derive(Debug, Clone)]
pub struct AggregatedState {
    /// Diagnostic name (appears in analyzer access matrices).
    name: String,
    cfg: AggregConfig,
    /// Algorithmic state as packet events read it (possibly stale).
    /// Signed: fold order can transiently invert an enqueue/dequeue pair
    /// (the dequeue's SUB may fold before its enqueue's ADD), so the
    /// register is two's-complement like real hardware; reads clamp at 0.
    main: Vec<i64>,
    /// Pending increments from enqueue events.
    enq_agg: Vec<u64>,
    /// Pending decrements from dequeue events.
    deq_agg: Vec<u64>,
    /// FIFO of dirty (side, index) pairs awaiting a fold; an index
    /// appears at most once per side.
    dirty: VecDeque<(Side, usize)>,
    enq_dirty: Vec<bool>,
    deq_dirty: Vec<bool>,
    /// Counters.
    folds: u64,
    idle_cycles: u64,
    stale_reads: u64,
    reads: u64,
    /// FNV hash of `name`, precomputed for telemetry records.
    tele_id: u32,
}

impl AggregatedState {
    /// Creates a zeroed bank.
    pub fn new(cfg: AggregConfig) -> Self {
        Self::named("aggregated", cfg)
    }

    /// Creates a zeroed bank under a diagnostic `name`.
    pub fn named(name: impl Into<String>, cfg: AggregConfig) -> Self {
        assert!(cfg.entries > 0 && cfg.folds_per_idle_cycle > 0);
        let name = name.into();
        AggregatedState {
            tele_id: edp_telemetry::register_label(&name),
            name,
            main: vec![0; cfg.entries],
            enq_agg: vec![0; cfg.entries],
            deq_agg: vec![0; cfg.entries],
            dirty: VecDeque::new(),
            enq_dirty: vec![false; cfg.entries],
            deq_dirty: vec![false; cfg.entries],
            cfg,
            folds: 0,
            idle_cycles: 0,
            stale_reads: 0,
            reads: 0,
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.cfg.entries
    }

    /// Packet-event read of entry `i`: returns the **main** register value,
    /// which may be stale.
    pub fn packet_read(&mut self, i: usize) -> u64 {
        let i = i % self.cfg.entries;
        self.reads += 1;
        edp_pisa::probe::record(
            &self.name,
            edp_pisa::ProbeClass::Aggregated,
            edp_pisa::ProbeAccess::Read,
        );
        if self.enq_agg[i] != 0 || self.deq_agg[i] != 0 {
            self.stale_reads += 1;
            if edp_telemetry::on() {
                // The bank has no sim clock; records are stamped with the
                // read ordinal, which is deterministic per run.
                let bound = self.enq_agg[i].saturating_add(self.deq_agg[i]);
                edp_telemetry::emit(
                    self.reads,
                    edp_telemetry::RecordKind::Staleness {
                        register: self.tele_id,
                        bound,
                    },
                );
                edp_telemetry::gauge_max("staleness_bound", &self.name, bound as i64);
            }
        }
        self.main[i].max(0) as u64
    }

    /// Enqueue-event handler: aggregate `delta` for entry `i`.
    pub fn enqueue(&mut self, i: usize, delta: u64) {
        let i = i % self.cfg.entries;
        edp_pisa::probe::record(
            &self.name,
            edp_pisa::ProbeClass::Aggregated,
            edp_pisa::ProbeAccess::Write,
        );
        self.enq_agg[i] = self.enq_agg[i].saturating_add(delta);
        if !self.enq_dirty[i] {
            self.enq_dirty[i] = true;
            self.dirty.push_back((Side::Enq, i));
        }
    }

    /// Dequeue-event handler: aggregate `delta` for entry `i`.
    pub fn dequeue(&mut self, i: usize, delta: u64) {
        let i = i % self.cfg.entries;
        edp_pisa::probe::record(
            &self.name,
            edp_pisa::ProbeClass::Aggregated,
            edp_pisa::ProbeAccess::Write,
        );
        self.deq_agg[i] = self.deq_agg[i].saturating_add(delta);
        if !self.deq_dirty[i] {
            self.deq_dirty[i] = true;
            self.dirty.push_back((Side::Deq, i));
        }
    }

    /// An idle pipeline cycle: fold up to `folds_per_idle_cycle` pending
    /// aggregation entries into the main register. Returns folds applied.
    pub fn idle_cycle(&mut self) -> usize {
        self.idle_cycles += 1;
        let mut applied = 0;
        while applied < self.cfg.folds_per_idle_cycle {
            let Some((side, i)) = self.dirty.pop_front() else {
                break;
            };
            match side {
                Side::Enq => {
                    self.main[i] += self.enq_agg[i] as i64;
                    self.enq_agg[i] = 0;
                    self.enq_dirty[i] = false;
                }
                Side::Deq => {
                    self.main[i] -= self.deq_agg[i] as i64;
                    self.deq_agg[i] = 0;
                    self.deq_dirty[i] = false;
                }
            }
            self.folds += 1;
            applied += 1;
        }
        if applied > 0 {
            // Stamped with the idle-cycle ordinal (no sim clock here).
            edp_telemetry::emit(
                self.idle_cycles,
                edp_telemetry::RecordKind::RegisterFlush {
                    register: self.tele_id,
                    folds: applied as u64,
                },
            );
        }
        applied
    }

    /// The exact (unstale) value of entry `i`: main plus parked deltas.
    pub fn true_value(&self, i: usize) -> u64 {
        let i = i % self.cfg.entries;
        (self.main[i] + self.enq_agg[i] as i64 - self.deq_agg[i] as i64).max(0) as u64
    }

    /// Net read error of entry `i`: |true − main|. Enqueue and dequeue
    /// backlogs partially cancel in this metric, so it understates how
    /// much work is parked.
    pub fn net_error(&self, i: usize) -> u64 {
        let i = i % self.cfg.entries;
        let t = self.true_value(i);
        t.abs_diff(self.main[i].max(0) as u64)
    }

    /// Staleness of entry `i`: the total unapplied aggregated magnitude
    /// (`enq_agg + deq_agg`). This is the paper's bounded/unbounded
    /// quantity — it upper-bounds the instantaneous read error *and* the
    /// counter width the aggregation registers must provision.
    pub fn staleness(&self, i: usize) -> u64 {
        let i = i % self.cfg.entries;
        self.enq_agg[i].saturating_add(self.deq_agg[i])
    }

    /// Worst staleness across all entries.
    pub fn max_staleness(&self) -> u64 {
        (0..self.cfg.entries)
            .map(|i| self.staleness(i))
            .max()
            .unwrap_or(0)
    }

    /// Pending aggregated operations not yet folded.
    pub fn pending_folds(&self) -> usize {
        self.dirty.len()
    }

    /// True when main equals the true value everywhere.
    pub fn is_drained(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Folds applied so far.
    pub fn folds(&self) -> u64 {
        self.folds
    }

    /// Idle cycles seen so far.
    pub fn idle_cycles(&self) -> u64 {
        self.idle_cycles
    }

    /// Packet reads that observed a stale value.
    pub fn stale_reads(&self) -> u64 {
        self.stale_reads
    }

    /// Total packet reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// State footprint in words: main + both aggregation arrays (3×),
    /// what the resource model prices for this design.
    pub fn state_words(&self) -> usize {
        3 * self.cfg.entries
    }
}

/// Outcome summary of a [`run_staleness_experiment`] sweep point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StalenessReport {
    /// Pipeline cycles per packet arrival (the speedup factor × packet
    /// serialization cycles).
    pub cycles_per_packet: f64,
    /// Worst staleness observed at any sampling point (bytes).
    pub max_staleness: u64,
    /// Mean staleness over samples (bytes).
    pub mean_staleness: f64,
    /// Fraction of packet reads that saw a stale value.
    pub stale_read_frac: f64,
    /// Whether the aggregation arrays fully drained by the end.
    pub drained: bool,
    /// Dirty aggregation slots left when the workload ended (the end
    /// backlog; bounded by construction at 2 × entries, so compare
    /// `max_staleness` for the unbounded-growth signal).
    pub final_pending: usize,
}

/// Drives an [`AggregatedState`] with a synthetic enqueue/dequeue/read
/// workload at a given pipeline speed, sampling staleness each packet.
///
/// `speedup` is the ratio of pipeline slots to line-rate packet slots:
/// `1.0` means every cycle carries a packet (no idle cycles, unbounded
/// staleness); `1.25` leaves one idle cycle per four packets. Every packet
/// performs one main-register read (its forwarding decision), one enqueue
/// op, and one dequeue op (for a packet leaving another queue) — the
/// example workload from §4.
pub fn run_staleness_experiment(
    cfg: AggregConfig,
    speedup: f64,
    packets: u64,
    queue_of: impl Fn(u64) -> usize,
) -> StalenessReport {
    assert!(speedup >= 1.0, "pipeline slower than line rate");
    let mut st = AggregatedState::new(cfg);
    let mut max_stale = 0u64;
    let mut sum_stale = 0f64;
    let mut samples = 0u64;
    // Fixed-point accumulator of idle-slot credit.
    let mut idle_credit = 0f64;
    for p in 0..packets {
        let q = queue_of(p);
        // Packet slot: read + enqueue to q, dequeue from the "previous" q.
        st.packet_read(q);
        st.enqueue(q, 100);
        st.dequeue(queue_of(p.wrapping_add(1)), 100);
        // Idle slots owed for this packet beyond its own slot.
        idle_credit += speedup - 1.0;
        while idle_credit >= 1.0 {
            st.idle_cycle();
            idle_credit -= 1.0;
        }
        let s = st.max_staleness();
        max_stale = max_stale.max(s);
        sum_stale += s as f64;
        samples += 1;
    }
    let _ = Cycles::default();
    StalenessReport {
        cycles_per_packet: speedup,
        max_staleness: max_stale,
        mean_staleness: sum_stale / samples.max(1) as f64,
        stale_read_frac: st.stale_reads() as f64 / st.reads().max(1) as f64,
        drained: st.is_drained(),
        final_pending: st.pending_folds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_worked_example() {
        // The exact scenario in Figure 3: enqueue ADD 200 to q0, ADD 100
        // to q3; dequeue SUB 100 from q0 and q2; main holds 300/0/200/0.
        let mut st = AggregatedState::new(AggregConfig {
            entries: 4,
            folds_per_idle_cycle: 1,
        });
        // Seed main by folding initial enqueues.
        st.enqueue(0, 300);
        st.enqueue(2, 200);
        while !st.is_drained() {
            st.idle_cycle();
        }
        assert_eq!(st.packet_read(0), 300);
        assert_eq!(st.packet_read(2), 200);

        // Now the figure's pending ops.
        st.enqueue(0, 200);
        st.enqueue(3, 100);
        st.dequeue(0, 100);
        st.dequeue(2, 100);
        // Main is stale; true values already reflect the ops.
        assert_eq!(st.packet_read(0), 300);
        assert_eq!(st.true_value(0), 400);
        assert_eq!(st.true_value(2), 100);
        assert_eq!(st.true_value(3), 100);
        assert_eq!(st.net_error(0), 100, "main reads 300, truth is 400");
        assert_eq!(st.staleness(0), 300, "200 enq + 100 deq parked");
        // Four idle cycles drain everything.
        for _ in 0..4 {
            st.idle_cycle();
        }
        assert!(st.is_drained());
        assert_eq!(st.packet_read(0), 400);
        assert_eq!(st.packet_read(2), 100);
        assert_eq!(st.packet_read(3), 100);
        assert_eq!(st.max_staleness(), 0);
    }

    #[test]
    fn repeated_updates_aggregate_in_place() {
        let mut st = AggregatedState::new(AggregConfig {
            entries: 2,
            folds_per_idle_cycle: 1,
        });
        for _ in 0..10 {
            st.enqueue(1, 5);
        }
        assert_eq!(st.pending_folds(), 1, "same index coalesces");
        st.idle_cycle();
        assert_eq!(st.packet_read(1), 50);
    }

    #[test]
    fn staleness_bounded_when_faster_than_line_rate() {
        let r = run_staleness_experiment(
            AggregConfig {
                entries: 8,
                folds_per_idle_cycle: 1,
            },
            1.5,
            20_000,
            |p| (p % 8) as usize,
        );
        // 0.5 folds per packet over 16 coalescing slots: each slot is
        // served once per ~32 packets, so parked magnitude stays bounded.
        assert!(
            r.max_staleness < 8 * 100 * 10,
            "staleness {}",
            r.max_staleness
        );
        // And some staleness exists (it's not free).
        assert!(r.mean_staleness > 0.0);
    }

    #[test]
    fn staleness_grows_at_line_rate() {
        // speedup = 1.0: no idle cycles ever; aggregation never folds.
        let r = run_staleness_experiment(
            AggregConfig {
                entries: 4,
                folds_per_idle_cycle: 1,
            },
            1.0,
            5_000,
            |p| (p % 4) as usize,
        );
        assert!(!r.drained);
        assert!(
            r.max_staleness >= 100 * 1000,
            "staleness {}",
            r.max_staleness
        );
        assert!(r.stale_read_frac > 0.9);
    }

    #[test]
    fn wider_fold_budget_reduces_staleness() {
        let narrow = run_staleness_experiment(
            AggregConfig {
                entries: 16,
                folds_per_idle_cycle: 1,
            },
            1.1,
            20_000,
            |p| (p % 16) as usize,
        );
        let wide = run_staleness_experiment(
            AggregConfig {
                entries: 16,
                folds_per_idle_cycle: 4,
            },
            1.1,
            20_000,
            |p| (p % 16) as usize,
        );
        assert!(
            wide.mean_staleness <= narrow.mean_staleness,
            "wide {} vs narrow {}",
            wide.mean_staleness,
            narrow.mean_staleness
        );
    }

    #[test]
    fn state_words_triple() {
        let st = AggregatedState::new(AggregConfig {
            entries: 10,
            folds_per_idle_cycle: 1,
        });
        assert_eq!(st.state_words(), 30);
    }

    #[test]
    fn telemetry_records_staleness_and_flushes() {
        use edp_telemetry::RecordKind as RK;
        edp_telemetry::enable(edp_telemetry::TelemetryConfig::default());
        let mut st = AggregatedState::named(
            "qlen",
            AggregConfig {
                entries: 2,
                folds_per_idle_cycle: 2,
            },
        );
        st.enqueue(0, 100);
        st.packet_read(0); // stale: 100 parked
        st.idle_cycle(); // folds the one dirty slot
        st.packet_read(0); // fresh: no record
        let t = edp_telemetry::disable().expect("session");
        let reg = edp_telemetry::register_label("qlen");
        let recs: Vec<_> = t.ring.iter().map(|r| r.kind).collect();
        assert_eq!(
            recs,
            vec![
                RK::Staleness {
                    register: reg,
                    bound: 100
                },
                RK::RegisterFlush {
                    register: reg,
                    folds: 1
                },
            ]
        );
        assert_eq!(t.registry.gauge("staleness_bound", "qlen"), Some(100));
    }

    #[test]
    fn saturating_never_underflows() {
        let mut st = AggregatedState::new(AggregConfig::default());
        st.dequeue(0, 500); // dequeue before any enqueue folds
        st.idle_cycle();
        assert_eq!(st.packet_read(0), 0);
    }
}
