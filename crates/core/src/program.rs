//! The event-driven programming model.
//!
//! An [`EventProgram`] is the Rust embedding of an event-driven P4
//! program: one handler ("logical pipeline" in Figure 2) per data-plane
//! event the architecture supports. All handlers are methods on one
//! program value, so shared state is ordinary struct fields — the moral
//! equivalent of the paper's `shared_register` extern instantiated at
//! program top level.
//!
//! Handlers that need to *act* on the architecture — generate a packet,
//! raise a user event, request a control-plane notification — do so
//! through [`EventActions`], which the architecture drains after each
//! handler invocation.

use crate::event::{
    ControlPlaneEvent, DequeueEvent, EnqueueEvent, EventKind, LinkStatusEvent, OverflowEvent,
    TimerEvent, TransmitEvent, UnderflowEvent, UserEvent,
};
use edp_evsim::SimTime;
use edp_packet::{Packet, ParsedPacket};
use edp_pisa::StdMeta;

/// Deferred actions a handler may request from the architecture.
#[derive(Debug, Default)]
pub struct EventActions {
    pub(crate) generated: Vec<Vec<u8>>,
    pub(crate) user_events: Vec<UserEvent>,
    pub(crate) notify_cp: Vec<(u32, [u64; 4])>,
    pub(crate) trim_requeue: Option<u64>,
}

impl EventActions {
    /// Creates an empty action set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates a packet: the frame is injected as a *generated packet
    /// event* and then traverses the pipeline like any other packet (the
    /// program's `on_generated` decides where it goes).
    pub fn generate_packet(&mut self, frame: Vec<u8>) {
        self.generated.push(frame);
    }

    /// Raises a program-defined user event, dispatched after the current
    /// handler returns.
    pub fn raise_user_event(&mut self, code: u32, args: [u64; 4]) {
        self.user_events.push(UserEvent { code, args });
    }

    /// Sends an asynchronous notification to the control plane (e.g.
    /// "microburst culprit detected", "neighbor 3 failed").
    pub fn notify_control_plane(&mut self, code: u32, args: [u64; 4]) {
        self.notify_cp.push((code, args));
    }

    /// From an `on_overflow` handler only: instead of losing the victim
    /// packet, trim it to its network header (NDP-style "cut payload")
    /// and requeue it with scheduling rank `rank` (use rank 0 with a
    /// strict-priority or PIFO queue so the trim header jumps ahead).
    /// Ignored from any other handler. The requeue is attempted once; if
    /// even the 34-byte header does not fit, the packet is dropped for
    /// real.
    pub fn trim_and_requeue(&mut self, rank: u64) {
        self.trim_requeue = Some(rank);
    }

    /// Frames queued by [`generate_packet`](Self::generate_packet), in
    /// request order (read-only view; the architecture drains them).
    pub fn generated_frames(&self) -> &[Vec<u8>] {
        &self.generated
    }

    /// User events raised so far, in request order.
    pub fn raised_user_events(&self) -> &[UserEvent] {
        &self.user_events
    }

    /// Control-plane notifications requested so far, as `(code, args)`.
    pub fn cp_notifications(&self) -> &[(u32, [u64; 4])] {
        &self.notify_cp
    }

    /// The pending trim-and-requeue rank, if any.
    pub fn trim_rank(&self) -> Option<u64> {
        self.trim_requeue
    }

    /// True when no actions were requested.
    pub fn is_empty(&self) -> bool {
        self.generated.is_empty()
            && self.user_events.is_empty()
            && self.notify_cp.is_empty()
            && self.trim_requeue.is_none()
    }
}

/// An event-driven data-plane program.
///
/// Every method has a pass-through default so programs implement only the
/// handlers they care about — exactly like a P4 architecture description
/// with optional controls. Packet-event handlers mirror
/// [`edp_pisa::PisaProgram`]; the remaining ten are the paper's new
/// events.
/// Programs are `Send` so a sharded simulation can build its switches on
/// worker threads and hand finished shard state back for inspection.
#[allow(unused_variables)]
pub trait EventProgram: Send {
    /// Ingress packet event. Set `meta.dest` to forward, and stage
    /// `meta.event_meta` for the enqueue/dequeue handlers.
    fn on_ingress(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        actions: &mut EventActions,
    ) {
    }

    /// Egress packet event (after the traffic manager).
    fn on_egress(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        actions: &mut EventActions,
    ) {
    }

    /// Recirculated packet event: a packet re-entering ingress. Default
    /// delegates to `on_ingress`.
    fn on_recirculated(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        actions: &mut EventActions,
    ) {
        self.on_ingress(pkt, parsed, meta, now, actions)
    }

    /// Generated packet event: a packet created by `generate_packet` or
    /// the packet-generator block, entering the pipeline. Default
    /// delegates to `on_ingress`.
    fn on_generated(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        actions: &mut EventActions,
    ) {
        self.on_ingress(pkt, parsed, meta, now, actions)
    }

    /// Buffer enqueue event.
    fn on_enqueue(&mut self, ev: &EnqueueEvent, now: SimTime, actions: &mut EventActions) {}

    /// Buffer dequeue event.
    fn on_dequeue(&mut self, ev: &DequeueEvent, now: SimTime, actions: &mut EventActions) {}

    /// Buffer overflow (drop) event.
    fn on_overflow(&mut self, ev: &OverflowEvent, now: SimTime, actions: &mut EventActions) {}

    /// Buffer underflow event.
    fn on_underflow(&mut self, ev: &UnderflowEvent, now: SimTime, actions: &mut EventActions) {}

    /// Timer expiration event.
    fn on_timer(&mut self, ev: &TimerEvent, now: SimTime, actions: &mut EventActions) {}

    /// Control-plane-triggered event.
    fn on_control_plane(
        &mut self,
        ev: &ControlPlaneEvent,
        now: SimTime,
        actions: &mut EventActions,
    ) {
    }

    /// Link status change event.
    fn on_link_status(&mut self, ev: &LinkStatusEvent, now: SimTime, actions: &mut EventActions) {}

    /// User event raised by another handler.
    fn on_user(&mut self, ev: &UserEvent, now: SimTime, actions: &mut EventActions) {}

    /// Packet transmitted event.
    fn on_transmit(&mut self, ev: &TransmitEvent, now: SimTime, actions: &mut EventActions) {}

    /// Opt-in to the switch's per-flow action cache (same contract as
    /// [`edp_pisa::PisaProgram::flow_cacheable`]): `true` promises that
    /// [`on_ingress`](Self::on_ingress) writes `meta` as a pure function
    /// of the flow 5-tuple and control-plane-managed state, requests no
    /// [`EventActions`], and does not rewrite the packet. Cached packets
    /// skip `on_ingress` entirely; architectural events (enqueue, dequeue,
    /// …) still fire for them. The cache is invalidated on every
    /// control-plane event. Default: `false`.
    fn flow_cacheable(&self) -> bool {
        false
    }

    /// Bitmask (of [`EventKind::bit`](crate::EventKind::bit)) of *control*
    /// events — enqueue, dequeue, transmit, underflow, overflow, timer,
    /// control-plane, link-status, user — whose handlers this program
    /// leaves as the trait's empty defaults.
    ///
    /// A passive handler observably does nothing: it touches no program
    /// state and requests no [`EventActions`]. The switch uses this to
    /// skip the dispatch scaffolding for such events when no telemetry
    /// session is live (the event *counter* still advances; with
    /// telemetry on, dispatch always runs in full so the
    /// `EventFired`/`HandlerDone` trace records are emitted). Declaring a
    /// bit while overriding that handler silently disables it — only list
    /// handlers you have not implemented. Must be constant for the
    /// program's lifetime (queried once at switch construction). Bits for
    /// packet events (ingress/egress/recirculated/generated) are ignored.
    /// Default: `0` (every handler may be active).
    fn passive_events(&self) -> u16 {
        0
    }
}

/// Boxed programs forward every handler, so an [`EventSwitch`] can run a
/// `Box<dyn EventProgram>` picked at runtime (the app registry, `edp_top`).
/// Each method forwards explicitly — relying on the trait defaults here
/// would re-route overridden `on_recirculated`/`on_generated` through the
/// box's own `on_ingress` default instead of the inner program's override.
///
/// [`EventSwitch`]: crate::EventSwitch
impl<P: EventProgram + ?Sized> EventProgram for Box<P> {
    fn on_ingress(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        actions: &mut EventActions,
    ) {
        (**self).on_ingress(pkt, parsed, meta, now, actions)
    }
    fn on_egress(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        actions: &mut EventActions,
    ) {
        (**self).on_egress(pkt, parsed, meta, now, actions)
    }
    fn on_recirculated(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        actions: &mut EventActions,
    ) {
        (**self).on_recirculated(pkt, parsed, meta, now, actions)
    }
    fn on_generated(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        actions: &mut EventActions,
    ) {
        (**self).on_generated(pkt, parsed, meta, now, actions)
    }
    fn on_enqueue(&mut self, ev: &EnqueueEvent, now: SimTime, actions: &mut EventActions) {
        (**self).on_enqueue(ev, now, actions)
    }
    fn on_dequeue(&mut self, ev: &DequeueEvent, now: SimTime, actions: &mut EventActions) {
        (**self).on_dequeue(ev, now, actions)
    }
    fn on_overflow(&mut self, ev: &OverflowEvent, now: SimTime, actions: &mut EventActions) {
        (**self).on_overflow(ev, now, actions)
    }
    fn on_underflow(&mut self, ev: &UnderflowEvent, now: SimTime, actions: &mut EventActions) {
        (**self).on_underflow(ev, now, actions)
    }
    fn on_timer(&mut self, ev: &TimerEvent, now: SimTime, actions: &mut EventActions) {
        (**self).on_timer(ev, now, actions)
    }
    fn on_control_plane(
        &mut self,
        ev: &ControlPlaneEvent,
        now: SimTime,
        actions: &mut EventActions,
    ) {
        (**self).on_control_plane(ev, now, actions)
    }
    fn on_link_status(&mut self, ev: &LinkStatusEvent, now: SimTime, actions: &mut EventActions) {
        (**self).on_link_status(ev, now, actions)
    }
    fn on_user(&mut self, ev: &UserEvent, now: SimTime, actions: &mut EventActions) {
        (**self).on_user(ev, now, actions)
    }
    fn on_transmit(&mut self, ev: &TransmitEvent, now: SimTime, actions: &mut EventActions) {
        (**self).on_transmit(ev, now, actions)
    }
    fn flow_cacheable(&self) -> bool {
        (**self).flow_cacheable()
    }
    fn passive_events(&self) -> u16 {
        (**self).passive_events()
    }
}

/// Adapts a baseline [`edp_pisa::PisaProgram`] into an [`EventProgram`]
/// that ignores every non-packet event — the formal statement of "the
/// baseline model is a strict subset of the event-driven model" (§8).
#[derive(Debug, Clone)]
pub struct BaselineAdapter<P>(
    /// The wrapped baseline program.
    pub P,
);

impl<P: edp_pisa::PisaProgram> EventProgram for BaselineAdapter<P> {
    fn on_ingress(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        _actions: &mut EventActions,
    ) {
        self.0.ingress(pkt, parsed, meta, now)
    }

    fn on_egress(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        _actions: &mut EventActions,
    ) {
        self.0.egress(pkt, parsed, meta, now)
    }

    /// Bridges the event switch's control-plane trigger to the baseline
    /// program's ordinary management channel. This is not an event the
    /// baseline model lacks — `control_update` is the management path
    /// every PISA target has — so forwarding it preserves the
    /// strict-subset argument.
    fn on_control_plane(
        &mut self,
        ev: &ControlPlaneEvent,
        now: SimTime,
        _actions: &mut EventActions,
    ) {
        self.0.control_update(ev.opcode, ev.args, now)
    }

    fn flow_cacheable(&self) -> bool {
        self.0.flow_cacheable()
    }

    /// A baseline program *cannot* react to control events — that is the
    /// subset claim — so every control-event handler except the bridged
    /// control-plane trigger is passive by construction.
    fn passive_events(&self) -> u16 {
        EventKind::PacketTransmitted.bit()
            | EventKind::BufferEnqueue.bit()
            | EventKind::BufferDequeue.bit()
            | EventKind::BufferOverflow.bit()
            | EventKind::BufferUnderflow.bit()
            | EventKind::TimerExpiration.bit()
            | EventKind::LinkStatusChange.bit()
            | EventKind::UserEvent.bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edp_pisa::{Destination, ForwardTo};
    use std::net::Ipv4Addr;

    #[test]
    fn actions_collect() {
        let mut a = EventActions::new();
        assert!(a.is_empty());
        a.generate_packet(vec![1, 2, 3]);
        a.raise_user_event(7, [1, 2, 3, 4]);
        a.notify_control_plane(9, [0; 4]);
        assert!(!a.is_empty());
        assert_eq!(a.generated.len(), 1);
        assert_eq!(a.user_events[0].code, 7);
        assert_eq!(a.notify_cp[0].0, 9);
    }

    #[test]
    fn baseline_adapter_forwards() {
        let frame = edp_packet::PacketBuilder::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            &[],
        )
        .build();
        let mut pkt = Packet::anonymous(frame);
        let parsed = edp_packet::parse_packet(pkt.bytes()).expect("parse");
        let mut meta = StdMeta::ingress(0, SimTime::ZERO, pkt.len());
        let mut adapter = BaselineAdapter(ForwardTo(1));
        let mut actions = EventActions::new();
        adapter.on_ingress(&mut pkt, &parsed, &mut meta, SimTime::ZERO, &mut actions);
        assert_eq!(meta.dest, Destination::Port(1));
        // Non-packet events are no-ops by default.
        adapter.on_enqueue(
            &crate::event::EnqueueEvent {
                port: 0,
                pkt_len: 0,
                q_bytes: 0,
                q_pkts: 0,
                meta: [0; 4],
            },
            SimTime::ZERO,
            &mut actions,
        );
    }

    #[test]
    fn default_handlers_are_noops() {
        struct Nop;
        impl EventProgram for Nop {}
        let mut n = Nop;
        let mut a = EventActions::new();
        n.on_timer(
            &TimerEvent {
                timer_id: 0,
                firing: 1,
            },
            SimTime::ZERO,
            &mut a,
        );
        n.on_user(
            &UserEvent {
                code: 0,
                args: [0; 4],
            },
            SimTime::ZERO,
            &mut a,
        );
        assert!(a.is_empty());
    }
}
