//! The data-plane event taxonomy (Table 1 of the paper).
//!
//! A *data-plane event* is "an architectural state change that triggers
//! processing in the programming model". Table 1 lists thirteen; this
//! module defines all of them as a closed enum plus the payload each
//! carries to its handler.

use edp_pisa::PortId;
use serde::{Deserialize, Serialize};

/// The thirteen event kinds of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventKind {
    /// A packet arrived on an external port.
    IngressPacket,
    /// A packet is leaving through the egress pipeline.
    EgressPacket,
    /// A packet re-entered the ingress pipeline via recirculation.
    RecirculatedPacket,
    /// A packet produced by the on-switch packet generator.
    GeneratedPacket,
    /// A packet finished serializing onto the wire.
    PacketTransmitted,
    /// A packet was accepted into a switch buffer.
    BufferEnqueue,
    /// A packet was removed from a switch buffer.
    BufferDequeue,
    /// A packet was dropped because a buffer was full.
    BufferOverflow,
    /// A dequeue was attempted on an empty buffer.
    BufferUnderflow,
    /// A configured timer expired.
    TimerExpiration,
    /// The control plane triggered an event explicitly.
    ControlPlaneTriggered,
    /// A port's link went up or down.
    LinkStatusChange,
    /// A program-defined event raised by another handler.
    UserEvent,
}

impl EventKind {
    /// All thirteen kinds, in Table 1 order (column-major).
    pub const ALL: [EventKind; 13] = [
        EventKind::IngressPacket,
        EventKind::EgressPacket,
        EventKind::RecirculatedPacket,
        EventKind::GeneratedPacket,
        EventKind::PacketTransmitted,
        EventKind::BufferEnqueue,
        EventKind::BufferDequeue,
        EventKind::BufferOverflow,
        EventKind::BufferUnderflow,
        EventKind::TimerExpiration,
        EventKind::ControlPlaneTriggered,
        EventKind::LinkStatusChange,
        EventKind::UserEvent,
    ];

    /// Compact telemetry code: this kind's index in [`EventKind::ALL`].
    /// [`edp_telemetry::event_kind_label`] maps the code back to a short
    /// label in trace renders. Constant-time — this runs on every event
    /// dispatch, so a scan over `ALL` would tax the hot path.
    pub const fn code(self) -> u8 {
        match self {
            EventKind::IngressPacket => 0,
            EventKind::EgressPacket => 1,
            EventKind::RecirculatedPacket => 2,
            EventKind::GeneratedPacket => 3,
            EventKind::PacketTransmitted => 4,
            EventKind::BufferEnqueue => 5,
            EventKind::BufferDequeue => 6,
            EventKind::BufferOverflow => 7,
            EventKind::BufferUnderflow => 8,
            EventKind::TimerExpiration => 9,
            EventKind::ControlPlaneTriggered => 10,
            EventKind::LinkStatusChange => 11,
            EventKind::UserEvent => 12,
        }
    }

    /// This kind's bit in an event-set bitmask (`1 << code`), as used by
    /// [`EventProgram::passive_events`](crate::EventProgram::passive_events).
    pub const fn bit(self) -> u16 {
        1 << self.code()
    }

    /// The human-readable name used in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::IngressPacket => "Ingress Packet",
            EventKind::EgressPacket => "Egress Packet",
            EventKind::RecirculatedPacket => "Recirculated Packet",
            EventKind::GeneratedPacket => "Generated Packet",
            EventKind::PacketTransmitted => "Packet Transmitted",
            EventKind::BufferEnqueue => "Buffer Enqueue",
            EventKind::BufferDequeue => "Buffer Dequeue",
            EventKind::BufferOverflow => "Buffer Overflow",
            EventKind::BufferUnderflow => "Buffer Underflow",
            EventKind::TimerExpiration => "Timer Expiration",
            EventKind::ControlPlaneTriggered => "Control-Plane Triggered",
            EventKind::LinkStatusChange => "Link Status Change",
            EventKind::UserEvent => "User Event",
        }
    }

    /// The `edp_pisa::probe` context label a handler of this kind runs
    /// under — the shared vocabulary between the switch's dispatch
    /// instrumentation and `edp-analyze`'s access/effect matrices.
    pub fn probe_context(self) -> &'static str {
        match self {
            EventKind::IngressPacket => "ingress",
            EventKind::EgressPacket => "egress",
            EventKind::RecirculatedPacket => "recirculated",
            EventKind::GeneratedPacket => "generated",
            EventKind::PacketTransmitted => "transmit",
            EventKind::BufferEnqueue => "enqueue",
            EventKind::BufferDequeue => "dequeue",
            EventKind::BufferOverflow => "overflow",
            EventKind::BufferUnderflow => "underflow",
            EventKind::TimerExpiration => "timer",
            EventKind::ControlPlaneTriggered => "control-plane",
            EventKind::LinkStatusChange => "link-status",
            EventKind::UserEvent => "user",
        }
    }

    /// True for the three packet events baseline PISA already supports
    /// ("commonly supported in the baseline programming model").
    pub fn baseline_supported(self) -> bool {
        matches!(
            self,
            EventKind::IngressPacket | EventKind::EgressPacket | EventKind::RecirculatedPacket
        )
    }
}

/// Payload of a buffer enqueue event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnqueueEvent {
    /// Output port whose queue accepted the packet.
    pub port: PortId,
    /// Packet length in bytes.
    pub pkt_len: u32,
    /// Queue occupancy in bytes after the enqueue.
    pub q_bytes: u64,
    /// Queue depth in packets after the enqueue.
    pub q_pkts: u32,
    /// Program-staged metadata (the paper's `enq_meta`).
    pub meta: [u64; 4],
}

/// Payload of a buffer dequeue event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DequeueEvent {
    /// Output port whose queue released the packet.
    pub port: PortId,
    /// Packet length in bytes.
    pub pkt_len: u32,
    /// Queue occupancy in bytes after the dequeue.
    pub q_bytes: u64,
    /// Queue depth in packets after the dequeue.
    pub q_pkts: u32,
    /// Time the packet spent queued, in nanoseconds.
    pub sojourn_ns: u64,
    /// Program-staged metadata (the paper's `deq_meta`).
    pub meta: [u64; 4],
}

/// Payload of a buffer overflow (drop) event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverflowEvent {
    /// Output port whose queue was full.
    pub port: PortId,
    /// Length of the dropped packet.
    pub pkt_len: u32,
    /// Queue occupancy at drop time.
    pub q_bytes: u64,
    /// Program-staged metadata.
    pub meta: [u64; 4],
}

/// Payload of a buffer underflow event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnderflowEvent {
    /// Port whose queue was empty on a dequeue attempt.
    pub port: PortId,
}

/// Payload of a timer expiration event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimerEvent {
    /// Which configured timer fired.
    pub timer_id: u16,
    /// How many times this timer has fired so far (1-based).
    pub firing: u64,
}

/// Payload of a control-plane-triggered event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlPlaneEvent {
    /// Program-defined opcode.
    pub opcode: u32,
    /// Program-defined arguments.
    pub args: [u64; 4],
}

/// Payload of a link status change event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStatusEvent {
    /// Affected port.
    pub port: PortId,
    /// New status: `true` when the link came up.
    pub up: bool,
}

/// Payload of a program-raised user event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserEvent {
    /// Program-defined code.
    pub code: u32,
    /// Program-defined arguments.
    pub args: [u64; 4],
}

/// Payload of a packet-transmitted event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransmitEvent {
    /// Port the packet left on.
    pub port: PortId,
    /// Frame length in bytes.
    pub pkt_len: u32,
}

/// A non-packet event with payload, as carried by the event merger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// Buffer enqueue.
    Enqueue(EnqueueEvent),
    /// Buffer dequeue.
    Dequeue(DequeueEvent),
    /// Buffer overflow.
    Overflow(OverflowEvent),
    /// Buffer underflow.
    Underflow(UnderflowEvent),
    /// Timer expiration.
    Timer(TimerEvent),
    /// Control-plane trigger.
    ControlPlane(ControlPlaneEvent),
    /// Link status change.
    LinkStatus(LinkStatusEvent),
    /// User-raised event.
    User(UserEvent),
    /// Packet finished transmitting.
    Transmit(TransmitEvent),
}

impl Event {
    /// The taxonomy kind of this event.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Enqueue(_) => EventKind::BufferEnqueue,
            Event::Dequeue(_) => EventKind::BufferDequeue,
            Event::Overflow(_) => EventKind::BufferOverflow,
            Event::Underflow(_) => EventKind::BufferUnderflow,
            Event::Timer(_) => EventKind::TimerExpiration,
            Event::ControlPlane(_) => EventKind::ControlPlaneTriggered,
            Event::LinkStatus(_) => EventKind::LinkStatusChange,
            Event::User(_) => EventKind::UserEvent,
            Event::Transmit(_) => EventKind::PacketTransmitted,
        }
    }
}

/// Per-kind event counters: the coverage matrix behind Table 1.
///
/// Stored as a flat array indexed by [`EventKind::code`]: `record` runs
/// on every architectural event of every packet, so it must be a single
/// indexed add, not a map probe.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventCounters {
    counts: [u64; 13],
}

impl EventCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occurrence of `kind`.
    #[inline]
    pub fn record(&mut self, kind: EventKind) {
        self.counts[kind.code() as usize] += 1;
    }

    /// Records `n` occurrences of `kind` with one indexed add — the
    /// per-burst form of [`EventCounters::record`]. Final counts are
    /// identical to `n` individual calls.
    #[inline]
    pub fn record_n(&mut self, kind: EventKind, n: u64) {
        self.counts[kind.code() as usize] += n;
    }

    /// Occurrences of `kind` so far.
    pub fn get(&self, kind: EventKind) -> u64 {
        self.counts[kind.code() as usize]
    }

    /// Kinds that have fired at least once.
    pub fn covered(&self) -> Vec<EventKind> {
        EventKind::ALL
            .into_iter()
            .filter(|k| self.get(*k) > 0)
            .collect()
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Publishes per-kind counts into the unified metrics registry under
    /// `scope`, as `events_<label>` counters plus an `events_total`.
    pub fn publish(&self, reg: &mut edp_telemetry::Registry, scope: &str) {
        for kind in EventKind::ALL {
            let label = edp_telemetry::event_kind_label(kind.code());
            reg.set_counter(&format!("events_{label}"), scope, self.get(kind));
        }
        reg.set_counter("events_total", scope, self.total());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_kinds_unique_names() {
        assert_eq!(EventKind::ALL.len(), 13);
        let names: std::collections::HashSet<_> = EventKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn baseline_supports_only_packet_events() {
        let baseline: Vec<_> = EventKind::ALL
            .into_iter()
            .filter(|k| k.baseline_supported())
            .collect();
        assert_eq!(
            baseline,
            vec![
                EventKind::IngressPacket,
                EventKind::EgressPacket,
                EventKind::RecirculatedPacket
            ]
        );
    }

    #[test]
    fn event_kind_mapping() {
        let e = Event::Timer(TimerEvent {
            timer_id: 1,
            firing: 1,
        });
        assert_eq!(e.kind(), EventKind::TimerExpiration);
        let e = Event::Overflow(OverflowEvent {
            port: 0,
            pkt_len: 0,
            q_bytes: 0,
            meta: [0; 4],
        });
        assert_eq!(e.kind(), EventKind::BufferOverflow);
    }

    #[test]
    fn codes_index_all_and_have_labels() {
        for (i, kind) in EventKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.code() as usize, i);
            assert_ne!(edp_telemetry::event_kind_label(kind.code()), "unknown");
        }
        assert_eq!(edp_telemetry::event_kind_label(13), "unknown");
    }

    #[test]
    fn counters_publish_to_registry() {
        let mut c = EventCounters::new();
        c.record(EventKind::BufferEnqueue);
        c.record(EventKind::BufferEnqueue);
        c.record(EventKind::TimerExpiration);
        let mut reg = edp_telemetry::Registry::new();
        c.publish(&mut reg, "sw0");
        assert_eq!(reg.counter("events_enqueue", "sw0"), 2);
        assert_eq!(reg.counter("events_timer", "sw0"), 1);
        assert_eq!(reg.counter("events_user", "sw0"), 0);
        assert_eq!(reg.counter("events_total", "sw0"), 3);
    }

    #[test]
    fn counters_cover() {
        let mut c = EventCounters::new();
        c.record(EventKind::BufferEnqueue);
        c.record(EventKind::BufferEnqueue);
        c.record(EventKind::TimerExpiration);
        assert_eq!(c.get(EventKind::BufferEnqueue), 2);
        assert_eq!(c.get(EventKind::UserEvent), 0);
        assert_eq!(c.covered().len(), 2);
        assert_eq!(c.total(), 3);
    }
}
