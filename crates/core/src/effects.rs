//! Static effect summaries: what an event program can *do to the wire*.
//!
//! The sharded engine (see `edp-netsim`) advances each shard in
//! conservative safe-horizon windows; the horizon exists only because a
//! handler firing *might* transmit a frame toward another shard. An
//! [`EffectSummary`] is the per-app certificate that bounds that
//! possibility: for every [`EventKind`] it gives a conservative
//! [`EmitFootprint`] — the set of ports on which handling an event of
//! that kind can cause a frame to leave the switch, closed over the
//! indirect paths (raised user events, generated/recirculated packets)
//! a handler can trigger.
//!
//! Summaries are *declared* in the [`AppManifest`] (closed-world apps
//! list their per-kind footprints; apps that declare nothing stay
//! open-world and certify nothing) and *cross-checked* by `edp-analyze`,
//! which drives the probe over every declared event and reports any
//! observed emission not covered by the declaration (lints EDP-W008 /
//! EDP-E007). The engine trusts only the declared, lint-checked closure:
//! an event kind whose closure footprint is [`EmitFootprint::None`]
//! cannot make a handler transmit, so events of that kind never need a
//! cross-shard rendezvous.

use crate::event::EventKind;
use crate::manifest::AppManifest;
use edp_pisa::PortId;
use std::collections::{BTreeMap, BTreeSet};

/// The ports on which handling one event can cause a frame to leave the
/// switch. Forms a join-semilattice under [`EmitFootprint::union`] with
/// `None` at the bottom and `Any` at the top; every analysis in this
/// module only ever moves footprints upward, which is what keeps the
/// summary conservative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmitFootprint {
    /// The handler provably cannot transmit.
    None,
    /// The handler can transmit only on these ports.
    Ports(BTreeSet<PortId>),
    /// The handler may transmit on any port (floods, or unknown).
    Any,
}

impl EmitFootprint {
    /// True when the footprint admits at least one transmission.
    pub fn can_emit(&self) -> bool {
        !matches!(self, EmitFootprint::None)
    }

    /// True when an emission on `port` is within this footprint.
    pub fn covers_port(&self, port: PortId) -> bool {
        match self {
            EmitFootprint::None => false,
            EmitFootprint::Ports(p) => p.contains(&port),
            EmitFootprint::Any => true,
        }
    }

    /// True when every emission allowed by `other` is allowed by `self`.
    pub fn covers(&self, other: &EmitFootprint) -> bool {
        match (self, other) {
            (_, EmitFootprint::None) => true,
            (EmitFootprint::Any, _) => true,
            (EmitFootprint::None, _) => false,
            (EmitFootprint::Ports(a), EmitFootprint::Ports(b)) => b.is_subset(a),
            (EmitFootprint::Ports(_), EmitFootprint::Any) => false,
        }
    }

    /// Least upper bound of two footprints.
    pub fn union(self, other: EmitFootprint) -> EmitFootprint {
        match (self, other) {
            (EmitFootprint::None, x) | (x, EmitFootprint::None) => x,
            (EmitFootprint::Any, _) | (_, EmitFootprint::Any) => EmitFootprint::Any,
            (EmitFootprint::Ports(mut a), EmitFootprint::Ports(b)) => {
                a.extend(b);
                EmitFootprint::Ports(a)
            }
        }
    }

    /// Footprint for a single port.
    pub fn port(p: PortId) -> EmitFootprint {
        EmitFootprint::Ports(std::iter::once(p).collect())
    }
}

impl std::fmt::Display for EmitFootprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmitFootprint::None => write!(f, "-"),
            EmitFootprint::Any => write!(f, "any"),
            EmitFootprint::Ports(p) => {
                let ports: Vec<String> = p.iter().map(|p| p.to_string()).collect();
                write!(f, "ports[{}]", ports.join(","))
            }
        }
    }
}

/// The per-app emission certificate, derived from an [`AppManifest`]'s
/// declarations by [`EffectSummary::from_manifest`].
///
/// An app that never called [`AppManifest::emits`] or
/// [`AppManifest::no_emissions`] is *open-world*: nothing is known, and
/// every closure footprint is [`EmitFootprint::Any`]. An app with a
/// declaration map is *closed-world*: kinds absent from the map are
/// declared emission-free, and `edp-analyze` treats any probed emission
/// outside the map as a contract violation (EDP-E007).
#[derive(Debug, Clone)]
pub struct EffectSummary {
    /// App name, as reported in diagnostics.
    pub app: &'static str,
    /// True when the manifest declared a (possibly empty) emission map.
    pub closed_world: bool,
    /// Declared direct per-kind footprints (closed-world apps only).
    pub declared: BTreeMap<EventKind, EmitFootprint>,
    /// The app may raise user events (manifest `raises_user_codes`).
    pub raises_user: bool,
    /// The app may generate packets (manifest `generates_packets`).
    pub generates: bool,
}

impl EffectSummary {
    /// Builds the summary from a manifest's declarations. Purely static:
    /// no probing, no traffic — this is the certificate the sharded
    /// engine loads at partition time, and `edp-analyze` is the pass that
    /// checks the declarations against observed behavior.
    pub fn from_manifest(m: &AppManifest) -> EffectSummary {
        EffectSummary {
            app: m.name,
            closed_world: m.emissions.is_some(),
            declared: m
                .emissions
                .as_ref()
                .map(|e| e.iter().cloned().collect())
                .unwrap_or_default(),
            raises_user: !m.raises_user_codes.is_empty(),
            generates: m.generates_packets,
        }
    }

    /// The *direct* declared footprint of one event kind: what the
    /// handler itself may transmit, before closing over indirect paths.
    pub fn direct(&self, kind: EventKind) -> EmitFootprint {
        if !self.closed_world {
            return EmitFootprint::Any;
        }
        self.declared
            .get(&kind)
            .cloned()
            .unwrap_or(EmitFootprint::None)
    }

    /// The union of every pipeline-entering kind's direct footprint.
    /// Once any packet pipeline pass starts, a conservative analysis must
    /// assume the whole pipeline family is reachable: a pass may set
    /// `Destination::Recirculate`, and un-overridden recirculated /
    /// generated handlers *fall through to `on_ingress`*, so the three
    /// entry kinds are mutually reachable.
    fn pipeline_footprint(&self) -> EmitFootprint {
        self.direct(EventKind::IngressPacket)
            .union(self.direct(EventKind::RecirculatedPacket))
            .union(self.direct(EventKind::GeneratedPacket))
    }

    /// The footprint of one event kind *closed over* everything handling
    /// it can trigger: a handler that raises user events inherits the
    /// user-event footprint, and any path that can start a packet
    /// pipeline pass — the app generates packets, or `kind` is itself a
    /// pipeline kind (which may recirculate) — inherits the whole
    /// [pipeline footprint](Self::pipeline_footprint). One union reaches
    /// the fixed point: user handlers have no packet metadata so they
    /// cannot recirculate, and the raise/generate flags are app-global,
    /// so the folded-in footprints' own cascades add nothing beyond the
    /// union.
    pub fn closure(&self, kind: EventKind) -> EmitFootprint {
        if !self.closed_world {
            return EmitFootprint::Any;
        }
        let mut acc = self.direct(kind);
        if self.raises_user {
            acc = acc.union(self.direct(EventKind::UserEvent));
        }
        let pipeline_kind = matches!(
            kind,
            EventKind::IngressPacket | EventKind::RecirculatedPacket | EventKind::GeneratedPacket
        );
        if self.generates || pipeline_kind {
            acc = acc.union(self.pipeline_footprint());
        }
        acc
    }

    /// True when firing a timer provably cannot transmit a frame — the
    /// certificate that lets the sharded engine classify this switch's
    /// timer cranks as local and extend the safe horizon past them.
    pub fn timer_local(&self) -> bool {
        !self.closure(EventKind::TimerExpiration).can_emit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ports(ps: &[PortId]) -> EmitFootprint {
        EmitFootprint::Ports(ps.iter().copied().collect())
    }

    #[test]
    fn footprint_lattice_union_and_covers() {
        assert_eq!(
            EmitFootprint::None.union(ports(&[1])),
            ports(&[1]),
            "None is the identity"
        );
        assert_eq!(ports(&[1]).union(ports(&[2])), ports(&[1, 2]));
        assert_eq!(ports(&[1]).union(EmitFootprint::Any), EmitFootprint::Any);
        assert!(EmitFootprint::Any.covers(&ports(&[7])));
        assert!(ports(&[1, 2]).covers(&ports(&[2])));
        assert!(!ports(&[1]).covers(&ports(&[2])));
        assert!(!EmitFootprint::None.covers(&ports(&[1])));
        assert!(ports(&[1]).covers(&EmitFootprint::None));
        assert!(!ports(&[1]).covers(&EmitFootprint::Any));
        assert!(ports(&[3]).covers_port(3));
        assert!(!EmitFootprint::None.can_emit());
    }

    #[test]
    fn open_world_certifies_nothing() {
        let m = AppManifest::new("open").handles([EventKind::TimerExpiration]);
        let s = EffectSummary::from_manifest(&m);
        assert!(!s.closed_world);
        assert_eq!(s.closure(EventKind::TimerExpiration), EmitFootprint::Any);
        assert!(!s.timer_local());
    }

    #[test]
    fn closed_world_defaults_absent_kinds_to_no_emission() {
        let m = AppManifest::new("closed")
            .handles([EventKind::IngressPacket, EventKind::TimerExpiration])
            .emits(EventKind::IngressPacket, EmitFootprint::Any);
        let s = EffectSummary::from_manifest(&m);
        assert!(s.closed_world);
        assert_eq!(s.direct(EventKind::TimerExpiration), EmitFootprint::None);
        assert!(s.timer_local());
    }

    #[test]
    fn closure_folds_in_user_and_generated_paths() {
        let m = AppManifest::new("cascade")
            .raises([42])
            .generates()
            .emits(EventKind::UserEvent, EmitFootprint::port(2))
            .emits(EventKind::GeneratedPacket, EmitFootprint::port(3))
            .emits(EventKind::TimerExpiration, EmitFootprint::None);
        let s = EffectSummary::from_manifest(&m);
        // The timer raises nothing directly, but the app's user/generated
        // paths make its closure footprint ports {2, 3}.
        assert_eq!(s.closure(EventKind::TimerExpiration), ports(&[2, 3]));
        assert!(!s.timer_local());
    }

    #[test]
    fn pipeline_kinds_inherit_each_others_footprints() {
        // An ingress handler may recirculate, and the recirculated pass
        // may emit — so closure(Ingress) must cover the recirculated
        // footprint even when direct(Ingress) declares nothing.
        let m = AppManifest::new("recirc")
            .handles([EventKind::IngressPacket, EventKind::RecirculatedPacket])
            .emits(EventKind::RecirculatedPacket, EmitFootprint::port(4));
        let s = EffectSummary::from_manifest(&m);
        assert_eq!(s.closure(EventKind::IngressPacket), ports(&[4]));
        // Non-pipeline kinds of a non-generating app stay clean.
        assert_eq!(s.closure(EventKind::TimerExpiration), EmitFootprint::None);
        assert!(s.timer_local());
    }

    #[test]
    fn no_emissions_declares_the_empty_closed_world() {
        let m = AppManifest::new("pure").no_emissions();
        let s = EffectSummary::from_manifest(&m);
        assert!(s.closed_world);
        assert!(s.timer_local());
        for k in EventKind::ALL {
            assert_eq!(s.closure(k), EmitFootprint::None);
        }
    }
}
