//! Shared-state hazard detection over the access matrix (paper §4).
//!
//! The hardware reality the paper confronts: pipeline stages own
//! *single-ported* SRAM. A register written from more than one handler
//! context needs either a port per writer (low-line-rate multiported
//! realization) or an aggregation register in front (Figure 3). A plain
//! register with multiple writer contexts is therefore flagged, as is a
//! read-modify-write cycle that spans handlers (its read can be torn by
//! the other context's interleaved write).

use crate::access::{port_class, AccessMatrix};
use crate::diag::{Diagnostic, LintCode};

/// Runs the hazard lints over one app's access matrix.
///
/// Writer multiplicity is counted per §4 *port class*, not per handler:
/// ingress and generated-packet handlers both run in the packet pipeline
/// and legally share its register port, so writes from the two are one
/// writer. Writes from, say, an enqueue handler and a dequeue handler
/// land on different ports of the same stage — that is the violation.
pub fn check(app: &str, matrix: &AccessMatrix) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (register, cols) in &matrix.rows {
        // Aggregated registers funnel event-side writes through per-
        // context aggregation arrays; multi-context writes are the
        // design (the merge-op lints police their correctness instead).
        if matrix.aggregated.contains(register) {
            continue;
        }
        // Telemetry mirrors (the `tele:` prefix) observe the data path
        // from any handler context by design; they are not program state
        // contended over SRAM ports, so W001/W002 do not apply.
        if edp_telemetry::is_telemetry_register(register) {
            continue;
        }
        let writers = matrix.writer_contexts(register);
        let writer_classes: std::collections::BTreeSet<&'static str> =
            writers.iter().map(|w| port_class(w)).collect();
        if writer_classes.len() >= 2 {
            out.push(Diagnostic {
                code: LintCode::MultiWriterRegister,
                app: app.to_string(),
                subject: register.clone(),
                message: format!(
                    "written from {} handler contexts ({}) spanning port \
                     classes {{{}}} with no aggregation register in front; a \
                     single-ported realization cannot serve them (§4) — front \
                     it with an AggregatedState or allow it as an intentional \
                     multiported register",
                    writers.len(),
                    writers.join(", "),
                    writer_classes
                        .iter()
                        .copied()
                        .collect::<Vec<_>>()
                        .join(", "),
                ),
            });
        }
        for (ctx, cell) in cols {
            if cell.rmws == 0 {
                continue;
            }
            let other_writers: Vec<&str> = writers
                .iter()
                .copied()
                .filter(|w| port_class(w) != port_class(ctx))
                .collect();
            if !other_writers.is_empty() {
                out.push(Diagnostic {
                    code: LintCode::CrossHandlerRmw,
                    app: app.to_string(),
                    subject: register.clone(),
                    message: format!(
                        "read-modify-written in `{ctx}` while also written from \
                         {}; the RMW's read can be torn by the interleaved \
                         write unless the updates commute",
                        other_writers.join(", "),
                    ),
                });
                break; // one W002 per register is enough signal
            }
        }
    }
    for (register, claimed, actual) in &matrix.claim_mismatches {
        out.push(Diagnostic {
            code: LintCode::AccessorMismatch,
            app: app.to_string(),
            subject: register.clone(),
            message: format!(
                "access claimed Accessor::{claimed} but ran in a {actual} \
                 handler context; port accounting (§4 resource model) is \
                 miscounted"
            ),
        });
    }
    if !matrix.panics.is_empty() {
        for (ctx, msg) in &matrix.panics {
            out.push(Diagnostic {
                code: LintCode::ProbePanic,
                app: app.to_string(),
                subject: (*ctx).to_string(),
                message: format!("handler panicked under synthetic probe: {msg}"),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessCell;

    fn cell(reads: u64, writes: u64, rmws: u64) -> AccessCell {
        AccessCell {
            reads,
            writes,
            rmws,
        }
    }

    #[test]
    fn multi_writer_flagged_unless_aggregated() {
        let mut m = AccessMatrix::default();
        m.rows
            .entry("occ".into())
            .or_default()
            .insert("enqueue", cell(0, 0, 1));
        m.rows
            .entry("occ".into())
            .or_default()
            .insert("dequeue", cell(0, 0, 1));
        let diags = check("app", &m);
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::MultiWriterRegister));
        assert!(diags.iter().any(|d| d.code == LintCode::CrossHandlerRmw));

        m.aggregated.insert("occ".into());
        assert!(
            check("app", &m).is_empty(),
            "aggregated registers are exempt"
        );
    }

    #[test]
    fn telemetry_registers_exempt_from_w001_w002() {
        // A telemetry mirror written from two handler contexts (and
        // RMW'd cross-context) must raise nothing: it observes the data
        // path, it is not contended program state.
        let mut m = AccessMatrix::default();
        m.rows
            .entry("tele:rx_mirror".into())
            .or_default()
            .insert("enqueue", cell(0, 0, 1));
        m.rows
            .entry("tele:rx_mirror".into())
            .or_default()
            .insert("dequeue", cell(0, 0, 1));
        assert!(
            check("app", &m).is_empty(),
            "telemetry-prefixed registers are exempt"
        );
        // The same shape under a program-state name still fires both.
        let mut m = AccessMatrix::default();
        m.rows
            .entry("rx_mirror".into())
            .or_default()
            .insert("enqueue", cell(0, 0, 1));
        m.rows
            .entry("rx_mirror".into())
            .or_default()
            .insert("dequeue", cell(0, 0, 1));
        let diags = check("app", &m);
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::MultiWriterRegister));
        assert!(diags.iter().any(|d| d.code == LintCode::CrossHandlerRmw));
    }

    #[test]
    fn same_port_class_writers_clean() {
        // Ingress and generated-packet handlers both run in the packet
        // pipeline: one port class, no violation.
        let mut m = AccessMatrix::default();
        m.rows
            .entry("cnt".into())
            .or_default()
            .insert("ingress", cell(1, 0, 2));
        m.rows
            .entry("cnt".into())
            .or_default()
            .insert("generated", cell(0, 3, 0));
        assert!(check("app", &m).is_empty());
    }

    #[test]
    fn single_writer_clean() {
        let mut m = AccessMatrix::default();
        m.rows
            .entry("r".into())
            .or_default()
            .insert("ingress", cell(2, 1, 3));
        m.rows
            .entry("r".into())
            .or_default()
            .insert("timer", cell(5, 0, 0));
        assert!(
            check("app", &m).is_empty(),
            "reads from other contexts are fine"
        );
    }

    #[test]
    fn claim_mismatch_flagged() {
        let mut m = AccessMatrix::default();
        m.claim_mismatches.push(("r".into(), "packet", "enqueue"));
        let diags = check("app", &m);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::AccessorMismatch);
    }
}
