//! Event-coverage lints: handlers that can never fire, and raised
//! user-events nothing handles.
//!
//! The analyzer cross-references the manifest's declared handler set
//! against what the deployment can actually raise (armed timers, probed
//! generation paths) and what probing observed the program raising.

use crate::access::AccessMatrix;
use crate::diag::{Diagnostic, LintCode};
use edp_core::{AppManifest, EventKind};
use std::collections::BTreeSet;

/// Runs the coverage lints for one app.
pub fn check(app: &str, manifest: &AppManifest, matrix: &AccessMatrix) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Raisable user-event codes: declared by the manifest plus whatever
    // the synthetic probes observed being raised.
    let raised: BTreeSet<u32> = manifest
        .raises_user_codes
        .iter()
        .copied()
        .chain(matrix.raised_user_codes.iter().copied())
        .collect();

    // W005: handler registered for an event this deployment never raises.
    if manifest.implements(EventKind::TimerExpiration) && manifest.timer_ids.is_empty() {
        out.push(Diagnostic {
            code: LintCode::UnraisableEventHandler,
            app: app.to_string(),
            subject: "timer-expiration".to_string(),
            message: "handles TimerExpiration but the deployment arms no \
                      timer; the handler is dead code"
                .to_string(),
        });
    }
    if manifest.implements(EventKind::UserEvent)
        && manifest.handles_user_codes.is_empty()
        && raised.is_empty()
    {
        out.push(Diagnostic {
            code: LintCode::UnraisableEventHandler,
            app: app.to_string(),
            subject: "user-event".to_string(),
            message: "handles UserEvent but declares no understood codes and \
                      nothing raises one; the handler is dead code"
                .to_string(),
        });
    }
    if manifest.implements(EventKind::GeneratedPacket)
        && !manifest.generates_packets
        && !matrix.generated_packets
    {
        out.push(Diagnostic {
            code: LintCode::UnraisableEventHandler,
            app: app.to_string(),
            subject: "generated-packet".to_string(),
            message: "handles GeneratedPacket but neither the manifest nor \
                      probing shows the program generating packets; the \
                      handler is dead code"
                .to_string(),
        });
    }

    // W006: a raisable user-event code no handler understands.
    let handles_user = manifest.implements(EventKind::UserEvent);
    for code in raised {
        let understood = handles_user
            && (manifest.handles_user_codes.is_empty()
                || manifest.handles_user_codes.contains(&code));
        if !understood {
            out.push(Diagnostic {
                code: LintCode::UnhandledUserEvent,
                app: app.to_string(),
                subject: code.to_string(),
                message: if handles_user {
                    format!(
                        "user-event code {code} is raised but the UserEvent \
                         handler only understands {:?}",
                        manifest.handles_user_codes
                    )
                } else {
                    format!(
                        "user-event code {code} is raised but the program has \
                         no UserEvent handler; the event is dropped"
                    )
                },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_timer_handler_flagged() {
        let m = AppManifest::new("t").handles([EventKind::TimerExpiration]);
        let diags = check("t", &m, &AccessMatrix::default());
        assert!(
            diags
                .iter()
                .any(|d| d.code == LintCode::UnraisableEventHandler
                    && d.subject == "timer-expiration")
        );
        let armed = AppManifest::new("t")
            .handles([EventKind::TimerExpiration])
            .timers([0]);
        assert!(check("t", &armed, &AccessMatrix::default()).is_empty());
    }

    #[test]
    fn unhandled_user_event_flagged() {
        let m = AppManifest::new("t").raises([7]);
        let diags = check("t", &m, &AccessMatrix::default());
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::UnhandledUserEvent && d.subject == "7"));
    }

    #[test]
    fn probed_raise_counts_too() {
        let m = AppManifest::new("t");
        let mut matrix = AccessMatrix::default();
        matrix.raised_user_codes.insert(9);
        let diags = check("t", &m, &matrix);
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::UnhandledUserEvent && d.subject == "9"));
    }

    #[test]
    fn handled_code_clean() {
        let m = AppManifest::new("t")
            .handles([EventKind::UserEvent])
            .user_codes([7])
            .raises([7]);
        assert!(check("t", &m, &AccessMatrix::default()).is_empty());
    }
}
