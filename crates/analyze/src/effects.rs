//! Effect-summary cross-check: observed emissions vs the declared
//! closed world (lints `EDP-W008` / `EDP-E007`), plus the per-app
//! effect report `edp_lint --effects` renders.
//!
//! The static side is [`EffectSummary::from_manifest`]: the manifest's
//! per-kind emission declarations closed over indirect paths (raised
//! user events, generated/recirculated packets). The dynamic side is
//! the probe pass ([`crate::access::extract`]): every frame-routing
//! decision a handler or its cascade made, attributed to the *entry*
//! kind that started the cascade — the same attribution the sharded
//! engine's certificate-aware horizon relies on when it classifies
//! pending events as certified-local. The check is one subset relation
//! per entry kind:
//!
//! ```text
//! observed(K)  ⊆  closure(K)
//! ```
//!
//! For an open-world app (no emission declarations) `closure(K)` is
//! `Any`, so nothing can be violated — but every observed emission is
//! an [`EDP-W008`](crate::LintCode::UndeclaredEmission) nudge to close
//! the world. For a closed-world app, an uncovered observation is an
//! [`EDP-E007`](crate::LintCode::SummaryViolation) error: the engine
//! *spends* these summaries to skip cross-shard rendezvous, so a wrong
//! declaration breaks determinism, not style.

use crate::access::AccessMatrix;
use crate::diag::{Diagnostic, LintCode};
use edp_core::{AppManifest, EffectSummary, EmitFootprint, EventKind};

/// One row of the effects report: an event kind's observed, declared,
/// and closure footprints side by side.
#[derive(Debug, Clone)]
pub struct EffectRow {
    /// The entry event kind.
    pub kind: EventKind,
    /// What probing observed the kind's cascade emit.
    pub observed: EmitFootprint,
    /// The manifest's direct declaration for the kind.
    pub declared: EmitFootprint,
    /// The declaration closed over raise/generate/recirculate paths —
    /// what the engine actually trusts.
    pub closure: EmitFootprint,
}

/// The per-app effects report behind `edp_lint --effects`.
#[derive(Debug, Clone)]
pub struct EffectReport {
    /// App name.
    pub app: String,
    /// True when the manifest declares a (possibly empty) emission map.
    pub closed_world: bool,
    /// True when the app's timer cascade provably cannot emit — the
    /// certificate the sharded engine spends on timer cranks.
    pub timer_local: bool,
    /// One row per kind the app handles or was observed emitting under.
    pub rows: Vec<EffectRow>,
}

/// Builds the effects report for one app: the static summary evaluated
/// at every relevant kind, with the probe's observations joined in.
pub fn report(manifest: &AppManifest, matrix: &AccessMatrix) -> EffectReport {
    let summary = EffectSummary::from_manifest(manifest);
    let mut kinds: Vec<EventKind> = manifest.handlers.clone();
    for k in matrix.observed_emissions.keys() {
        if !kinds.contains(k) {
            kinds.push(*k);
        }
    }
    kinds.sort_by_key(|k| k.code());
    kinds.dedup();
    let rows = kinds
        .into_iter()
        .map(|kind| EffectRow {
            kind,
            observed: matrix
                .observed_emissions
                .get(&kind)
                .cloned()
                .unwrap_or(EmitFootprint::None),
            declared: summary.direct(kind),
            closure: summary.closure(kind),
        })
        .collect();
    EffectReport {
        app: manifest.name.to_string(),
        closed_world: summary.closed_world,
        timer_local: summary.timer_local(),
        rows,
    }
}

/// The observed ⊆ declared emission cross-check.
pub fn check(app: &str, manifest: &AppManifest, matrix: &AccessMatrix) -> Vec<Diagnostic> {
    let summary = EffectSummary::from_manifest(manifest);
    let mut out = Vec::new();
    for (kind, observed) in &matrix.observed_emissions {
        if !observed.can_emit() {
            continue;
        }
        if !summary.closed_world {
            out.push(Diagnostic {
                code: LintCode::UndeclaredEmission,
                app: app.to_string(),
                subject: kind.name().to_string(),
                message: format!(
                    "probing observed the {} cascade emit {observed} but the app \
                     declares no emission map; the sharded engine must treat every \
                     event as horizon-bound — declare emits()/no_emissions() to \
                     certify locality",
                    kind.name()
                ),
            });
            continue;
        }
        let closure = summary.closure(*kind);
        if !closure.covers(observed) {
            out.push(Diagnostic {
                code: LintCode::SummaryViolation,
                app: app.to_string(),
                subject: kind.name().to_string(),
                message: format!(
                    "probing observed the {} cascade emit {observed}, outside the \
                     declared closure {closure}; the engine would certify events \
                     this app in fact publishes on — fix the emits() declaration",
                    kind.name()
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::extract;
    use edp_core::event::TimerEvent;
    use edp_core::{EventActions, EventProgram};
    use edp_evsim::SimTime;
    use edp_packet::{Packet, ParsedPacket};
    use edp_pisa::{Destination, StdMeta};

    /// Forwards every packet to port 1; the timer quietly generates a
    /// frame that the generated pass then also routes to port 1.
    struct TimerEmitter;
    impl EventProgram for TimerEmitter {
        fn on_ingress(
            &mut self,
            _pkt: &mut Packet,
            _parsed: &ParsedPacket,
            meta: &mut StdMeta,
            _now: SimTime,
            _a: &mut EventActions,
        ) {
            meta.dest = Destination::Port(1);
        }
        fn on_timer(&mut self, _ev: &TimerEvent, _now: SimTime, a: &mut EventActions) {
            a.generate_packet(
                edp_packet::PacketBuilder::udp(
                    std::net::Ipv4Addr::new(10, 0, 0, 9),
                    std::net::Ipv4Addr::new(10, 0, 0, 10),
                    9,
                    9,
                    &[],
                )
                .build(),
            );
        }
    }

    fn manifest_open() -> AppManifest {
        AppManifest::new("emitter").handles([EventKind::IngressPacket, EventKind::TimerExpiration])
    }

    #[test]
    fn open_world_emission_warns_w008() {
        let mut p = TimerEmitter;
        let m = manifest_open();
        let matrix = extract(&mut p, &m);
        // The timer's generated frame routed via the generated pass is
        // attributed to the timer entry.
        assert!(matrix
            .observed_emissions
            .get(&EventKind::TimerExpiration)
            .is_some_and(|f| f.can_emit()));
        let diags = check("emitter", &m, &matrix);
        assert!(diags.iter().any(|d| d.code == LintCode::UndeclaredEmission));
        assert!(!diags.iter().any(|d| d.code == LintCode::SummaryViolation));
    }

    #[test]
    fn closed_world_violation_errors_e007() {
        // Declares a silent timer while the timer cascade in fact emits.
        let m = manifest_open().emits(EventKind::IngressPacket, EmitFootprint::port(1));
        let mut p = TimerEmitter;
        let matrix = extract(&mut p, &m);
        let diags = check("emitter", &m, &matrix);
        assert!(
            diags.iter().any(|d| d.code == LintCode::SummaryViolation
                && d.subject == EventKind::TimerExpiration.name()),
            "expected EDP-E007 on the timer entry, got {diags:?}"
        );
    }

    #[test]
    fn honest_declaration_is_clean_and_reported() {
        // `.generates()` folds the pipeline footprint into the timer
        // closure, covering the observed generated-frame emission.
        let m = manifest_open()
            .generates()
            .emits(EventKind::IngressPacket, EmitFootprint::port(1))
            .emits(EventKind::GeneratedPacket, EmitFootprint::port(1));
        let mut p = TimerEmitter;
        let matrix = extract(&mut p, &m);
        assert!(check("emitter", &m, &matrix).is_empty());
        let rep = report(&m, &matrix);
        assert!(rep.closed_world);
        assert!(!rep.timer_local, "a generating app cannot certify timers");
        let timer_row = rep
            .rows
            .iter()
            .find(|r| r.kind == EventKind::TimerExpiration)
            .expect("timer row");
        assert!(timer_row.observed.can_emit());
        assert_eq!(timer_row.declared, EmitFootprint::None);
        assert!(timer_row.closure.can_emit());
    }
}
