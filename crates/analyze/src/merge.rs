//! Algebraic checking of aggregation merge/fold ops.
//!
//! Idle-cycle folding (§4, Figure 3) applies parked updates in FIFO
//! order over dirty slots — an order the program does not control, and
//! one that interleaves enqueue-side and dequeue-side updates
//! arbitrarily. Folding is therefore only correct when the merge op is
//! **commutative** and **associative** with the declared **identity** as
//! its no-op element: then every fold order computes the same value.
//!
//! The checker probes all three laws on an exhaustive small domain
//! (boundary values where saturation/overflow misbehavior lives) plus a
//! seeded randomized sweep, reporting the first counterexample verbatim.

use crate::diag::{Diagnostic, LintCode};
use edp_core::MergeOp;

/// Boundary-heavy exhaustive domain: algebraic violations of practical
/// ops (saturating/wrapping arithmetic, subtraction, averages) almost
/// always have a witness among small values and values near `u64::MAX`.
const SMALL_DOMAIN: [u64; 10] = [0, 1, 2, 3, 5, 7, 100, 1 << 32, u64::MAX - 1, u64::MAX];

/// How many seeded random triples to probe beyond the exhaustive domain.
const RANDOM_TRIPLES: usize = 512;

/// splitmix64: tiny deterministic generator for the randomized sweep
/// (seeded, so failures reproduce bit-for-bit).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Checks one merge op's three laws; returns a diagnostic per violated
/// law, each carrying the first counterexample found.
pub fn check(app: &str, op: &MergeOp, seed: u64) -> Vec<Diagnostic> {
    let f = op.apply;
    let mut commut: Option<(u64, u64)> = None;
    let mut assoc: Option<(u64, u64, u64)> = None;
    let mut ident: Option<u64> = None;

    let mut visit_pair = |a: u64, b: u64| {
        if commut.is_none() && f(a, b) != f(b, a) {
            commut = Some((a, b));
        }
    };
    let mut visit_triple = |a: u64, b: u64, c: u64| {
        if assoc.is_none() && f(f(a, b), c) != f(a, f(b, c)) {
            assoc = Some((a, b, c));
        }
    };
    let mut visit_identity = |x: u64| {
        if ident.is_none() && (f(op.identity, x) != x || f(x, op.identity) != x) {
            ident = Some(x);
        }
    };

    // Exhaustive small domain: every pair and triple.
    for &a in &SMALL_DOMAIN {
        visit_identity(a);
        for &b in &SMALL_DOMAIN {
            visit_pair(a, b);
            for &c in &SMALL_DOMAIN {
                visit_triple(a, b, c);
            }
        }
    }
    // Seeded randomized probing across the full u64 range.
    let mut state = seed ^ 0xEDB0_0157_0000_0000;
    for _ in 0..RANDOM_TRIPLES {
        let (a, b, c) = (
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        );
        visit_identity(a);
        visit_pair(a, b);
        visit_triple(a, b, c);
    }

    let mut out = Vec::new();
    if let Some((a, b)) = commut {
        out.push(Diagnostic {
            code: LintCode::MergeNotCommutative,
            app: app.to_string(),
            subject: op.name.to_string(),
            message: format!(
                "op({a}, {b}) = {} but op({b}, {a}) = {}; fold reordering \
                 between handler contexts changes results",
                f(a, b),
                f(b, a),
            ),
        });
    }
    if let Some((a, b, c)) = assoc {
        out.push(Diagnostic {
            code: LintCode::MergeNotAssociative,
            app: app.to_string(),
            subject: op.name.to_string(),
            message: format!(
                "op(op({a}, {b}), {c}) = {} but op({a}, op({b}, {c})) = {}; \
                 fold grouping changes results",
                f(f(a, b), c),
                f(a, f(b, c)),
            ),
        });
    }
    if let Some(x) = ident {
        out.push(Diagnostic {
            code: LintCode::MergeBadIdentity,
            app: app.to_string(),
            subject: op.name.to_string(),
            message: format!(
                "declared identity {} is not a no-op: op(id, {x}) = {}, \
                 op({x}, id) = {}; freshly-zeroed aggregation slots corrupt \
                 the fold",
                op.identity,
                f(op.identity, x),
                f(x, op.identity),
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edp_core::aggreg::{MERGE_ADD, MERGE_MAX, MERGE_MIN, MERGE_OR};

    #[test]
    fn builtin_ops_are_lawful() {
        for op in [MERGE_ADD, MERGE_MAX, MERGE_MIN, MERGE_OR] {
            let diags = check("t", &op, 42);
            assert!(diags.is_empty(), "{}: {:?}", op.name, diags);
        }
    }

    #[test]
    fn saturating_sub_fails_commutativity() {
        fn sub(a: u64, b: u64) -> u64 {
            a.saturating_sub(b)
        }
        let op = MergeOp {
            name: "sat-sub",
            identity: 0,
            apply: sub,
        };
        let diags = check("t", &op, 42);
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::MergeNotCommutative));
    }

    #[test]
    fn average_fails_associativity() {
        fn avg(a: u64, b: u64) -> u64 {
            a / 2 + b / 2
        }
        let op = MergeOp {
            name: "avg",
            identity: 0,
            apply: avg,
        };
        let diags = check("t", &op, 42);
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::MergeNotAssociative));
    }

    #[test]
    fn wrong_identity_detected() {
        fn max(a: u64, b: u64) -> u64 {
            a.max(b)
        }
        let op = MergeOp {
            name: "max-bad-id",
            identity: u64::MAX, // max's identity is 0, not MAX
            apply: max,
        };
        let diags = check("t", &op, 42);
        assert!(diags.iter().any(|d| d.code == LintCode::MergeBadIdentity));
    }
}
