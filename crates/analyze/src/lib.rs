//! `edp-analyze`: static hazard/lint analysis for event programs,
//! shared state, and match tables.
//!
//! The analyzer answers, *without simulating traffic*, the questions the
//! paper's §4 resource argument raises about any deployed event program:
//!
//! 1. **Access matrix + hazards** ([`access`], [`hazard`]) — a recording
//!    probe exercises each declared handler once with synthetic inputs
//!    and derives the handler-context × register read/write matrix, then
//!    flags plain registers written from multiple contexts (`EDP-W001`),
//!    RMW cycles spanning handlers (`EDP-W002`), accessor-claim
//!    mismatches (`EDP-W007`), and handlers that panic under probe
//!    (`EDP-E005`).
//! 2. **Merge-op algebra** ([`merge`]) — registered fold ops are probed
//!    for commutativity, associativity, and identity over an exhaustive
//!    boundary domain plus a seeded random sweep (`EDP-E001/E003/E004`).
//! 3. **Table rules** ([`tables`]) — shadowed entries (`EDP-E002`),
//!    duplicate LPM prefixes (`EDP-W003`), missing defaults
//!    (`EDP-W004`).
//! 4. **Event coverage** ([`coverage`]) — dead handlers (`EDP-W005`) and
//!    raised-but-unhandled user events (`EDP-W006`).
//! 5. **Effect summaries** ([`effects`]) — observed emissions are
//!    cross-checked against the manifest's declared closed world:
//!    emissions with no declaration at all (`EDP-W008`) and emissions
//!    outside the declared closure (`EDP-E007`), the certificate the
//!    sharded engine spends to skip cross-shard rendezvous.
//!
//! Findings are [`diag::Diagnostic`]s with stable codes; an app's
//! [`AppManifest`] can `allow` individual `(code, subject)` pairs with a
//! recorded reason, which moves the finding to the report's `allowed`
//! list instead of silencing it. The `edp_lint` binary runs the whole
//! catalog over every registered app and gates CI via `--deny warnings`.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod coverage;
pub mod diag;
pub mod effects;
pub mod hazard;
pub mod merge;
pub mod tables;

pub use access::{AccessCell, AccessMatrix};
pub use diag::{Diagnostic, LintCode, Report, Severity};
pub use effects::{EffectReport, EffectRow};

use edp_core::{AppManifest, EventProgram};

/// Default seed for the randomized merge-op sweep; any fixed value keeps
/// CI deterministic, and `edp_lint --seed` overrides it.
pub const DEFAULT_SEED: u64 = 0xED9_A11A;

/// Runs the full lint catalog over one program + manifest pair.
///
/// Probes the program's declared handlers to build the access matrix,
/// then runs every analysis family and partitions the findings against
/// the manifest's allow list.
pub fn lint_app(program: &mut dyn EventProgram, manifest: &AppManifest, seed: u64) -> Report {
    let matrix = access::extract(program, manifest);
    let mut raw = hazard::check(manifest.name, &matrix);
    for op in &manifest.merge_ops {
        raw.extend(merge::check(manifest.name, op, seed));
    }
    for shape in &manifest.tables {
        raw.extend(tables::check(manifest.name, shape));
    }
    raw.extend(coverage::check(manifest.name, manifest, &matrix));
    raw.extend(effects::check(manifest.name, manifest, &matrix));
    Report::from_findings(raw, &manifest.allows)
}

/// Probes one program and renders its effect report (the `--effects`
/// view): observed vs declared vs closure footprints per event kind.
pub fn effect_report(program: &mut dyn EventProgram, manifest: &AppManifest) -> EffectReport {
    let matrix = access::extract(program, manifest);
    effects::report(manifest, &matrix)
}
