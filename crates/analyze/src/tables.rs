//! Match-table rule analysis over action-erased [`TableShape`]s.
//!
//! Purely static: shadowed entries (a higher-precedence entry covers the
//! whole match set, so the entry can never win), duplicate LPM prefixes
//! (first-install-wins makes the later one unreachable), and missing
//! default actions (no catch-all, so lookups can miss). Cover testing is
//! conservative — a diagnostic is only emitted when shadowing is
//! *provable* field-by-field, never on a heuristic.

use crate::diag::{Diagnostic, LintCode};
use edp_pisa::{FieldMatch, MatchKind, ShapeEntry, TableShape};

/// True when `a`'s match set provably contains `b`'s for one field.
fn field_covers(kind: MatchKind, a: &FieldMatch, b: &FieldMatch) -> bool {
    if field_is_wildcard(kind, a) {
        return true;
    }
    match (a, b) {
        (FieldMatch::Exact(va), FieldMatch::Exact(vb)) => va == vb,
        (
            FieldMatch::Lpm {
                value: va,
                prefix_len: pa,
            },
            FieldMatch::Lpm {
                value: vb,
                prefix_len: pb,
            },
        ) => {
            let MatchKind::Lpm { width } = kind else {
                return false;
            };
            if pa > pb {
                return false; // longer prefix matches fewer keys
            }
            if *pa == 0 {
                return true;
            }
            let shift = width as u32 - *pa as u32;
            (va >> shift) == (vb >> shift)
        }
        (
            FieldMatch::Ternary {
                value: va,
                mask: ma,
            },
            FieldMatch::Ternary {
                value: vb,
                mask: mb,
            },
        ) => ma & !mb == 0 && (va ^ vb) & ma == 0,
        (FieldMatch::Ternary { value, mask }, FieldMatch::Exact(vb)) => vb & mask == value & mask,
        (FieldMatch::Range { lo, hi }, FieldMatch::Range { lo: lo2, hi: hi2 }) => {
            lo <= lo2 && hi2 <= hi
        }
        (FieldMatch::Range { lo, hi }, FieldMatch::Exact(v)) => (*lo..=*hi).contains(v),
        _ => false,
    }
}

/// True when the field match accepts every key value.
fn field_is_wildcard(kind: MatchKind, f: &FieldMatch) -> bool {
    match f {
        FieldMatch::Any => true,
        FieldMatch::Ternary { mask: 0, .. } => true,
        FieldMatch::Range { lo: 0, hi } => *hi == u64::MAX,
        FieldMatch::Lpm { prefix_len: 0, .. } => matches!(kind, MatchKind::Lpm { .. }),
        _ => false,
    }
}

/// Sum of matched LPM bits — the scan path's tie-break among
/// equal-priority matches.
fn lpm_bits(e: &ShapeEntry) -> i64 {
    e.fields
        .iter()
        .map(|f| match f {
            FieldMatch::Lpm { prefix_len, .. } => *prefix_len as i64,
            _ => 0,
        })
        .sum()
}

/// True when entry `a` provably covers entry `b` on every field.
fn entry_covers(schema: &[MatchKind], a: &ShapeEntry, b: &ShapeEntry) -> bool {
    schema
        .iter()
        .zip(a.fields.iter().zip(&b.fields))
        .all(|(&kind, (fa, fb))| field_covers(kind, fa, fb))
}

/// True for the single-field LPM-with-uniform-priority shape that the
/// table's bucket index serves; prefix-length precedence applies there,
/// so shadowing reduces to duplicate prefixes.
fn is_uniform_lpm(shape: &TableShape) -> bool {
    matches!(shape.schema[..], [MatchKind::Lpm { .. }])
        && shape
            .entries
            .iter()
            .all(|e| matches!(e.fields[0], FieldMatch::Lpm { .. }))
        && shape
            .entries
            .windows(2)
            .all(|w| w[0].priority == w[1].priority)
}

/// Runs the table lints over one table snapshot.
pub fn check(app: &str, shape: &TableShape) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if shape.schema.is_empty() || shape.entries.is_empty() {
        return out;
    }
    let all_exact = shape.schema.iter().all(|k| matches!(k, MatchKind::Exact));
    if all_exact {
        // A non-exact entry in an all-exact table demotes the hash index
        // to a linear scan at runtime; flag each offending entry (E006).
        for (j, e) in shape.entries.iter().enumerate() {
            if let Some(field) = e
                .fields
                .iter()
                .position(|f| !matches!(f, FieldMatch::Exact(_)))
            {
                out.push(Diagnostic {
                    code: LintCode::NonExactInExactTable,
                    app: app.to_string(),
                    subject: format!("{}#{}", shape.name, j),
                    message: format!(
                        "field {field} is not an exact match in an all-exact \
                         table; serving it demotes the hash index to a linear \
                         scan (MatchTable::try_insert rejects this entry)"
                    ),
                });
            }
        }
        // Otherwise exact tables replace on duplicate key and a miss is
        // the normal negative result — no rule-level lints apply.
        return out;
    }

    if is_uniform_lpm(shape) {
        let MatchKind::Lpm { width } = shape.schema[0] else {
            unreachable!("checked by is_uniform_lpm");
        };
        // Duplicate prefixes: the first install wins, later installs are
        // unreachable.
        let mut seen: std::collections::HashMap<(u8, u64), usize> = Default::default();
        for (j, e) in shape.entries.iter().enumerate() {
            let FieldMatch::Lpm { value, prefix_len } = e.fields[0] else {
                unreachable!("checked by is_uniform_lpm");
            };
            let masked = if prefix_len == 0 {
                0
            } else {
                value >> (width as u32 - prefix_len as u32)
            };
            if let Some(&first) = seen.get(&(prefix_len, masked)) {
                out.push(Diagnostic {
                    code: LintCode::DuplicateLpmPrefix,
                    app: app.to_string(),
                    subject: format!("{}#{}", shape.name, j),
                    message: format!(
                        "prefix /{prefix_len} duplicates entry #{first}; \
                         first-install-wins makes this entry unreachable"
                    ),
                });
            } else {
                seen.insert((prefix_len, masked), j);
            }
        }
        if !shape
            .entries
            .iter()
            .any(|e| matches!(e.fields[0], FieldMatch::Lpm { prefix_len: 0, .. }))
        {
            out.push(Diagnostic {
                code: LintCode::MissingDefaultAction,
                app: app.to_string(),
                subject: shape.name.clone(),
                message: "no /0 catch-all route; lookups outside the installed \
                          prefixes miss with no default action"
                    .to_string(),
            });
        }
        return out;
    }

    // General scan-semantics table: provable shadowing. Entry j is dead
    // when an entry i covers all its fields and always outranks it:
    // strictly higher priority, or equal priority with earlier install
    // and at least as many matched LPM bits (the two tie-breaks, in
    // order).
    for (j, ej) in shape.entries.iter().enumerate() {
        let shadowed_by = shape.entries.iter().enumerate().find(|(i, ei)| {
            *i != j
                && entry_covers(&shape.schema, ei, ej)
                && (ei.priority > ej.priority
                    || (ei.priority == ej.priority && *i < j && lpm_bits(ei) >= lpm_bits(ej)))
        });
        if let Some((i, ei)) = shadowed_by {
            out.push(Diagnostic {
                code: LintCode::ShadowedRule,
                app: app.to_string(),
                subject: format!("{}#{}", shape.name, j),
                message: format!(
                    "entry #{j} (priority {}) is fully covered by entry #{i} \
                     (priority {}); it can never be selected",
                    ej.priority, ei.priority
                ),
            });
        }
    }
    let has_catch_all = shape.entries.iter().any(|e| {
        shape
            .schema
            .iter()
            .zip(&e.fields)
            .all(|(&k, f)| field_is_wildcard(k, f))
    });
    if !has_catch_all {
        out.push(Diagnostic {
            code: LintCode::MissingDefaultAction,
            app: app.to_string(),
            subject: shape.name.clone(),
            message: "no catch-all entry; lookups can miss with no default \
                      action"
                .to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ternary_shape(entries: Vec<ShapeEntry>) -> TableShape {
        TableShape {
            name: "acl".into(),
            schema: vec![MatchKind::Ternary],
            entries,
        }
    }

    #[test]
    fn shadowed_ternary_detected() {
        let shape = ternary_shape(vec![
            ShapeEntry {
                fields: vec![FieldMatch::Any],
                priority: 10,
            },
            ShapeEntry {
                fields: vec![FieldMatch::Ternary {
                    value: 0x80,
                    mask: 0xF0,
                }],
                priority: 1,
            },
        ]);
        let diags = check("t", &shape);
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::ShadowedRule && d.subject == "acl#1"));
    }

    #[test]
    fn disjoint_ternary_clean() {
        let shape = ternary_shape(vec![
            ShapeEntry {
                fields: vec![FieldMatch::Ternary {
                    value: 0x80,
                    mask: 0x80,
                }],
                priority: 10,
            },
            ShapeEntry {
                fields: vec![FieldMatch::Any],
                priority: 1,
            },
        ]);
        let diags = check("t", &shape);
        assert!(!diags.iter().any(|d| d.code == LintCode::ShadowedRule));
        // The Any entry is the catch-all, so no W004 either.
        assert!(diags.is_empty());
    }

    #[test]
    fn equal_priority_longer_lpm_not_shadowed() {
        // Scan tie-break prefers more matched LPM bits, so a /8 installed
        // first does NOT shadow a later /16 at the same priority.
        let shape = TableShape {
            name: "r".into(),
            schema: vec![MatchKind::Lpm { width: 32 }, MatchKind::Range],
            entries: vec![
                ShapeEntry {
                    fields: vec![
                        FieldMatch::Lpm {
                            value: 0x0A00_0000,
                            prefix_len: 8,
                        },
                        FieldMatch::Any,
                    ],
                    priority: 0,
                },
                ShapeEntry {
                    fields: vec![
                        FieldMatch::Lpm {
                            value: 0x0A01_0000,
                            prefix_len: 16,
                        },
                        FieldMatch::Any,
                    ],
                    priority: 0,
                },
            ],
        };
        let diags = check("t", &shape);
        assert!(!diags.iter().any(|d| d.code == LintCode::ShadowedRule));
    }

    #[test]
    fn duplicate_lpm_prefix_detected() {
        let shape = TableShape {
            name: "routes".into(),
            schema: vec![MatchKind::Lpm { width: 32 }],
            entries: vec![
                ShapeEntry {
                    fields: vec![FieldMatch::Lpm {
                        value: 0x0A00_0000,
                        prefix_len: 8,
                    }],
                    priority: 0,
                },
                ShapeEntry {
                    fields: vec![FieldMatch::Lpm {
                        value: 0x0A05_0000, // same /8 as above
                        prefix_len: 8,
                    }],
                    priority: 0,
                },
            ],
        };
        let diags = check("t", &shape);
        assert!(diags.iter().any(|d| d.code == LintCode::DuplicateLpmPrefix));
        // And no /0 → missing default too.
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::MissingDefaultAction));
    }

    #[test]
    fn lpm_with_default_clean() {
        let shape = TableShape {
            name: "routes".into(),
            schema: vec![MatchKind::Lpm { width: 32 }],
            entries: vec![
                ShapeEntry {
                    fields: vec![FieldMatch::Lpm {
                        value: 0x0A00_0000,
                        prefix_len: 8,
                    }],
                    priority: 0,
                },
                ShapeEntry {
                    fields: vec![FieldMatch::Lpm {
                        value: 0,
                        prefix_len: 0,
                    }],
                    priority: 0,
                },
            ],
        };
        assert!(check("t", &shape).is_empty());
    }

    #[test]
    fn exact_tables_exempt() {
        let shape = TableShape {
            name: "mac".into(),
            schema: vec![MatchKind::Exact],
            entries: vec![ShapeEntry {
                fields: vec![FieldMatch::Exact(42)],
                priority: 0,
            }],
        };
        assert!(check("t", &shape).is_empty());
    }

    #[test]
    fn non_exact_entry_in_exact_table_is_e006() {
        let shape = TableShape {
            name: "mac".into(),
            schema: vec![MatchKind::Exact, MatchKind::Exact],
            entries: vec![
                ShapeEntry {
                    fields: vec![FieldMatch::Exact(42), FieldMatch::Exact(1)],
                    priority: 0,
                },
                ShapeEntry {
                    fields: vec![FieldMatch::Exact(42), FieldMatch::Any],
                    priority: 0,
                },
            ],
        };
        let diags = check("t", &shape);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::NonExactInExactTable);
        assert_eq!(diags[0].code.code(), "EDP-E006");
        assert_eq!(diags[0].subject, "mac#1");
        assert!(diags[0].message.contains("field 1"));
    }
}
