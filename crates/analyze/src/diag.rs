//! Structured diagnostics with stable codes and severities.
//!
//! Every lint has a stable code (`EDP-Wnnn` warning / `EDP-Ennn` error)
//! that tests, CI logs, and per-diagnostic `allow` annotations key on.
//! The catalog lives in [`LintCode`]; DESIGN.md §9 documents each code's
//! rationale against the paper.

use edp_core::manifest::LintAllow;
use std::fmt;

/// Diagnostic severity. Errors always fail the lint gate; warnings fail
/// it only under `--deny warnings` (which CI passes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but conceivably intentional; deniable.
    Warning,
    /// A property violation that makes results wrong.
    Error,
}

impl Severity {
    /// Lowercase name, as printed in reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The lint catalog. Codes are stable: they never get renumbered, only
/// appended to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// `EDP-W001` — a plain (non-aggregated) register is written from
    /// more than one handler context: the paper's §4 single-port
    /// violation unless an aggregation register fronts it.
    MultiWriterRegister,
    /// `EDP-W002` — a register is read-modify-written in one handler
    /// context while another context also writes it: the RMW cycle spans
    /// handlers, so its read can be torn by the interleaved write.
    CrossHandlerRmw,
    /// `EDP-W003` — two LPM entries install the identical prefix; the
    /// later one can never win (first-install-wins tie-break).
    DuplicateLpmPrefix,
    /// `EDP-W004` — an LPM/ternary/range table has no catch-all entry,
    /// so lookups can miss with no default action to fall back on.
    MissingDefaultAction,
    /// `EDP-W005` — a handler is registered for an event the deployed
    /// target never raises (e.g. a timer handler with no armed timer).
    UnraisableEventHandler,
    /// `EDP-W006` — the program raises a user-event code no handler
    /// understands.
    UnhandledUserEvent,
    /// `EDP-W007` — a `SharedRegister` access claimed one `Accessor`
    /// class but ran in a different handler context, corrupting the port
    /// accounting the §4 resource model is built on.
    AccessorMismatch,
    /// `EDP-W008` — probing observed a handler emit a frame but the app
    /// declares no emission map at all (open world). Nothing is wrong at
    /// runtime, but the app certifies nothing: the sharded engine must
    /// treat every one of its events as horizon-bound. Declaring the
    /// observed footprint (or `no_emissions()`) upgrades the app to a
    /// checkable closed world.
    UndeclaredEmission,
    /// `EDP-E001` — a registered merge op is not commutative; idle-cycle
    /// fold reordering changes results.
    MergeNotCommutative,
    /// `EDP-E002` — a table entry is fully shadowed by a
    /// higher-precedence entry and can never be selected.
    ShadowedRule,
    /// `EDP-E003` — a registered merge op is not associative; fold
    /// grouping changes results.
    MergeNotAssociative,
    /// `EDP-E004` — a merge op's declared identity is not its identity
    /// element; zero-initialized aggregation registers corrupt the fold.
    MergeBadIdentity,
    /// `EDP-E005` — a handler panicked while being probed with synthetic
    /// inputs; the access matrix for it is incomplete.
    ProbePanic,
    /// `EDP-E006` — a non-exact match entry is installed into an
    /// all-exact table. At runtime this demotes the hash index to a
    /// linear scan ([`edp_pisa::MatchTable::try_insert`] rejects it with
    /// `TableError::NonExactField`); it is almost always a mis-shaped
    /// control-plane rule.
    NonExactInExactTable,
    /// `EDP-E007` — probing observed an emission outside the app's
    /// declared closed-world effect summary: a handler cascade transmits
    /// on a path the declaration says cannot transmit. The sharded
    /// engine's certificate-aware horizon *spends* these summaries
    /// (certified-local events skip cross-shard rendezvous), so a
    /// violated summary is not a style issue — it breaks the safe-window
    /// induction and with it determinism.
    SummaryViolation,
}

impl LintCode {
    /// Every catalogued code, in code order.
    pub const ALL: [LintCode; 15] = [
        LintCode::MultiWriterRegister,
        LintCode::CrossHandlerRmw,
        LintCode::DuplicateLpmPrefix,
        LintCode::MissingDefaultAction,
        LintCode::UnraisableEventHandler,
        LintCode::UnhandledUserEvent,
        LintCode::AccessorMismatch,
        LintCode::UndeclaredEmission,
        LintCode::MergeNotCommutative,
        LintCode::ShadowedRule,
        LintCode::MergeNotAssociative,
        LintCode::MergeBadIdentity,
        LintCode::ProbePanic,
        LintCode::NonExactInExactTable,
        LintCode::SummaryViolation,
    ];

    /// The stable code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::MultiWriterRegister => "EDP-W001",
            LintCode::CrossHandlerRmw => "EDP-W002",
            LintCode::DuplicateLpmPrefix => "EDP-W003",
            LintCode::MissingDefaultAction => "EDP-W004",
            LintCode::UnraisableEventHandler => "EDP-W005",
            LintCode::UnhandledUserEvent => "EDP-W006",
            LintCode::AccessorMismatch => "EDP-W007",
            LintCode::UndeclaredEmission => "EDP-W008",
            LintCode::MergeNotCommutative => "EDP-E001",
            LintCode::ShadowedRule => "EDP-E002",
            LintCode::MergeNotAssociative => "EDP-E003",
            LintCode::MergeBadIdentity => "EDP-E004",
            LintCode::ProbePanic => "EDP-E005",
            LintCode::NonExactInExactTable => "EDP-E006",
            LintCode::SummaryViolation => "EDP-E007",
        }
    }

    /// The short kebab-case lint name.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::MultiWriterRegister => "multi-writer-register",
            LintCode::CrossHandlerRmw => "cross-handler-rmw",
            LintCode::DuplicateLpmPrefix => "duplicate-lpm-prefix",
            LintCode::MissingDefaultAction => "missing-default-action",
            LintCode::UnraisableEventHandler => "unraisable-event-handler",
            LintCode::UnhandledUserEvent => "unhandled-user-event",
            LintCode::AccessorMismatch => "accessor-mismatch",
            LintCode::UndeclaredEmission => "undeclared-emission",
            LintCode::MergeNotCommutative => "merge-not-commutative",
            LintCode::ShadowedRule => "shadowed-rule",
            LintCode::MergeNotAssociative => "merge-not-associative",
            LintCode::MergeBadIdentity => "merge-bad-identity",
            LintCode::ProbePanic => "probe-panic",
            LintCode::NonExactInExactTable => "non-exact-in-exact-table",
            LintCode::SummaryViolation => "summary-violation",
        }
    }

    /// The code's fixed severity.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::MergeNotCommutative
            | LintCode::ShadowedRule
            | LintCode::MergeNotAssociative
            | LintCode::MergeBadIdentity
            | LintCode::ProbePanic
            | LintCode::NonExactInExactTable
            | LintCode::SummaryViolation => Severity::Error,
            _ => Severity::Warning,
        }
    }
}

/// One finding: a catalogued code against a subject inside an app.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// App (registry name) the finding is in.
    pub app: String,
    /// What the finding is about: a register or table name, an event
    /// name, or a user-event code in decimal. `allow` annotations match
    /// on this exact string.
    pub subject: String,
    /// Human-readable explanation with the evidence inline.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} {}] {}: {}",
            self.code.severity().name(),
            self.code.code(),
            self.code.name(),
            self.subject,
            self.message
        )
    }
}

/// The outcome of linting one app: active findings plus the findings the
/// app's manifest explicitly allowed (kept visible, never silent).
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Findings still in force.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings matched by an `allow`, with the recorded reason.
    pub allowed: Vec<(Diagnostic, String)>,
}

impl Report {
    /// Partitions `raw` findings against the manifest's allow list: a
    /// finding is allowed iff some entry matches both its stable code and
    /// its exact subject.
    pub fn from_findings(raw: Vec<Diagnostic>, allows: &[LintAllow]) -> Self {
        let mut report = Report::default();
        for d in raw {
            match allows
                .iter()
                .find(|a| a.code == d.code.code() && a.subject == d.subject)
            {
                Some(a) => report.allowed.push((d, a.reason.to_string())),
                None => report.diagnostics.push(d),
            }
        }
        report
            .diagnostics
            .sort_by_key(|d| (std::cmp::Reverse(d.code.severity()), d.code.code()));
        report
    }

    /// Active errors.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.code.severity() == Severity::Error)
            .count()
    }

    /// Active warnings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.code.severity() == Severity::Warning)
            .count()
    }

    /// True when a diagnostic with this exact stable code is active.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code.code() == code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_prefixed() {
        let mut seen = std::collections::HashSet::new();
        for c in LintCode::ALL {
            assert!(seen.insert(c.code()), "duplicate code {}", c.code());
            match c.severity() {
                Severity::Warning => assert!(c.code().starts_with("EDP-W")),
                Severity::Error => assert!(c.code().starts_with("EDP-E")),
            }
        }
    }

    #[test]
    fn allow_matches_code_and_subject() {
        let d = |subject: &str| Diagnostic {
            code: LintCode::MultiWriterRegister,
            app: "a".into(),
            subject: subject.into(),
            message: "m".into(),
        };
        let allows = vec![LintAllow {
            code: "EDP-W001",
            subject: "occ".into(),
            reason: "intentional",
        }];
        let r = Report::from_findings(vec![d("occ"), d("other")], &allows);
        assert_eq!(r.allowed.len(), 1);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].subject, "other");
    }
}
