//! `edp_lint` — run the static hazard/lint catalog over every built-in
//! app and report structured diagnostics.
//!
//! ```text
//! edp_lint [--json] [--deny warnings] [--seed N]
//! ```
//!
//! Exit status is nonzero when any error-severity diagnostic is active,
//! or when warnings are active under `--deny warnings` (the CI
//! configuration). Allowed findings are always printed with their
//! recorded reason — suppression is visible, never silent.

use edp_analyze::{lint_app, Report, Severity, DEFAULT_SEED};
use edp_apps::registry::builtin_apps;

struct Options {
    json: bool,
    deny_warnings: bool,
    seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        deny_warnings: false,
        seed: DEFAULT_SEED,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny" => match args.next().as_deref() {
                Some("warnings") => opts.deny_warnings = true,
                other => {
                    return Err(format!(
                        "--deny takes `warnings`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--seed" => {
                let v = args.next().ok_or("--seed takes a number")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--help" | "-h" => {
                println!("usage: edp_lint [--json] [--deny warnings] [--seed N]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn print_json(reports: &[(String, Report)]) {
    let mut out = String::from("{\n  \"apps\": [\n");
    for (i, (name, report)) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": {},\n", json_str(name)));
        out.push_str("      \"diagnostics\": [");
        for (j, d) in report.diagnostics.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"code\": {}, \"name\": {}, \"severity\": {}, \
                 \"subject\": {}, \"message\": {}}}",
                json_str(d.code.code()),
                json_str(d.code.name()),
                json_str(d.code.severity().name()),
                json_str(&d.subject),
                json_str(&d.message),
            ));
        }
        if !report.diagnostics.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("],\n      \"allowed\": [");
        for (j, (d, reason)) in report.allowed.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"code\": {}, \"subject\": {}, \"reason\": {}}}",
                json_str(d.code.code()),
                json_str(&d.subject),
                json_str(reason),
            ));
        }
        if !report.allowed.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }");
        if i + 1 < reports.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let errors: usize = reports.iter().map(|(_, r)| r.errors()).sum();
    let warnings: usize = reports.iter().map(|(_, r)| r.warnings()).sum();
    let allowed: usize = reports.iter().map(|(_, r)| r.allowed.len()).sum();
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"summary\": {{\"errors\": {errors}, \"warnings\": {warnings}, \"allowed\": {allowed}}}\n"
    ));
    out.push('}');
    println!("{out}");
}

fn print_human(reports: &[(String, Report)]) {
    for (name, report) in reports {
        if report.diagnostics.is_empty() && report.allowed.is_empty() {
            continue;
        }
        println!("{name}:");
        for d in &report.diagnostics {
            println!("  {d}");
        }
        for (d, reason) in &report.allowed {
            println!(
                "  allowed [{} {}] {}: {}",
                d.code.code(),
                d.code.name(),
                d.subject,
                reason
            );
        }
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("edp_lint: {e}");
            std::process::exit(2);
        }
    };

    let mut reports: Vec<(String, Report)> = Vec::new();
    for mut app in builtin_apps() {
        let report = lint_app(app.program.as_mut(), &app.manifest, opts.seed);
        reports.push((app.manifest.name.to_string(), report));
    }

    let errors: usize = reports.iter().map(|(_, r)| r.errors()).sum();
    let warnings: usize = reports.iter().map(|(_, r)| r.warnings()).sum();
    let allowed: usize = reports.iter().map(|(_, r)| r.allowed.len()).sum();

    if opts.json {
        print_json(&reports);
    } else {
        print_human(&reports);
        let worst = reports
            .iter()
            .flat_map(|(_, r)| r.diagnostics.iter())
            .map(|d| d.code.severity())
            .max();
        let verdict = match worst {
            Some(Severity::Error) => "FAIL",
            Some(Severity::Warning) if opts.deny_warnings => "FAIL (denied warnings)",
            _ => "ok",
        };
        println!(
            "edp_lint: {} apps analyzed, {errors} errors, {warnings} warnings, \
             {allowed} allowed — {verdict}",
            reports.len()
        );
    }

    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
}
