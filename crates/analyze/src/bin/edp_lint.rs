//! `edp_lint` — run the static hazard/lint catalog over every built-in
//! app and report structured diagnostics.
//!
//! ```text
//! edp_lint [--json] [--sarif] [--effects] [--deny warnings] [--seed N]
//! ```
//!
//! Exit status: `0` when the gate passes, `1` when lints are denied
//! (any error-severity diagnostic, or active warnings under
//! `--deny warnings` — the CI configuration), `2` on internal failure
//! (bad arguments, malformed invocation). Allowed findings are always
//! printed with their recorded reason — suppression is visible, never
//! silent.

use edp_analyze::{effect_report, lint_app, LintCode, Report, Severity, DEFAULT_SEED};
use edp_apps::registry::builtin_apps;

const HELP: &str = "\
usage: edp_lint [--json] [--sarif] [--effects] [--deny warnings] [--seed N]

Runs the full static analysis catalog (EDP-W001..W008, EDP-E001..E007)
over every registered app.

  --json            structured report on stdout
  --sarif           SARIF 2.1.0 report on stdout (for code-scanning UIs)
  --effects         per-app effect-summary report: observed vs declared
                    vs closure emission footprints, and whether the
                    app's timers certify as shard-local
  --deny warnings   fail (exit 1) on active warnings, not just errors
  --seed N          seed for the randomized merge-op sweep

exit codes:
  0  gate passed
  1  lints denied (errors, or warnings under --deny warnings)
  2  internal failure (bad arguments)";

struct Options {
    json: bool,
    sarif: bool,
    effects: bool,
    deny_warnings: bool,
    seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        sarif: false,
        effects: false,
        deny_warnings: false,
        seed: DEFAULT_SEED,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--sarif" => opts.sarif = true,
            "--effects" => opts.effects = true,
            "--deny" => match args.next().as_deref() {
                Some("warnings") => opts.deny_warnings = true,
                other => {
                    return Err(format!(
                        "--deny takes `warnings`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--seed" => {
                let v = args.next().ok_or("--seed takes a number")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct AppResult {
    name: String,
    source: Option<&'static str>,
    report: Report,
}

fn print_json(results: &[AppResult]) {
    let mut out = String::from("{\n  \"apps\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": {},\n", json_str(&r.name)));
        out.push_str("      \"diagnostics\": [");
        for (j, d) in r.report.diagnostics.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"code\": {}, \"name\": {}, \"severity\": {}, \
                 \"subject\": {}, \"message\": {}}}",
                json_str(d.code.code()),
                json_str(d.code.name()),
                json_str(d.code.severity().name()),
                json_str(&d.subject),
                json_str(&d.message),
            ));
        }
        if !r.report.diagnostics.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("],\n      \"allowed\": [");
        for (j, (d, reason)) in r.report.allowed.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"code\": {}, \"subject\": {}, \"reason\": {}}}",
                json_str(d.code.code()),
                json_str(&d.subject),
                json_str(reason),
            ));
        }
        if !r.report.allowed.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }");
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let errors: usize = results.iter().map(|r| r.report.errors()).sum();
    let warnings: usize = results.iter().map(|r| r.report.warnings()).sum();
    let allowed: usize = results.iter().map(|r| r.report.allowed.len()).sum();
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"summary\": {{\"errors\": {errors}, \"warnings\": {warnings}, \"allowed\": {allowed}}}\n"
    ));
    out.push('}');
    println!("{out}");
}

/// SARIF 2.1.0: one run, one rule per catalogued lint code, one result
/// per active diagnostic. Allowed findings are emitted with
/// `"kind": "informational"` suppressions so scanning UIs show the
/// acknowledged hazards without failing on them.
fn print_sarif(results: &[AppResult]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"edp_lint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, code) in LintCode::ALL.iter().enumerate() {
        let comma = if i + 1 == LintCode::ALL.len() {
            ""
        } else {
            ","
        };
        let level = match code.severity() {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        out.push_str(&format!(
            "            {{\"id\": {}, \"name\": {}, \
             \"defaultConfiguration\": {{\"level\": \"{level}\"}}}}{comma}\n",
            json_str(code.code()),
            json_str(code.name()),
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let mut results_json = Vec::new();
    for r in results {
        let uri = r.source.unwrap_or("crates/apps/src/registry.rs");
        for d in &r.report.diagnostics {
            let level = match d.code.severity() {
                Severity::Warning => "warning",
                Severity::Error => "error",
            };
            results_json.push(format!(
                "        {{\"ruleId\": {}, \"level\": \"{level}\", \
                 \"message\": {{\"text\": {}}}, \
                 \"locations\": [{{\"physicalLocation\": \
                 {{\"artifactLocation\": {{\"uri\": {}}}}}}}]}}",
                json_str(d.code.code()),
                json_str(&format!("{}: {}: {}", d.app, d.subject, d.message)),
                json_str(uri),
            ));
        }
        for (d, reason) in &r.report.allowed {
            results_json.push(format!(
                "        {{\"ruleId\": {}, \"level\": \"note\", \
                 \"message\": {{\"text\": {}}}, \
                 \"locations\": [{{\"physicalLocation\": \
                 {{\"artifactLocation\": {{\"uri\": {}}}}}}}], \
                 \"suppressions\": [{{\"kind\": \"inSource\", \
                 \"justification\": {}}}]}}",
                json_str(d.code.code()),
                json_str(&format!("{}: {}: allowed", d.app, d.subject)),
                json_str(uri),
                json_str(reason),
            ));
        }
    }
    out.push_str(&results_json.join(",\n"));
    if !results_json.is_empty() {
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}");
    println!("{out}");
}

fn print_human(results: &[AppResult]) {
    for r in results {
        if r.report.diagnostics.is_empty() && r.report.allowed.is_empty() {
            continue;
        }
        println!("{}:", r.name);
        for d in &r.report.diagnostics {
            println!("  {d}");
        }
        for (d, reason) in &r.report.allowed {
            println!(
                "  allowed [{} {}] {}: {}",
                d.code.code(),
                d.code.name(),
                d.subject,
                reason
            );
        }
    }
}

/// The `--effects` view: observed vs declared vs closure footprints per
/// kind, per app, plus the timer certificate the engine would load.
fn print_effects() {
    for mut app in builtin_apps() {
        let rep = effect_report(app.program.as_mut(), &app.manifest);
        let world = if rep.closed_world {
            "closed world"
        } else {
            "open world"
        };
        let timer = if rep.timer_local {
            "timers certified local"
        } else {
            "timers horizon-bound"
        };
        println!("{} ({world}, {timer}):", rep.app);
        println!(
            "  {:<16} {:<12} {:<12} {:<12}",
            "event", "observed", "declared", "closure"
        );
        for row in &rep.rows {
            println!(
                "  {:<16} {:<12} {:<12} {:<12}",
                row.kind.name(),
                row.observed.to_string(),
                row.declared.to_string(),
                row.closure.to_string(),
            );
        }
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("edp_lint: {e}");
            std::process::exit(2);
        }
    };

    if opts.effects {
        print_effects();
        return;
    }

    let mut results: Vec<AppResult> = Vec::new();
    for mut app in builtin_apps() {
        let report = lint_app(app.program.as_mut(), &app.manifest, opts.seed);
        results.push(AppResult {
            name: app.manifest.name.to_string(),
            source: app.manifest.source,
            report,
        });
    }

    let errors: usize = results.iter().map(|r| r.report.errors()).sum();
    let warnings: usize = results.iter().map(|r| r.report.warnings()).sum();
    let allowed: usize = results.iter().map(|r| r.report.allowed.len()).sum();

    if opts.sarif {
        print_sarif(&results);
    } else if opts.json {
        print_json(&results);
    } else {
        print_human(&results);
        let worst = results
            .iter()
            .flat_map(|r| r.report.diagnostics.iter())
            .map(|d| d.code.severity())
            .max();
        let verdict = match worst {
            Some(Severity::Error) => "FAIL",
            Some(Severity::Warning) if opts.deny_warnings => "FAIL (denied warnings)",
            _ => "ok",
        };
        println!(
            "edp_lint: {} apps analyzed, {errors} errors, {warnings} warnings, \
             {allowed} allowed — {verdict}",
            results.len()
        );
    }

    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
}
