//! Access-matrix extraction: the recording probe pass.
//!
//! The extractor exercises each handler the manifest declares — once per
//! [`EventKind`], with synthetic packets/events and no simulated traffic —
//! while `edp_pisa::probe` recording is armed. Every register access the
//! handlers perform lands in the probe log tagged with the handler
//! context it ran in; folding the log produces the handler × register
//! read/write matrix the hazard detector consumes.
//!
//! Packet handlers are probed first so the `event_meta` they stage (the
//! paper's `enq_meta`/`deq_meta`) rides along on the synthetic
//! enqueue/dequeue/overflow events, exactly as the architecture would
//! deliver it. A handler that panics under probing is recorded (the
//! matrix is then incomplete) and surfaces as `EDP-E005`.

use edp_core::event::{
    ControlPlaneEvent, DequeueEvent, EnqueueEvent, LinkStatusEvent, OverflowEvent, TimerEvent,
    TransmitEvent, UnderflowEvent, UserEvent,
};
use edp_core::{AppManifest, EmitFootprint, EventActions, EventKind, EventProgram};
use edp_evsim::SimTime;
use edp_packet::{parse_packet, Packet, PacketBuilder};
use edp_pisa::{probe, Destination, ProbeAccess, ProbeClass, StdMeta};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Read/write/RMW counts for one (register, context) cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCell {
    /// Plain reads.
    pub reads: u64,
    /// Plain writes.
    pub writes: u64,
    /// Atomic read-modify-writes.
    pub rmws: u64,
}

impl AccessCell {
    /// True when this cell mutates the register (write or RMW).
    pub fn writes_any(&self) -> bool {
        self.writes > 0 || self.rmws > 0
    }
}

/// The handler × register access matrix for one program, plus everything
/// else probing observed.
#[derive(Debug, Clone, Default)]
pub struct AccessMatrix {
    /// `register name → handler context → access counts`.
    pub rows: BTreeMap<String, BTreeMap<&'static str, AccessCell>>,
    /// Registers whose writes went through an aggregation complex
    /// ([`ProbeClass::Aggregated`]): multi-context writes are their
    /// design, not a hazard.
    pub aggregated: BTreeSet<String>,
    /// `(register, claimed accessor, actual context group)` triples where
    /// the `Accessor` claim disagrees with the context the access ran in.
    pub claim_mismatches: Vec<(String, &'static str, &'static str)>,
    /// User-event codes raised by any probed handler.
    pub raised_user_codes: BTreeSet<u32>,
    /// True when any probed handler generated a packet.
    pub generated_packets: bool,
    /// Per *entry* kind, the emission footprint probing observed: every
    /// frame-routing decision made while the probe exercised that kind,
    /// including decisions made by the generated-packet cascade the
    /// handler started and by overflow trim-requeues. This is the
    /// dynamic side of the observed ⊆ declared emission cross-check
    /// (EDP-W008 / EDP-E007).
    pub observed_emissions: BTreeMap<EventKind, EmitFootprint>,
    /// `(context, panic message)` for handlers that panicked under probe.
    pub panics: Vec<(&'static str, String)>,
}

impl AccessMatrix {
    /// Handler contexts that mutate `register`, in context name order.
    pub fn writer_contexts(&self, register: &str) -> Vec<&'static str> {
        self.rows
            .get(register)
            .map(|cols| {
                cols.iter()
                    .filter(|(_, c)| c.writes_any())
                    .map(|(ctx, _)| *ctx)
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Stable lowercase context name for each event kind — the same strings
/// the architecture's own probe scopes push (`EventKind::probe_context`),
/// so matrices built by this prober and by live-switch probing agree.
pub fn context_name(kind: EventKind) -> &'static str {
    kind.probe_context()
}

/// The §4 port class a context belongs to: ingress, egress,
/// recirculated, and generated packets all traverse the packet pipeline
/// and share its register port, enqueue and dequeue own one each, and
/// background contexts (timer, control plane, link status, user events,
/// transmit bookkeeping) share the "other" port. Hazard detection and
/// `Accessor`-claim cross-checking both count at this granularity.
pub fn port_class(ctx: &str) -> &'static str {
    match ctx {
        "ingress" | "egress" | "recirculated" | "generated" => "packet",
        "enqueue" => "enqueue",
        "dequeue" => "dequeue",
        _ => "other",
    }
}

/// Probe order: packet handlers first (they stage `event_meta`), then
/// buffer events carrying it, then the rest.
const PROBE_ORDER: [EventKind; 13] = [
    EventKind::IngressPacket,
    EventKind::RecirculatedPacket,
    EventKind::GeneratedPacket,
    EventKind::EgressPacket,
    EventKind::BufferEnqueue,
    EventKind::BufferDequeue,
    EventKind::BufferOverflow,
    EventKind::BufferUnderflow,
    EventKind::PacketTransmitted,
    EventKind::TimerExpiration,
    EventKind::LinkStatusChange,
    EventKind::ControlPlaneTriggered,
    EventKind::UserEvent,
];

/// The two synthetic probe flows (distinct 5-tuples on host addresses
/// `10.0.0.x`, which every app's address scheme places on ToR/prefix 0).
fn probe_frames() -> Vec<Vec<u8>> {
    vec![
        PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 200),
            1000,
            2000,
            &[0xAB; 26],
        )
        .build(),
        PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 201),
            1001,
            2001,
            &[0xCD; 58],
        )
        .build(),
    ]
}

/// Cap on generated frames fed back through `on_generated` — generators
/// that reply to their own replies would otherwise loop forever. Probing
/// is sampling, not simulation; the cap is reported nowhere because the
/// *flag* (`generated_packets`) is what the closure analysis consumes,
/// and it is already set by frame one.
const GEN_FEED_CAP: usize = 8;

/// Recirculation passes followed per probe frame (mirrors the
/// architecture's own recirculation limit in spirit; 4 passes reach any
/// fixed point a probe input is going to reach).
const RECIRC_CAP: usize = 4;

struct Prober<'p> {
    program: &'p mut dyn EventProgram,
    now: SimTime,
    staged_meta: [u64; 4],
    raised: BTreeSet<u32>,
    generated: bool,
    /// The event kind whose probe started the current cascade — the key
    /// observed emissions are attributed to.
    entry: EventKind,
    emissions: BTreeMap<EventKind, EmitFootprint>,
    /// Generated frames awaiting an `on_generated` pass, tagged with the
    /// entry kind of the cascade that generated them.
    gen_feed: Vec<(EventKind, Vec<u8>)>,
    panics: Vec<(&'static str, String)>,
}

impl Prober<'_> {
    /// Runs `f` under context `ctx`, absorbing panics and collecting the
    /// actions the handler requested.
    fn in_context(
        &mut self,
        ctx: &'static str,
        f: impl FnOnce(&mut dyn EventProgram, &mut EventActions),
    ) {
        probe::set_context(ctx);
        let mut actions = EventActions::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| f(self.program, &mut actions)));
        probe::set_context("");
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            self.panics.push((ctx, msg));
            return;
        }
        for ev in actions.raised_user_events() {
            self.raised.insert(ev.code);
        }
        self.generated |= !actions.generated_frames().is_empty();
        for frame in actions.generated_frames() {
            if self.gen_feed.len() < GEN_FEED_CAP {
                self.gen_feed.push((self.entry, frame.clone()));
            }
        }
        if self.entry == EventKind::BufferOverflow && actions.trim_rank().is_some() {
            // The trim re-offers the victim header to the port that
            // overflowed — port 0 in the synthetic overflow event.
            self.observe_emission(EmitFootprint::port(0));
        }
    }

    /// Folds one observed routing decision into the current entry kind's
    /// footprint.
    fn observe_emission(&mut self, fp: EmitFootprint) {
        let cell = self
            .emissions
            .entry(self.entry)
            .or_insert(EmitFootprint::None);
        *cell = std::mem::replace(cell, EmitFootprint::None).union(fp);
    }

    /// Runs one frame through a packet handler, following recirculation
    /// up to [`RECIRC_CAP`] passes, and records where it was routed.
    /// Egress probes skip the recording: at egress the destination is
    /// already committed, so a handler writing `meta.dest` there routes
    /// nothing.
    fn probe_packet_frame(&mut self, kind: EventKind, frame: Vec<u8>) -> Option<StdMeta> {
        let mut pkt = Packet::anonymous(frame);
        let parsed = parse_packet(pkt.bytes()).ok()?;
        let mut meta = StdMeta::ingress(0, self.now, pkt.len());
        let now = self.now;
        let mut pass_kind = kind;
        for _pass in 0..=RECIRC_CAP {
            let ctx = context_name(pass_kind);
            self.in_context(ctx, |p, a| match pass_kind {
                EventKind::IngressPacket => p.on_ingress(&mut pkt, &parsed, &mut meta, now, a),
                EventKind::EgressPacket => p.on_egress(&mut pkt, &parsed, &mut meta, now, a),
                EventKind::RecirculatedPacket => {
                    p.on_recirculated(&mut pkt, &parsed, &mut meta, now, a)
                }
                EventKind::GeneratedPacket => p.on_generated(&mut pkt, &parsed, &mut meta, now, a),
                _ => unreachable!("not a packet event"),
            });
            if kind == EventKind::EgressPacket {
                break;
            }
            match meta.dest {
                Destination::Port(p) => {
                    self.observe_emission(EmitFootprint::port(p));
                    break;
                }
                Destination::Flood => {
                    self.observe_emission(EmitFootprint::Any);
                    break;
                }
                Destination::Recirculate => {
                    meta.dest = Destination::Unspecified;
                    meta.recirc_count += 1;
                    pass_kind = EventKind::RecirculatedPacket;
                }
                Destination::Drop | Destination::Unspecified => break,
            }
        }
        Some(meta)
    }

    fn probe_packet_handler(&mut self, kind: EventKind) {
        for frame in probe_frames() {
            let Some(meta) = self.probe_packet_frame(kind, frame) else {
                continue;
            };
            if kind == EventKind::IngressPacket && meta.event_meta != [0; 4] {
                self.staged_meta = meta.event_meta;
            }
        }
    }

    fn probe_event_handler(&mut self, kind: EventKind, manifest: &AppManifest) {
        let ctx = context_name(kind);
        let now = self.now;
        let meta = self.staged_meta;
        match kind {
            EventKind::BufferEnqueue => {
                let ev = EnqueueEvent {
                    port: 0,
                    pkt_len: 100,
                    q_bytes: 1500,
                    q_pkts: 3,
                    meta,
                };
                self.in_context(ctx, |p, a| p.on_enqueue(&ev, now, a));
                self.in_context(ctx, |p, a| p.on_enqueue(&ev, now, a));
            }
            EventKind::BufferDequeue => {
                let ev = DequeueEvent {
                    port: 0,
                    pkt_len: 100,
                    q_bytes: 1400,
                    q_pkts: 2,
                    sojourn_ns: 5_000,
                    meta,
                };
                self.in_context(ctx, |p, a| p.on_dequeue(&ev, now, a));
                self.in_context(ctx, |p, a| p.on_dequeue(&ev, now, a));
            }
            EventKind::BufferOverflow => {
                let ev = OverflowEvent {
                    port: 0,
                    pkt_len: 100,
                    q_bytes: 9000,
                    meta,
                };
                self.in_context(ctx, |p, a| p.on_overflow(&ev, now, a));
            }
            EventKind::BufferUnderflow => {
                let ev = UnderflowEvent { port: 0 };
                self.in_context(ctx, |p, a| p.on_underflow(&ev, now, a));
            }
            EventKind::PacketTransmitted => {
                let ev = TransmitEvent {
                    port: 0,
                    pkt_len: 100,
                };
                self.in_context(ctx, |p, a| p.on_transmit(&ev, now, a));
            }
            EventKind::TimerExpiration => {
                let ids: Vec<u16> = if manifest.timer_ids.is_empty() {
                    vec![0]
                } else {
                    manifest.timer_ids.clone()
                };
                for id in ids {
                    for firing in 1..=2 {
                        let ev = TimerEvent {
                            timer_id: id,
                            firing,
                        };
                        self.in_context(ctx, |p, a| p.on_timer(&ev, now, a));
                    }
                }
            }
            EventKind::LinkStatusChange => {
                for port in 0..4u8 {
                    for up in [false, true] {
                        let ev = LinkStatusEvent { port, up };
                        self.in_context(ctx, |p, a| p.on_link_status(&ev, now, a));
                    }
                }
            }
            EventKind::ControlPlaneTriggered => {
                for &opcode in &manifest.cp_opcodes {
                    let ev = ControlPlaneEvent {
                        opcode,
                        args: [0; 4],
                    };
                    self.in_context(ctx, |p, a| p.on_control_plane(&ev, now, a));
                }
            }
            EventKind::UserEvent => {
                let mut codes: BTreeSet<u32> =
                    manifest.handles_user_codes.iter().copied().collect();
                codes.extend(self.raised.iter().copied());
                for code in codes {
                    let ev = UserEvent { code, args: [0; 4] };
                    self.in_context(ctx, |p, a| p.on_user(&ev, now, a));
                }
            }
            _ => unreachable!("packet events handled elsewhere"),
        }
    }
}

/// Extracts the access matrix for `program` by probing every handler the
/// manifest declares. The program is consumed conceptually: probing
/// mutates its state, so lint throwaway instances, not live ones.
pub fn extract(program: &mut dyn EventProgram, manifest: &AppManifest) -> AccessMatrix {
    probe::arm();
    let mut prober = Prober {
        program,
        now: SimTime::ZERO,
        staged_meta: [0; 4],
        raised: BTreeSet::new(),
        generated: false,
        entry: EventKind::IngressPacket,
        emissions: BTreeMap::new(),
        gen_feed: Vec::new(),
        panics: Vec::new(),
    };
    for kind in PROBE_ORDER {
        if !manifest.implements(kind) {
            continue;
        }
        prober.entry = kind;
        match kind {
            EventKind::IngressPacket
            | EventKind::EgressPacket
            | EventKind::RecirculatedPacket
            | EventKind::GeneratedPacket => prober.probe_packet_handler(kind),
            _ => prober.probe_event_handler(kind, manifest),
        }
    }
    // Feed generated frames back through `on_generated`, attributing the
    // routing decisions to the entry kind whose cascade generated them —
    // exactly how the architecture attributes emissions at runtime (the
    // entry event is the outermost dispatch context).
    let mut fed = 0;
    while fed < GEN_FEED_CAP && fed < prober.gen_feed.len() {
        let (entry, frame) = prober.gen_feed[fed].clone();
        fed += 1;
        prober.entry = entry;
        prober.probe_packet_frame(EventKind::GeneratedPacket, frame);
    }
    let panics = std::mem::take(&mut prober.panics);
    let raised = std::mem::take(&mut prober.raised);
    let observed_emissions = std::mem::take(&mut prober.emissions);
    let generated = prober.generated;
    let (records, claims, _live_emissions) = probe::disarm();

    let mut matrix = AccessMatrix {
        raised_user_codes: raised,
        generated_packets: generated,
        observed_emissions,
        panics,
        ..Default::default()
    };
    for r in records {
        if r.context.is_empty() {
            continue; // access outside any probed handler (construction)
        }
        if r.class == ProbeClass::Aggregated {
            matrix.aggregated.insert(r.register.clone());
        }
        let cell = matrix
            .rows
            .entry(r.register)
            .or_default()
            .entry(r.context)
            .or_default();
        match r.access {
            ProbeAccess::Read => cell.reads += 1,
            ProbeAccess::Write => cell.writes += 1,
            ProbeAccess::Rmw => cell.rmws += 1,
        }
    }
    for c in claims {
        if c.context.is_empty() {
            continue;
        }
        let actual = port_class(c.context);
        if c.claimed != actual {
            matrix
                .claim_mismatches
                .push((c.register, c.claimed, actual));
        }
    }
    matrix
}
