//! Negative fixtures: deliberately-broken programs and manifests, each
//! asserting the exact stable diagnostic code the analyzer must emit.
//! These pin the catalog — a code that stops firing on its canonical
//! trigger is a regression.

use edp_analyze::lint_app;
use edp_core::aggreg::MergeOp;
use edp_core::event::{DequeueEvent, EnqueueEvent, TimerEvent};
use edp_core::{AppManifest, EmitFootprint, EventActions, EventKind, EventProgram};
use edp_evsim::SimTime;
use edp_packet::{Packet, ParsedPacket};
use edp_pisa::{
    Destination, FieldMatch, MatchKind, RegisterArray, ShapeEntry, StdMeta, TableShape,
};

const SEED: u64 = 7;

/// A program implementing nothing: every handler is the pass-through
/// default. Fixtures that only exercise manifest-level lints use it.
struct Noop;
impl EventProgram for Noop {}

#[test]
fn shadowed_ternary_rule_is_e002() {
    // Entry #1 can never match: entry #0 wildcards the field at higher
    // priority.
    let shape = TableShape {
        name: "acl".into(),
        schema: vec![MatchKind::Ternary],
        entries: vec![
            ShapeEntry {
                fields: vec![FieldMatch::Any],
                priority: 100,
            },
            ShapeEntry {
                fields: vec![FieldMatch::Ternary {
                    value: 0x0A00_0000,
                    mask: 0xFF00_0000,
                }],
                priority: 1,
            },
        ],
    };
    let manifest = AppManifest::new("fixture-shadowed").table(shape);
    let report = lint_app(&mut Noop, &manifest, SEED);
    assert!(
        report.has_code("EDP-E002"),
        "expected EDP-E002 shadowed-rule, got: {:?}",
        report.diagnostics
    );
    assert!(report.errors() >= 1);
}

#[test]
fn non_commutative_merge_is_e001() {
    fn sat_sub(a: u64, b: u64) -> u64 {
        a.saturating_sub(b)
    }
    let manifest = AppManifest::new("fixture-merge").merge_op(MergeOp {
        name: "sat-sub",
        identity: 0,
        apply: sat_sub,
    });
    let report = lint_app(&mut Noop, &manifest, SEED);
    assert!(
        report.has_code("EDP-E001"),
        "expected EDP-E001 merge-not-commutative, got: {:?}",
        report.diagnostics
    );
}

/// Writes one plain register from both buffer-event contexts — the §4
/// single-port violation the analyzer exists to catch.
struct MultiWriter {
    occ: RegisterArray,
}

impl EventProgram for MultiWriter {
    fn on_enqueue(&mut self, ev: &EnqueueEvent, _now: SimTime, _a: &mut EventActions) {
        self.occ.add(0, ev.pkt_len as u64);
    }
    fn on_dequeue(&mut self, ev: &DequeueEvent, _now: SimTime, _a: &mut EventActions) {
        self.occ.sub(0, ev.pkt_len as u64);
    }
}

fn multi_writer_manifest() -> AppManifest {
    AppManifest::new("fixture-multi-writer")
        .handles([EventKind::BufferEnqueue, EventKind::BufferDequeue])
}

#[test]
fn multi_writer_register_is_w001() {
    let mut program = MultiWriter {
        occ: RegisterArray::new("occ", 4),
    };
    let report = lint_app(&mut program, &multi_writer_manifest(), SEED);
    assert!(
        report.has_code("EDP-W001"),
        "expected EDP-W001 multi-writer-register, got: {:?}",
        report.diagnostics
    );
    // Both contexts RMW, so the cross-handler-RMW lint fires too.
    assert!(report.has_code("EDP-W002"));
}

#[test]
fn allow_moves_finding_to_allowed_not_silence() {
    let mut program = MultiWriter {
        occ: RegisterArray::new("occ", 4),
    };
    let manifest = multi_writer_manifest()
        .allow("EDP-W001", "occ", "fixture: intentional")
        .allow("EDP-W002", "occ", "fixture: intentional");
    let report = lint_app(&mut program, &manifest, SEED);
    assert!(!report.has_code("EDP-W001"));
    assert!(!report.has_code("EDP-W002"));
    assert_eq!(report.allowed.len(), 2, "allowed findings stay visible");
    assert_eq!(report.warnings(), 0);

    // The allow is scoped to its exact subject: a different register
    // would not be covered.
    let mut other = MultiWriter {
        occ: RegisterArray::new("other_reg", 4),
    };
    let report = lint_app(&mut other, &manifest, SEED);
    assert!(report.has_code("EDP-W001"));
}

/// Raises a user-event code nothing handles.
struct Raiser;
impl EventProgram for Raiser {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        _parsed: &ParsedPacket,
        _meta: &mut StdMeta,
        _now: SimTime,
        actions: &mut EventActions,
    ) {
        actions.raise_user_event(42, [0; 4]);
    }
}

#[test]
fn unhandled_user_event_is_w006() {
    let manifest = AppManifest::new("fixture-raiser").handles([EventKind::IngressPacket]);
    let report = lint_app(&mut Raiser, &manifest, SEED);
    let w006 = report
        .diagnostics
        .iter()
        .find(|d| d.code.code() == "EDP-W006")
        .unwrap_or_else(|| panic!("expected EDP-W006, got: {:?}", report.diagnostics));
    assert_eq!(w006.subject, "42");
}

/// Forwards ingress traffic and, on every timer, generates a frame the
/// (default) generated pass routes right back out — a timer cascade
/// that emits.
struct CovertTimerEmitter;
impl EventProgram for CovertTimerEmitter {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        _parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        meta.dest = Destination::Port(1);
    }
    fn on_timer(&mut self, _ev: &TimerEvent, _now: SimTime, a: &mut EventActions) {
        a.generate_packet(
            edp_packet::PacketBuilder::udp(
                std::net::Ipv4Addr::new(10, 0, 0, 5),
                std::net::Ipv4Addr::new(10, 0, 0, 6),
                5,
                6,
                &[],
            )
            .build(),
        );
    }
}

fn emitter_manifest() -> AppManifest {
    AppManifest::new("fixture-emitter")
        .handles([EventKind::IngressPacket, EventKind::TimerExpiration])
        .timers([0])
}

#[test]
fn undeclared_emission_is_w008() {
    // No emission declarations at all: the app is open-world, and every
    // probed emission — here the plain ingress forward — is the nudge
    // to close it.
    let report = lint_app(&mut CovertTimerEmitter, &emitter_manifest(), SEED);
    let w008 = report
        .diagnostics
        .iter()
        .find(|d| d.code.code() == "EDP-W008")
        .unwrap_or_else(|| panic!("expected EDP-W008, got: {:?}", report.diagnostics));
    assert_eq!(w008.subject, EventKind::IngressPacket.name());
    // Open-world means nothing can be *violated*.
    assert!(!report.has_code("EDP-E007"));
}

#[test]
fn summary_violation_is_e007() {
    // Declares only the ingress footprint, silently omitting both the
    // `generates()` flag and the timer's generated-frame cascade. The
    // closed world then claims closure(Timer) = None while probing
    // watches the timer cascade emit: the exact lie the sharded engine
    // must never load as a certificate.
    let manifest = emitter_manifest().emits(EventKind::IngressPacket, EmitFootprint::Any);
    let report = lint_app(&mut CovertTimerEmitter, &manifest, SEED);
    let e007 = report
        .diagnostics
        .iter()
        .find(|d| d.code.code() == "EDP-E007")
        .unwrap_or_else(|| panic!("expected EDP-E007, got: {:?}", report.diagnostics));
    assert_eq!(e007.subject, EventKind::TimerExpiration.name());
    assert!(report.errors() >= 1, "EDP-E007 must gate as an error");

    // The honest declaration of the same program is clean.
    let honest = emitter_manifest()
        .generates()
        .emits(EventKind::IngressPacket, EmitFootprint::Any)
        .emits(EventKind::GeneratedPacket, EmitFootprint::Any);
    let report = lint_app(&mut CovertTimerEmitter, &honest, SEED);
    assert!(!report.has_code("EDP-E007"), "{:?}", report.diagnostics);
    assert!(!report.has_code("EDP-W008"));
}
