//! Property: every mutating `MatchTable` operation bumps `generation`.
//!
//! The flow cache keys its validity on the table generation counter; a
//! mutation that forgets to bump it would serve stale cached actions.
//! This pins `insert`, `remove_where` (including predicates that remove
//! nothing), and `clear`.

use edp_pisa::{ipv4_lpm_schema, FieldMatch, MatchTable, TableEntry};
use proptest::prelude::*;

fn table_with_routes(routes: &[(u32, u8)]) -> MatchTable<u32> {
    let mut t = MatchTable::new("routes", ipv4_lpm_schema());
    for (i, &(addr, plen)) in routes.iter().enumerate() {
        let plen = plen.min(32);
        t.insert(TableEntry {
            fields: vec![FieldMatch::Lpm {
                value: addr as u64,
                prefix_len: plen,
            }],
            priority: 0,
            action: i as u32,
        });
    }
    t
}

proptest! {
    #[test]
    fn mutations_always_bump_generation(
        routes in prop::collection::vec((any::<u32>(), 0u8..=32), 1..20),
        threshold in any::<u32>(),
    ) {
        let mut t = table_with_routes(&routes);
        let after_inserts = t.generation();
        prop_assert_eq!(after_inserts, routes.len() as u64,
            "each insert bumps generation once");

        // remove_where bumps even when the predicate removes nothing.
        let g0 = t.generation();
        t.remove_where(|e| e.action >= threshold);
        prop_assert_eq!(t.generation(), g0 + 1);
        let g1 = t.generation();
        t.remove_where(|_| false);
        prop_assert_eq!(t.generation(), g1 + 1);

        let g2 = t.generation();
        t.clear();
        prop_assert_eq!(t.generation(), g2 + 1);
        prop_assert_eq!(t.entries().len(), 0);
    }
}
