//! Soundness property for the effect-summary analysis: every emission
//! the *live* runtime records under randomized traffic must be covered
//! by the static `EffectSummary` closure of the cascade's entry kind.
//!
//! This is the other half of the EDP-W008/EDP-E007 cross-check. The
//! lint compares the analysis prober's observations against the
//! declarations; this test compares the real `EventSwitch` dispatch
//! path — queues, overflow trims, recirculation, generated frames,
//! timers, control-plane opcodes, link flaps — against the same
//! declarations. If it fails, a manifest is lying and the sharded
//! engine would certify events an app in fact publishes on.

use edp_apps::registry::builtin_apps;
use edp_core::{EffectSummary, EventKind, EventSwitch, EventSwitchConfig, TimerSpec};
use edp_evsim::{SimDuration, SimTime};
use edp_packet::{Packet, PacketBuilder};
use edp_pisa::probe;
use proptest::prelude::*;
use std::net::Ipv4Addr;

const N_PORTS: usize = 4;

/// One randomized stimulus step against the switch under test.
#[derive(Debug, Clone)]
enum Step {
    /// Offer a UDP frame on an ingress port.
    Packet {
        port: u8,
        src: u8,
        dst: u8,
        sport: u16,
        dport: u16,
        pad: u16,
    },
    /// Drain one frame from every egress queue.
    Drain,
    /// Advance time far enough for every armed timer to fire.
    Timers,
    /// Flap a link down and back up.
    Flap { port: u8 },
    /// Raise a control-plane opcode the app declares it understands.
    ControlPlane { which: u8, arg: u64 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => (0..N_PORTS as u8, any::<u8>(), any::<u8>(), any::<u16>(), any::<u16>(), 0..600u16)
            .prop_map(|(port, src, dst, sport, dport, pad)| Step::Packet {
                port, src, dst, sport, dport, pad,
            }),
        2 => Just(Step::Drain),
        1 => Just(Step::Timers),
        1 => (0..N_PORTS as u8).prop_map(|port| Step::Flap { port }),
        1 => (any::<u8>(), any::<u64>())
            .prop_map(|(which, arg)| Step::ControlPlane { which, arg }),
    ]
}

fn frame(src: u8, dst: u8, sport: u16, dport: u16, pad: u16) -> Packet {
    Packet::anonymous(
        PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, src),
            Ipv4Addr::new(10, 0, 1, dst),
            sport,
            dport,
            b"soundness",
        )
        .pad_to(64 + pad as usize)
        .build(),
    )
}

/// Maps a recorded emission's entry-context string back to the event
/// kind whose closure must cover it.
fn entry_kind(entry: &str) -> EventKind {
    *EventKind::ALL
        .iter()
        .find(|k| k.probe_context() == entry)
        .unwrap_or_else(|| panic!("emission entry context `{entry}` matches no event kind"))
}

/// Runs one app under the step sequence with the probe armed and
/// asserts every recorded emission lands inside the static closure of
/// its cascade's entry kind.
fn check_app(name: &'static str, steps: &[Step]) {
    let app = builtin_apps()
        .into_iter()
        .find(|a| a.manifest.name == name)
        .expect("registry app");
    let summary = EffectSummary::from_manifest(&app.manifest);
    assert!(summary.closed_world, "{name} must declare its emissions");

    let timers: Vec<TimerSpec> = app
        .manifest
        .timer_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| TimerSpec {
            id,
            period: SimDuration::from_micros(50 + 10 * i as u64),
            start: SimDuration::from_micros(50 + 10 * i as u64),
        })
        .collect();
    let cfg = EventSwitchConfig {
        n_ports: N_PORTS,
        timers,
        ..Default::default()
    };
    let mut sw = EventSwitch::new(app.program, cfg);
    let cp_ops = app.manifest.cp_opcodes.clone();

    probe::arm();
    let mut now = SimTime::ZERO;
    for step in steps {
        now += SimDuration::from_nanos(500);
        match step {
            Step::Packet {
                port,
                src,
                dst,
                sport,
                dport,
                pad,
            } => sw.receive(now, *port, frame(*src, *dst, *sport, *dport, *pad)),
            Step::Drain => {
                for p in 0..N_PORTS as u8 {
                    sw.transmit(now, p);
                }
            }
            Step::Timers => {
                now += SimDuration::from_micros(120);
                sw.fire_due_timers(now);
            }
            Step::Flap { port } => {
                sw.set_link_status(now, *port, false);
                sw.set_link_status(now, *port, true);
            }
            Step::ControlPlane { which, arg } => {
                if !cp_ops.is_empty() {
                    let op = cp_ops[*which as usize % cp_ops.len()];
                    // Args stay in the shapes CP channels actually carry
                    // (addr, prefix ≤ 32, valid port): garbage tripping an
                    // app-internal assert isn't the property under test.
                    let args = [
                        *arg & 0xffff_ffff,
                        (*arg >> 32) & 31,
                        (*arg >> 40) % N_PORTS as u64,
                        *arg >> 48,
                    ];
                    sw.control_plane(now, op, args);
                }
            }
        }
    }
    // Drain whatever the final steps queued so egress-context emissions
    // are exercised too.
    now += SimDuration::from_micros(1);
    for p in 0..N_PORTS as u8 {
        sw.transmit_burst(now, p, 64);
    }
    let (_records, _claims, emissions) = probe::disarm();

    for e in &emissions {
        let kind = entry_kind(e.entry);
        let closure = summary.closure(kind);
        assert!(
            closure.covers_port(e.port as u8),
            "{name}: live runtime emitted on port {} from the {} cascade \
             (innermost context `{}`), outside the declared closure {closure}",
            e.port,
            kind.name(),
            e.context,
        );
    }
}

/// One generated-per-app proptest keeps failures attributable: a
/// violating app names itself in the test id, not just the message.
macro_rules! soundness {
    ($($test:ident => $app:literal),+ $(,)?) => {$(
        proptest! {
            #![proptest_config(ProptestConfig { cases: 24 })]
            #[test]
            fn $test(steps in prop::collection::vec(step_strategy(), 1..80)) {
                check_app($app, &steps);
            }
        }
    )+};
}

soundness! {
    microburst_emissions_within_summary => "microburst",
    hula_leaf_emissions_within_summary => "hula-leaf",
    hula_spine_emissions_within_summary => "hula-spine",
    ndp_trim_emissions_within_summary => "ndp-trim",
    timer_policer_emissions_within_summary => "timer-policer",
    state_migrate_emissions_within_summary => "state-migrate",
    telemetry_marker_emissions_within_summary => "telemetry-marker",
    rate_monitor_emissions_within_summary => "rate-monitor",
    liveness_monitor_emissions_within_summary => "liveness-monitor",
    frr_emissions_within_summary => "frr",
    fred_aqm_emissions_within_summary => "fred-aqm",
    netcache_emissions_within_summary => "netcache",
    cms_monitor_emissions_within_summary => "cms-monitor",
    stfq_scheduler_emissions_within_summary => "stfq-scheduler",
    int_reduce_emissions_within_summary => "int-reduce",
    baseline_router_emissions_within_summary => "baseline-router",
}

/// Guards against the property passing vacuously: a deterministic
/// forwarding workload must actually record emissions for the subset
/// check to range over.
#[test]
fn live_probe_observes_emissions() {
    let steps: Vec<Step> = (0..16)
        .map(|i| Step::Packet {
            port: i % N_PORTS as u8,
            src: i,
            dst: i.wrapping_add(1),
            sport: 40_000 + i as u16,
            dport: 9,
            pad: 0,
        })
        .chain(std::iter::once(Step::Drain))
        .collect();
    let app = builtin_apps()
        .into_iter()
        .find(|a| a.manifest.name == "microburst")
        .expect("registry app");
    let cfg = EventSwitchConfig {
        n_ports: N_PORTS,
        ..Default::default()
    };
    let mut sw = EventSwitch::new(app.program, cfg);
    probe::arm();
    let mut now = SimTime::ZERO;
    for step in &steps {
        now += SimDuration::from_nanos(500);
        match step {
            Step::Packet {
                port,
                src,
                dst,
                sport,
                dport,
                pad,
            } => sw.receive(now, *port, frame(*src, *dst, *sport, *dport, *pad)),
            Step::Drain => {
                for p in 0..N_PORTS as u8 {
                    sw.transmit_burst(now, p, 64);
                }
            }
            _ => unreachable!(),
        }
    }
    let (_r, _c, emissions) = probe::disarm();
    assert!(
        !emissions.is_empty(),
        "a forwarding app under live traffic must record emissions"
    );
    assert!(emissions
        .iter()
        .all(|e| e.entry == EventKind::IngressPacket.probe_context()));
}

/// The registry must stay in sync with the macro above: a new app that
/// isn't covered by a soundness property is a silent gap.
#[test]
fn soundness_covers_every_registered_app() {
    let covered = [
        "microburst",
        "hula-leaf",
        "hula-spine",
        "ndp-trim",
        "timer-policer",
        "state-migrate",
        "telemetry-marker",
        "rate-monitor",
        "liveness-monitor",
        "frr",
        "fred-aqm",
        "netcache",
        "cms-monitor",
        "stfq-scheduler",
        "int-reduce",
        "baseline-router",
    ];
    for app in builtin_apps() {
        assert!(
            covered.contains(&app.manifest.name),
            "app `{}` has no emission-soundness property",
            app.manifest.name
        );
    }
}
