//! Quickstart: build an event-driven switch, wire it into a small
//! network, and watch data-plane events fire.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use edp_core::event::{DequeueEvent, EnqueueEvent, TimerEvent};
use edp_core::{EventActions, EventKind, EventProgram, EventSwitch, EventSwitchConfig, TimerSpec};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::start_cbr;
use edp_netsim::{Host, HostApp, LinkSpec, Network, NodeRef};
use edp_packet::{Packet, PacketBuilder, ParsedPacket};
use edp_pisa::{Destination, QueueConfig, StdMeta};
use std::net::Ipv4Addr;

/// A first event-driven program: forward everything to port 1 and keep a
/// few statistics that are *impossible* to compute in a baseline PISA
/// program — queue sojourn times and bytes-in-buffer, straight from
/// enqueue/dequeue events.
#[derive(Default)]
struct Watcher {
    enqueued_bytes: u64,
    dequeued_bytes: u64,
    max_sojourn_ns: u64,
    timer_ticks: u64,
}

impl EventProgram for Watcher {
    fn on_ingress(
        &mut self,
        _pkt: &mut Packet,
        _parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
        _a: &mut EventActions,
    ) {
        meta.dest = Destination::Port(1);
    }

    fn on_enqueue(&mut self, ev: &EnqueueEvent, _now: SimTime, _a: &mut EventActions) {
        self.enqueued_bytes += ev.pkt_len as u64;
    }

    fn on_dequeue(&mut self, ev: &DequeueEvent, _now: SimTime, _a: &mut EventActions) {
        self.dequeued_bytes += ev.pkt_len as u64;
        self.max_sojourn_ns = self.max_sojourn_ns.max(ev.sojourn_ns);
    }

    fn on_timer(&mut self, _ev: &TimerEvent, _now: SimTime, _a: &mut EventActions) {
        self.timer_ticks += 1;
    }
}

fn main() {
    // An event switch with one periodic timer.
    let cfg = EventSwitchConfig {
        n_ports: 2,
        queue: QueueConfig::default(),
        timers: vec![TimerSpec {
            id: 0,
            period: SimDuration::from_millis(1),
            start: SimDuration::from_millis(1),
        }],
        ..Default::default()
    };
    let switch = EventSwitch::new(Watcher::default(), cfg);

    // host A --- switch --- host B
    let mut net = Network::new(42);
    let sw = net.add_switch(Box::new(switch));
    let a = net.add_host(Host::new(Ipv4Addr::new(10, 0, 0, 1), HostApp::Sink));
    let b = net.add_host(Host::new(Ipv4Addr::new(10, 0, 0, 2), HostApp::Sink));
    let spec = LinkSpec::ten_gig(SimDuration::from_micros(1));
    net.connect((NodeRef::Host(a), 0), (NodeRef::Switch(sw), 0), spec);
    net.connect((NodeRef::Switch(sw), 1), (NodeRef::Host(b), 0), spec);

    // 1000 × 1500 B packets, one every 5 µs (2.4 Gb/s).
    let mut sim: Sim<Network> = Sim::new();
    start_cbr(
        &mut sim,
        a,
        SimTime::ZERO,
        SimDuration::from_micros(5),
        1000,
        |i| {
            PacketBuilder::udp(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                5000,
                8080,
                &[],
            )
            .ident(i as u16)
            .pad_to(1500)
            .build()
        },
    );
    net.arm_all_timers(&mut sim);
    sim.run_until(&mut net, SimTime::from_millis(10));

    let sw_ref = net.switch_as::<EventSwitch<Watcher>>(0);
    let w = &sw_ref.program;
    println!("=== quickstart: event-driven packet processing ===");
    println!("simulated time : {}", sim.now());
    println!("packets at B   : {}", net.hosts[b].stats.rx_pkts);
    println!("enqueued bytes : {}", w.enqueued_bytes);
    println!("dequeued bytes : {}", w.dequeued_bytes);
    println!("max sojourn    : {} ns", w.max_sojourn_ns);
    println!("timer ticks    : {}", w.timer_ticks);
    println!();
    println!("event coverage (Table 1 kinds seen by this run):");
    let counters = sw_ref.event_counters();
    for kind in EventKind::ALL {
        let n = counters.get(kind);
        if n > 0 {
            println!("  {:<24} {n}", kind.name());
        }
    }
}
