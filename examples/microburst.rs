//! The paper's §2 worked example: microburst-culprit detection.
//!
//! Runs the event-driven `microburst.p4` program and the Snappy-style
//! baseline against the same workload — two polite flows plus one
//! microbursting flow — and prints detections, detection latency, and
//! the stateful-memory comparison (the paper's "at least four-fold"
//! claim).
//!
//! ```sh
//! cargo run --example microburst
//! ```

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::microburst::{MicroburstBaseline, MicroburstEvent};
use edp_core::{EventSwitch, EventSwitchConfig};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::{start_burst, start_cbr};
use edp_netsim::Network;
use edp_packet::PacketBuilder;
use edp_pisa::{BaselineSwitch, QueueConfig};

const THRESH: u64 = 20_000;
const N_FLOWS: usize = 256;
const BURST_AT: SimTime = SimTime::from_millis(5);

fn queue_cfg() -> QueueConfig {
    QueueConfig {
        capacity_bytes: 300_000,
        ..QueueConfig::default()
    }
}

fn workload(sim: &mut Sim<Network>, senders: &[usize]) {
    // Two polite flows.
    for (i, &h) in senders.iter().take(2).enumerate() {
        let src = addr(i as u8 + 1);
        start_cbr(
            sim,
            h,
            SimTime::ZERO,
            SimDuration::from_micros(100),
            300,
            move |s| {
                PacketBuilder::udp(src, sink_addr(), 10 + i as u16, 20, &[])
                    .ident(s as u16)
                    .pad_to(1500)
                    .build()
            },
        );
    }
    // One 150-packet microburst.
    let src = addr(3);
    start_burst(
        sim,
        senders[2],
        BURST_AT,
        150,
        SimDuration::ZERO,
        move |s| {
            PacketBuilder::udp(src, sink_addr(), 30, 40, &[])
                .ident(s as u16)
                .pad_to(1500)
                .build()
        },
    );
}

fn main() {
    println!("=== microburst culprit detection (paper §2) ===\n");

    // --- Event-driven (microburst.p4) ---
    let cfg = EventSwitchConfig {
        n_ports: 4,
        queue: queue_cfg(),
        ..Default::default()
    };
    let sw = EventSwitch::new(MicroburstEvent::new(N_FLOWS, THRESH, 3), cfg);
    let (mut net, senders, _, _) = dumbbell(Box::new(sw), 3, 1_000_000_000, 7);
    let mut sim: Sim<Network> = Sim::new();
    workload(&mut sim, &senders);
    run_until(&mut net, &mut sim, SimTime::from_millis(40));
    let ev = &net.switch_as::<EventSwitch<MicroburstEvent>>(0).program;

    println!("event-driven (1 shared_register, detect at INGRESS):");
    println!("  state words          : {}", ev.state_words());
    println!("  detections           : {}", ev.detections.len());
    if let Some(d) = ev.detections.first() {
        println!(
            "  first detection      : {} ({} after burst start)",
            d.at,
            d.at - BURST_AT
        );
        println!("  flagged flow index   : {}", d.flow_index);
        println!("  occupancy at flag    : {} bytes", d.occupancy);
    }

    // --- Baseline (Snappy-style) ---
    let prog = MicroburstBaseline::new(N_FLOWS, THRESH, 240_000, 3);
    let sw = BaselineSwitch::new(prog, 4, queue_cfg());
    let (mut net, senders, _, _) = dumbbell(Box::new(sw), 3, 1_000_000_000, 7);
    let mut sim: Sim<Network> = Sim::new();
    workload(&mut sim, &senders);
    run_until(&mut net, &mut sim, SimTime::from_millis(40));
    let base = &net
        .switch_as::<BaselineSwitch<MicroburstBaseline>>(0)
        .program;

    println!("\nbaseline (4 register arrays, detect at EGRESS):");
    println!("  state words          : {}", base.state_words());
    println!("  detections           : {}", base.detections.len());
    if let Some(d) = base.detections.first() {
        println!(
            "  first detection      : {} ({} after burst start)",
            d.at,
            d.at - BURST_AT
        );
    }

    println!("\ncomparison:");
    println!(
        "  state reduction      : {:.1}x (paper claims \"at least four-fold\")",
        base.state_words() as f64 / ev.state_words() as f64
    );
    match (ev.detections.first(), base.detections.first()) {
        (Some(e), Some(b)) => println!(
            "  detection lead       : event-driven earlier by {}",
            b.at.saturating_since(e.at)
        ),
        _ => println!("  detection lead       : n/a"),
    }
}
