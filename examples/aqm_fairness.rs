//! Flow-fair AQM from enqueue/dequeue events vs. drop-tail.
//!
//! Three polite 40 Mb/s flows share a 100 Mb/s bottleneck with one
//! 400 Mb/s hog. The event-driven FRED program tracks per-flow buffer
//! occupancy and active-flow count purely from enqueue/dequeue events and
//! caps each flow at its fair share; drop-tail lets the hog win.
//!
//! ```sh
//! cargo run --example aqm_fairness
//! ```

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::fred::{FredAqm, TIMER_REPORT};
use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
use edp_evsim::{jain_fairness, Sim, SimDuration, SimTime};
use edp_netsim::traffic::start_cbr;
use edp_netsim::Network;
use edp_packet::PacketBuilder;
use edp_pisa::{BaselineSwitch, ForwardTo, QueueConfig};

const CAPACITY: u64 = 30_000;
const BOTTLENECK: u64 = 100_000_000;
const N: usize = 4; // 3 polite + 1 hog
const HORIZON: SimTime = SimTime::from_millis(200);

fn queue_cfg() -> QueueConfig {
    QueueConfig {
        capacity_bytes: CAPACITY,
        ..QueueConfig::default()
    }
}

fn run(fair: bool) -> (Vec<f64>, Option<f64>) {
    let (mut net, senders, sink, _) = if fair {
        let cfg = EventSwitchConfig {
            n_ports: 5,
            queue: queue_cfg(),
            timers: vec![TimerSpec {
                id: TIMER_REPORT,
                period: SimDuration::from_millis(1),
                start: SimDuration::from_millis(1),
            }],
            ..Default::default()
        };
        let sw = EventSwitch::new(FredAqm::new(64, CAPACITY, 2000, 4), cfg);
        dumbbell(Box::new(sw), N, BOTTLENECK, 5)
    } else {
        dumbbell(
            Box::new(BaselineSwitch::new(ForwardTo(4), 5, queue_cfg())),
            N,
            BOTTLENECK,
            5,
        )
    };
    let mut sim: Sim<Network> = Sim::new();
    for (i, &h) in senders.iter().enumerate() {
        let src = addr(i as u8 + 1);
        let port = 1000 + i as u16;
        let interval = if i == N - 1 {
            SimDuration::from_micros(30) // hog: 400 Mb/s
        } else {
            SimDuration::from_micros(300) // polite: 40 Mb/s
        };
        start_cbr(&mut sim, h, SimTime::ZERO, interval, u64::MAX, move |s| {
            PacketBuilder::udp(src, sink_addr(), port, 9000, &[])
                .ident(s as u16)
                .pad_to(1500)
                .build()
        });
    }
    run_until(&mut net, &mut sim, HORIZON);
    let goodputs: Vec<f64> = (0..N)
        .map(|i| {
            let key = edp_packet::FlowKey::new(
                addr(i as u8 + 1),
                sink_addr(),
                edp_packet::IpProto::Udp,
                1000 + i as u16,
                9000,
            );
            net.hosts[sink]
                .stats
                .flows
                .get(&key)
                .map(|f| f.bytes as f64 * 8.0 / HORIZON.as_secs_f64())
                .unwrap_or(0.0)
        })
        .collect();
    let mean_occ = fair.then(|| {
        net.switch_as::<EventSwitch<FredAqm>>(0)
            .program
            .occupancy_series
            .time_weighted_mean()
    });
    (goodputs, mean_occ)
}

fn main() {
    println!("=== flow-fair AQM from enqueue/dequeue events ===");
    println!("3 polite flows @40 Mb/s + 1 hog @400 Mb/s into 100 Mb/s\n");
    let (droptail, _) = run(false);
    let (fred, occ) = run(true);
    println!(
        "{:<10} {:>16} {:>16}",
        "flow", "droptail (Mb/s)", "FRED (Mb/s)"
    );
    for i in 0..N {
        let label = if i == N - 1 { "hog" } else { "polite" };
        println!(
            "{:<10} {:>16.1} {:>16.1}",
            format!("{i} ({label})"),
            droptail[i] / 1e6,
            fred[i] / 1e6
        );
    }
    println!(
        "\nJain fairness: droptail {:.3} -> FRED {:.3}",
        jain_fairness(&droptail),
        jain_fairness(&fred)
    );
    if let Some(occ) = occ {
        println!("mean buffer occupancy (from data-plane reports): {occ:.0} bytes");
    }
}
