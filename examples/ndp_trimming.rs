//! NDP-style packet trimming from the buffer-overflow event.
//!
//! A burst overruns a small switch buffer. With drop-tail, the victims
//! vanish and the receiver learns nothing. With the event-driven program
//! (one line in `on_overflow`!), every victim is trimmed to its headers
//! and forwarded at high priority, so the receiver knows exactly which
//! packets to pull again.
//!
//! ```sh
//! cargo run --example ndp_trimming
//! ```

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::ndp::NdpTrim;
use edp_core::event::OverflowEvent;
use edp_core::{EventActions, EventProgram, EventSwitch, EventSwitchConfig};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::start_burst;
use edp_netsim::Network;
use edp_packet::{Packet, PacketBuilder, ParsedPacket, TRIMMED_DSCP};
use edp_pisa::{QueueConfig, QueueDisc, StdMeta};

#[derive(Debug)]
struct NoTrim(NdpTrim);
impl EventProgram for NoTrim {
    fn on_ingress(
        &mut self,
        p: &mut Packet,
        h: &ParsedPacket,
        m: &mut StdMeta,
        t: SimTime,
        a: &mut EventActions,
    ) {
        self.0.on_ingress(p, h, m, t, a)
    }
    fn on_overflow(&mut self, _e: &OverflowEvent, _t: SimTime, _a: &mut EventActions) {
        self.0.overflows += 1;
    }
}

fn cfg() -> EventSwitchConfig {
    EventSwitchConfig {
        n_ports: 2,
        queue: QueueConfig {
            capacity_bytes: 20_000,
            disc: QueueDisc::StrictPriority { classes: 2 },
            rank0_headroom: 8_000,
        },
        ..Default::default()
    }
}

fn blast(net: &mut Network, sim: &mut Sim<Network>, sender: usize) {
    let src = addr(1);
    start_burst(
        sim,
        sender,
        SimTime::ZERO,
        100,
        SimDuration::ZERO,
        move |i| {
            PacketBuilder::udp(src, sink_addr(), 40, 50, &[])
                .ident(i as u16)
                .pad_to(1500)
                .build()
        },
    );
    run_until(net, sim, SimTime::from_millis(50));
}

fn main() {
    println!("=== NDP packet trimming (buffer overflow events) ===");
    println!("burst: 100 x 1500 B into a 20 KB buffer, 100 Mb/s drain\n");

    let (mut net, senders, sink, _) = dumbbell(
        Box::new(EventSwitch::new(NoTrim(NdpTrim::new(1)), cfg())),
        1,
        100_000_000,
        7,
    );
    let mut sim: Sim<Network> = Sim::new();
    blast(&mut net, &mut sim, senders[0]);
    let d_rx = net.hosts[sink].stats.rx_pkts;
    println!(
        "drop-tail  : {d_rx}/100 arrive, {} silent losses",
        100 - d_rx
    );

    let (mut net, senders, sink, _) = dumbbell(
        Box::new(EventSwitch::new(NdpTrim::new(1), cfg())),
        1,
        100_000_000,
        7,
    );
    let mut sim: Sim<Network> = Sim::new();
    net.tracer.enabled = true;
    blast(&mut net, &mut sim, senders[0]);
    let t_rx = net.hosts[sink].stats.rx_pkts;
    let c = net.switch_as::<EventSwitch<NdpTrim>>(0).counters();
    println!(
        "with trim  : {t_rx}/100 arrive ({} full + {} trimmed headers), {} lost",
        t_rx - c.trimmed,
        c.trimmed,
        c.dropped_overflow
    );
    println!("\nfirst trimmed frame on the wire (DSCP {TRIMMED_DSCP} = trim marker):");
    for e in net.tracer.entries() {
        if matches!(e.kind, edp_netsim::TraceKind::Rx { len: 42, .. }) {
            println!("  {}", e.render());
            break;
        }
    }
}
