//! Fast re-route: data-plane link-status events vs. the control loop.
//!
//! A primary link dies mid-stream. The event-driven switch flips to its
//! backup path inside the link-status event handler; the baseline switch
//! blackholes traffic until the controller installs a new route. The
//! sweep shows packets lost as a function of control-loop latency.
//!
//! ```sh
//! cargo run --example fast_reroute
//! ```

use edp_apps::common::{addr, run_until};
use edp_apps::frr::{FrrBaseline, FrrEvent, CP_OP_SET_ROUTE};
use edp_core::{EventSwitch, EventSwitchConfig};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::start_cbr;
use edp_netsim::{Host, HostApp, LinkSpec, Network, NodeRef, SwitchHarness};
use edp_packet::PacketBuilder;
use edp_pisa::{BaselineSwitch, ForwardTo, QueueConfig};

const FAIL_AT: SimTime = SimTime::from_millis(5);
const PKTS: u64 = 1500;
const INTERVAL: SimDuration = SimDuration::from_micros(10);

/// h0 — swA —(primary L1 / backup L2)— swR — sink.
fn diamond(sw_a: Box<dyn SwitchHarness>) -> (Network, usize, usize, usize) {
    let mut net = Network::new(77);
    let a = net.add_switch(sw_a);
    let r = net.add_switch(Box::new(BaselineSwitch::new(
        ForwardTo(2),
        3,
        QueueConfig::default(),
    )));
    let h0 = net.add_host(Host::new(addr(1), HostApp::Sink));
    let sink = net.add_host(Host::new(addr(9), HostApp::Sink));
    let spec = LinkSpec::ten_gig(SimDuration::from_micros(1));
    net.connect((NodeRef::Host(h0), 0), (NodeRef::Switch(a), 0), spec);
    let primary = net.connect((NodeRef::Switch(a), 1), (NodeRef::Switch(r), 0), spec);
    net.connect((NodeRef::Switch(a), 2), (NodeRef::Switch(r), 1), spec);
    net.connect((NodeRef::Switch(r), 2), (NodeRef::Host(sink), 0), spec);
    (net, h0, sink, primary)
}

fn send(sim: &mut Sim<Network>, sender: usize) {
    let src = addr(1);
    start_cbr(sim, sender, SimTime::ZERO, INTERVAL, PKTS, move |i| {
        PacketBuilder::udp(src, addr(9), 1, 2, &[])
            .ident(i as u16)
            .pad_to(500)
            .build()
    });
}

fn run_event() -> u64 {
    let cfg = EventSwitchConfig {
        n_ports: 3,
        ..Default::default()
    };
    let sw = EventSwitch::new(FrrEvent::new(1, 2), cfg);
    let (mut net, sender, sink, primary) = diamond(Box::new(sw));
    let mut sim: Sim<Network> = Sim::new();
    net.schedule_link_failure(&mut sim, primary, FAIL_AT, None);
    send(&mut sim, sender);
    run_until(&mut net, &mut sim, SimTime::from_millis(40));
    PKTS - net.hosts[sink].stats.rx_pkts
}

fn run_baseline(cp_latency: SimDuration) -> u64 {
    let sw = BaselineSwitch::new(FrrBaseline::new(1), 3, QueueConfig::default());
    let (mut net, sender, sink, primary) = diamond(Box::new(sw));
    let mut sim: Sim<Network> = Sim::new();
    net.schedule_link_failure(&mut sim, primary, FAIL_AT, None);
    sim.schedule_at(FAIL_AT, move |w: &mut Network, s: &mut Sim<Network>| {
        w.control_plane_send(s, cp_latency, 0, CP_OP_SET_ROUTE, [2, 0, 0, 0]);
    });
    send(&mut sim, sender);
    run_until(&mut net, &mut sim, SimTime::from_millis(40));
    PKTS - net.hosts[sink].stats.rx_pkts
}

fn main() {
    println!("=== fast re-route: link-status events vs control loop ===");
    println!("failure at {FAIL_AT}, one 500 B packet per {INTERVAL}\n");
    println!("{:<32} {:>14}", "variant", "packets lost");
    println!(
        "{:<32} {:>14}",
        "event-driven (on_link_status)",
        run_event()
    );
    for ms in [1u64, 2, 5, 10] {
        let lost = run_baseline(SimDuration::from_millis(ms));
        println!(
            "{:<32} {:>14}",
            format!("baseline, {ms} ms control loop"),
            lost
        );
    }
    println!("\nthe control loop converts directly into blackholed packets;");
    println!("the event-driven switch loses only what was in flight.");
}
