//! HULA-style congestion-aware load balancing vs. ECMP.
//!
//! A 2-leaf / 2-spine fabric where one spine's downlink is 10× slower.
//! The event-driven leaves generate probes from timer events; the spines
//! measure their own egress utilization from packet-transmitted events.
//! ECMP hashes flows blindly and strands half of them on the slow path.
//!
//! ```sh
//! cargo run --example hula_loadbalancer
//! ```

use edp_apps::hula::testbed::{drive, ecmp_leaf, event_leaf, fabric};
use edp_apps::hula::HulaLeaf;
use edp_core::EventSwitch;
use edp_evsim::jain_fairness;

fn mbps(x: f64) -> f64 {
    x / 1e6
}

fn main() {
    const FLOWS: u16 = 8;
    println!("=== HULA (event-driven probes) vs ECMP (baseline) ===");
    println!("fabric: 2 leaves x 2 spines; spine0->leaf1 link is 100 Mb/s, all others 1 Gb/s");
    println!("workload: {FLOWS} flows h0->h1, ~400 Mb/s aggregate, 50 ms\n");

    let (mut net, h0, h1) = fabric(&ecmp_leaf);
    let ecmp = drive(&mut net, h0, h1, FLOWS);

    let (mut net, h0, h1) = fabric(&event_leaf);
    let hula = drive(&mut net, h0, h1, FLOWS);
    let leaf0 = &net.switch_as::<EventSwitch<HulaLeaf>>(0).program;

    println!("{:>6} {:>14} {:>14}", "flow", "ECMP (Mb/s)", "HULA (Mb/s)");
    for f in 0..FLOWS as usize {
        println!("{:>6} {:>14.1} {:>14.1}", f, mbps(ecmp[f]), mbps(hula[f]));
    }
    let ecmp_total: f64 = ecmp.iter().sum();
    let hula_total: f64 = hula.iter().sum();
    println!(
        "{:>6} {:>14.1} {:>14.1}",
        "total",
        mbps(ecmp_total),
        mbps(hula_total)
    );
    println!(
        "{:>6} {:>14.3} {:>14.3}",
        "jain",
        jain_fairness(&ecmp),
        jain_fairness(&hula)
    );
    println!();
    println!("HULA probes sent (leaf0)   : {}", leaf0.probes_sent);
    println!("HULA path switches (leaf0) : {}", leaf0.path_switches);
    println!(
        "leaf0 best uplink to ToR1  : port {} (2 = fast spine)",
        leaf0.best[1].port
    );
    println!(
        "\nspeedup: {:.2}x aggregate goodput, zero control-plane or host involvement",
        hula_total / ecmp_total
    );
}
