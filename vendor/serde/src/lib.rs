//! Offline stand-in for `serde`.
//!
//! Provides the two marker traits and re-exports the (empty) derive macros
//! so `use serde::{Serialize, Deserialize}` and `#[derive(Serialize,
//! Deserialize)]` compile unchanged. No runtime serialization exists in
//! this workspace; if a future PR needs real serde it can re-introduce the
//! registry dependency behind a feature gate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait DeserializeMarker {}
