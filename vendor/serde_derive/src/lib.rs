//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on public config and
//! counter types as a forward-looking schema annotation, but no code path
//! actually serializes anything. These derives therefore expand to empty
//! token streams: the attribute parses, compiles, and costs nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
