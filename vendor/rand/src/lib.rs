//! Offline stand-in for `rand` 0.8, covering exactly the API surface the
//! workspace uses (`SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`).
//!
//! `SmallRng` is xoshiro256++ (the same family the real crate uses on
//! 64-bit targets), seeded through SplitMix64. The exact stream differs
//! from upstream rand, which is fine: the workspace's determinism
//! guarantees are *seed-to-seed reproducibility within this codebase*,
//! never bit-compatibility with another library's stream.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding mirror of `rand::SeedableRng` (only the u64 entry point).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (mirror of the `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches the real
    /// crate's `Standard` for f64).
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing mirror of `rand::Rng`.
pub trait Rng: RngCore + Sized {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for simulation workloads.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the xoshiro
            // authors (and used by rand_core for u64 seeding).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
