//! Offline stand-in for `proptest` 1.x.
//!
//! Implements the subset of the proptest API that this workspace's
//! property tests use, on top of a deterministic per-test RNG. Differences
//! from the real crate, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its inputs via the panic
//!   message (the macros embed the values) but is not minimized.
//! - **Deterministic seeding.** Each test's case stream is derived from
//!   the test's module path + name (plus `PROPTEST_SEED` if set), so runs
//!   are reproducible by construction — which the workspace's determinism
//!   story prefers over fresh OS entropy.
//! - **Case count** defaults to 64 (override with `PROPTEST_CASES` or
//!   `ProptestConfig::with_cases`), keeping `cargo test` fast on CI boxes.

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (only `cases` matters).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Config { cases }
        }
    }

    /// Marker returned by `prop_assume!` when a case is rejected.
    #[derive(Debug)]
    pub struct Rejected;

    /// Deterministic xoshiro256++ stream, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name, mixed with an optional
            // PROPTEST_SEED for users who want a different stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                if let Ok(s) = seed.parse::<u64>() {
                    h ^= s.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                }
            }
            let mut x = h;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Mirror of `proptest::strategy::Strategy`: a recipe for generating
    /// values. The stub samples directly instead of building value trees
    /// (no shrinking).
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe boxed strategy (mirror of `BoxedStrategy`).
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.0.sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternatives (built by `prop_oneof!`).
    pub struct OneOf<V> {
        pub alternatives: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!alternatives.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { alternatives }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.alternatives.len() as u64) as usize;
            self.alternatives[i].sample(rng)
        }
    }

    /// `any::<T>()` strategy over an [`Arbitrary`](super::arbitrary::Arbitrary) type.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: super::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = ((hi as u128) - (lo as u128) + 1) as u64;
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Mirror of `proptest::arbitrary::Arbitrary` (sampling form).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Mirror of `proptest::collection::SizeRange`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::test_runner::TestRng;

    /// Mirror of `proptest::sample::Index`: a deferred index that resolves
    /// uniformly against a collection length supplied later.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Mirror of the `prop` module re-export inside proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { cfg = (<$crate::test_runner::Config as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( cfg = ($cfg:expr); ) => {};
    ( cfg = ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                let _ = __case;
                $crate::__proptest_bind!((&mut __rng); $($params)*);
                // The closure gives `prop_assume!` an early exit that skips
                // just this case; assertion failures panic as usual.
                let __outcome: ::core::result::Result<(), $crate::test_runner::Rejected> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                let _ = __outcome;
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( ($rng:expr); ) => {};
    ( ($rng:expr); $arg:ident in $strat:expr ) => {
        let $arg = $crate::strategy::Strategy::sample(&($strat), $rng);
    };
    ( ($rng:expr); $arg:ident in $strat:expr, $($rest:tt)* ) => {
        let $arg = $crate::strategy::Strategy::sample(&($strat), $rng);
        $crate::__proptest_bind!(($rng); $($rest)*);
    };
    ( ($rng:expr); $arg:ident : $ty:ty ) => {
        let $arg: $ty = $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), $rng);
    };
    ( ($rng:expr); $arg:ident : $ty:ty, $($rest:tt)* ) => {
        let $arg: $ty = $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind!(($rng); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 3u64..10, v in prop::collection::vec(any::<u8>(), 2..5), b: bool) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
            let _ = b;
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), (2u8..4).prop_map(|x| x)]) {
            prop_assert!(v == 1 || v == 2 || v == 3);
        }
    }
}
