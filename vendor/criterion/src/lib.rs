//! Offline stand-in for `criterion` 0.5.
//!
//! Keeps the authoring API (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box`,
//! `Throughput`) so the workspace's benches compile and run unchanged,
//! while the measurement core is a simple calibrated wall-clock loop:
//! calibrate the iteration count to ~`target_time_ms` per batch, run a few
//! batches, report the median ns/iter plus derived throughput. No
//! statistics beyond that, no HTML reports, no comparison to saved
//! baselines — `bench_snapshot` (crates/bench) is the trend-tracking tool
//! in this workspace.

use std::time::Instant;

pub use std::hint::black_box;

/// Throughput annotation; turns ns/iter into elems/s or bytes/s output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            _c: self,
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            ns_per_iter: Vec::new(),
        };
        f(&mut b);
        let med = b.median_ns();
        let extra = match (self.throughput, med) {
            (Some(Throughput::Bytes(n)), m) if m > 0.0 => {
                format!("  ({:.1} MiB/s)", n as f64 / m * 1e9 / (1024.0 * 1024.0))
            }
            (Some(Throughput::Elements(n)), m) if m > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / m * 1e9)
            }
            _ => String::new(),
        };
        println!("  {id:<32} {med:>12.1} ns/iter{extra}");
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    ns_per_iter: Vec<f64>,
}

/// Per-batch time budget; raise via `CRITERION_TARGET_MS` for stabler
/// numbers, lower it for smoke runs.
fn target_ms() -> u64 {
    std::env::var("CRITERION_TARGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120)
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the iteration count until one batch takes long
        // enough to time reliably.
        let target = std::time::Duration::from_millis(target_ms());
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= target / 4 || iters >= 1 << 40 {
                break;
            }
            // Aim directly for the target with a safety factor.
            let scale = (target.as_secs_f64() / dt.as_secs_f64().max(1e-9)).min(1000.0);
            iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
        }
        // Measure: a few batches, keep per-iter times for the median.
        for _ in 0..5 {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.ns_per_iter
                .push(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }

    fn median_ns(&self) -> f64 {
        if self.ns_per_iter.is_empty() {
            return 0.0;
        }
        let mut v = self.ns_per_iter.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        v[v.len() / 2]
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
