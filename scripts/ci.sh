#!/usr/bin/env bash
# Offline-friendly CI gate: everything a PR must pass, with no network.
#
#   scripts/ci.sh           # fmt, build, test, edp_lint, clippy, smoke-bench + regression gate
#   scripts/ci.sh --quick   # fmt, build, test, edp_lint only
#
# The workspace vendors all third-party crates (see vendor/), so the
# whole gate runs with the cargo registry unreachable.
#
# The bench-regression gate compares the smoke snapshot against the
# committed baseline (BENCH_1.json by default; override with
# EDP_BENCH_BASELINE) and fails on a >25% throughput drop in the gated
# event-queue / LPM metrics (override with EDP_BENCH_MAX_REGRESS).

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

baseline="${EDP_BENCH_BASELINE:-BENCH_1.json}"
max_regress="${EDP_BENCH_MAX_REGRESS:-0.25}"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --offline --release -q

echo "==> cargo test"
cargo test --offline -q

echo "==> edp_lint --deny warnings (static hazard/lint gate)"
# Static analysis over every registered app: shared-state hazards, merge
# op algebra, table rule reachability, event coverage. Stable codes are
# documented in DESIGN.md §9; intentional findings are allowed
# per-(code, subject) in the app's manifest, never blanket-suppressed.
cargo run --offline --release -q -p edp-analyze --bin edp_lint -- --deny warnings

echo "==> edp_top --json smoke (telemetry layer end-to-end)"
# Drives two registered apps under a full telemetry session and checks
# the JSON report is non-degenerate: the switch saw traffic and the
# trace ring recorded it. Grep keeps this dependency-free.
for app in microburst ndp-trim; do
    out="$(cargo run --offline --release -q -p edp-bench --bin edp_top -- \
        "$app" --seeds 2 --duration-ms 2 --json)"
    echo "$out" | grep -q "\"app\":\"$app\"" || {
        echo "edp_top --json: missing app field for $app" >&2
        exit 1
    }
    echo "$out" | grep -q '"name":"events_ingress","scope":"sw0","value":[1-9]' || {
        echo "edp_top --json: no ingress events recorded for $app" >&2
        exit 1
    }
    echo "$out" | grep -q '"trace_records":[1-9]' || {
        echo "edp_top --json: empty trace ring for $app" >&2
        exit 1
    }
done

if [[ $quick -eq 0 ]]; then
    echo "==> cargo test (EDP_SHARDS=4: tier-1 through the sharded engine)"
    # Everything that consults EDP_SHARDS (edp_top's TopOptions default
    # and the determinism suites) reruns on the 4-shard parallel engine;
    # byte-identity with the classic path is asserted by the tests
    # themselves (top_determinism, integration_shards).
    EDP_SHARDS=4 cargo test --offline -q

    echo "==> cargo test (EDP_BURST=32: tier-1 on the burst fast path)"
    # Everything that consults EDP_BURST (TopOptions' default and the
    # sharded engine's sub-window count) reruns with 32-deep bursts;
    # byte-identity with the per-packet path is asserted by the tests
    # themselves (top_determinism, integration_shards).
    EDP_BURST=32 cargo test --offline -q

    echo "==> cargo clippy (-D warnings)"
    cargo clippy --offline --all-targets -q -- -D warnings

    echo "==> bench_snapshot --smoke (regression gate vs ${baseline})"
    # Telemetry is compiled in but *disabled* here (no session enabled),
    # so this same gate proves the instrumented hot paths cost at most
    # the disabled-path branch: a >${max_regress} throughput drop fails.
    # Smoke scale: verifies the perf harness end-to-end in seconds and
    # fails (exit 1) if a gated metric regressed more than the limit.
    # Writes nothing into the repo; full snapshots are taken manually
    # with `cargo run --release --bin bench_snapshot`.
    cargo run --offline --release -q --bin bench_snapshot -- \
        --smoke --out /tmp/edp_ci_smoke.json \
        --baseline "${baseline}" --max-regress "${max_regress}"
fi

echo "==> CI gate passed"
