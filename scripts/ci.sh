#!/usr/bin/env bash
# Offline-friendly CI gate: everything a PR must pass, with no network.
#
#   scripts/ci.sh           # build, test, lint, smoke-bench
#   scripts/ci.sh --quick   # skip clippy and the smoke bench
#
# The workspace vendors all third-party crates (see vendor/), so the
# whole gate runs with the cargo registry unreachable.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo build --release"
cargo build --offline --release -q

echo "==> cargo test"
cargo test --offline -q

if [[ $quick -eq 0 ]]; then
    echo "==> cargo clippy (-D warnings)"
    cargo clippy --offline --all-targets -q -- -D warnings

    echo "==> bench_snapshot --smoke"
    # Smoke scale: verifies the perf harness end-to-end in seconds.
    # Writes nothing into the repo; full snapshots are taken manually
    # with `cargo run --release --bin bench_snapshot`.
    cargo run --offline --release -q --bin bench_snapshot -- --smoke --out /tmp/edp_ci_smoke.json
fi

echo "==> CI gate passed"
