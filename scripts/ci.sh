#!/usr/bin/env bash
# Offline-friendly CI gate: everything a PR must pass, with no network.
#
#   scripts/ci.sh               # full local gate (everything below)
#   scripts/ci.sh --quick       # fmt, build, test, edp_lint, telemetry smoke
#   scripts/ci.sh --matrix-leg  # build + tier-1 tests under the ambient
#                               # EDP_SHARDS / EDP_BURST / EDP_HORIZON
#                               # (one CI matrix leg)
#   scripts/ci.sh --gate        # fmt, clippy, edp_lint (+ SARIF artifact),
#                               # profiled-run smoke (+ trace artifact),
#                               # EDP_HORIZON=effects elision smoke,
#                               # pcap fixture round-trip, replay smoke,
#                               # bench gate
#
# The CI pipeline fans the engine matrix {EDP_SHARDS=1,4} x {EDP_BURST=1,32}
# plus an EDP_HORIZON=effects leg (shards=4, burst=32) across
# `--matrix-leg` jobs and runs `--gate` once beside them; the default
# (no-flag) mode runs the union locally, emulating the matrix with
# in-process EDP_SHARDS=4 / EDP_BURST=32 / EDP_HORIZON=effects re-runs.
#
# The workspace vendors all third-party crates (see vendor/), so the
# whole gate runs with the cargo registry unreachable.
#
# The bench-regression gate compares the smoke snapshot against the
# committed baseline (BENCH_1.json by default; override with
# EDP_BENCH_BASELINE) and fails on a >25% throughput drop in the gated
# metrics (override with EDP_BENCH_MAX_REGRESS).

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

mode=full
case "${1:-}" in
"") mode=full ;;
--quick) mode=quick ;;
--matrix-leg) mode=matrix-leg ;;
--gate) mode=gate ;;
*)
    echo "usage: scripts/ci.sh [--quick | --matrix-leg | --gate]" >&2
    exit 2
    ;;
esac

baseline="${EDP_BENCH_BASELINE:-BENCH_1.json}"
max_regress="${EDP_BENCH_MAX_REGRESS:-0.25}"

step_fmt() {
    echo "==> cargo fmt --check"
    cargo fmt --check
}

step_build() {
    echo "==> cargo build --release"
    cargo build --offline --release -q
}

step_test() {
    echo "==> cargo test (EDP_SHARDS=${EDP_SHARDS:-unset} EDP_BURST=${EDP_BURST:-unset} EDP_HORIZON=${EDP_HORIZON:-unset})"
    cargo test --offline -q
}

step_lint() {
    echo "==> edp_lint --deny warnings (static hazard/lint gate)"
    # Static analysis over every registered app: shared-state hazards,
    # merge op algebra, table rule reachability, event coverage, and the
    # effect-summary cross-check (EDP-W008/EDP-E007). Stable codes are
    # documented in DESIGN.md §9; intentional findings are allowed
    # per-(code, subject) in the app's manifest, never
    # blanket-suppressed.
    cargo run --offline --release -q -p edp-analyze --bin edp_lint -- --deny warnings
}

step_lint_sarif() {
    echo "==> edp_lint --sarif (code-scanning artifact)"
    # The same catalog rendered as SARIF 2.1.0 for code-scanning UIs;
    # the gate job uploads target/edp_lint.sarif as a build artifact.
    # python3 validates it parses — SARIF consumers are strict.
    mkdir -p target
    cargo run --offline --release -q -p edp-analyze --bin edp_lint -- --sarif \
        >target/edp_lint.sarif
    if command -v python3 >/dev/null 2>&1; then
        python3 -c 'import json,sys; json.load(open(sys.argv[1]))' target/edp_lint.sarif
    fi
}

step_top_smoke() {
    echo "==> edp_top --json smoke (telemetry layer end-to-end)"
    # Drives two registered apps under a full telemetry session and
    # checks the JSON report is non-degenerate: the switch saw traffic
    # and the trace ring recorded it. Grep keeps this dependency-free.
    local app out
    for app in microburst ndp-trim; do
        out="$(cargo run --offline --release -q -p edp-bench --bin edp_top -- \
            "$app" --seeds 2 --duration-ms 2 --json)"
        echo "$out" | grep -q "\"app\":\"$app\"" || {
            echo "edp_top --json: missing app field for $app" >&2
            exit 1
        }
        echo "$out" | grep -q '"name":"events_ingress","scope":"sw0","value":[1-9]' || {
            echo "edp_top --json: no ingress events recorded for $app" >&2
            exit 1
        }
        echo "$out" | grep -q '"trace_records":[1-9]' || {
            echo "edp_top --json: empty trace ring for $app" >&2
            exit 1
        }
    done
}

step_pcap() {
    echo "==> pcap fixtures (deterministic regeneration check)"
    # The committed fixtures are pure functions of their seeds: pcap_gen
    # regenerates both in memory and fails on any byte difference with
    # what is on disk.
    cargo run --offline --release -q -p edp-bench --bin pcap_gen -- --check tests/fixtures

    echo "==> pcap codec round-trip (byte-identical re-encode)"
    # parse -> write -> parse must be a fixpoint, and canonical inputs
    # (which the fixtures are) must survive byte-for-byte.
    local f
    for f in tests/fixtures/*.pcap; do
        cargo run --offline --release -q -p edp-bench --bin edp_top -- --pcap-roundtrip "$f"
    done

    echo "==> edp_top --pcap smoke (capture replay + per-protocol telemetry)"
    # Replays the mixed-protocol fixture through a registered app and
    # checks the per-protocol counters saw every traffic class the
    # fixture carries (ARP proves the non-IPv4 path is alive).
    local out
    out="$(cargo run --offline --release -q -p edp-bench --bin edp_top -- \
        microburst --pcap tests/fixtures/mixed_protocols.pcap \
        --seeds 1 --duration-ms 2 --json)"
    local scope
    for scope in "eth:arp" "ip:udp" "port:kv" "port:rpc"; do
        echo "$out" | grep -q "\"name\":\"proto_pkts\",\"scope\":\"$scope\",\"value\":[1-9]" || {
            echo "edp_top --pcap: no proto_pkts for $scope" >&2
            exit 1
        }
    done
}

step_profile_smoke() {
    echo "==> edp_top --profile smoke (wall-clock profiler + trace export)"
    # Drives a 2-shard profiled run, checks the human table attributes
    # the run, and validates the Chrome trace-event export is well
    # formed (required keys, nonnegative durations, monotone ts per
    # (pid, tid) track). The gate job uploads the trace as an artifact.
    mkdir -p target
    local out
    out="$(cargo run --offline --release -q -p edp-bench --bin edp_top -- \
        microburst --shards 2 --seeds 1 --duration-ms 2 \
        --profile --profile-out target/edp_profile_trace.json)"
    echo "$out" | grep -q "wall-clock profile" || {
        echo "edp_top --profile: no profile table" >&2
        exit 1
    }
    echo "$out" | grep -q "attributed" || {
        echo "edp_top --profile: no attribution line" >&2
        exit 1
    }
    if command -v python3 >/dev/null 2>&1; then
        python3 - target/edp_profile_trace.json <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "empty traceEvents"
last = {}
for e in events:
    for key in ("name", "ph", "ts", "pid", "tid"):
        assert key in e, f"event missing {key}: {e}"
    if e["ph"] == "X":
        assert e["dur"] >= 0, f"negative duration: {e}"
        track = (e["pid"], e["tid"])
        assert e["ts"] >= last.get(track, -1.0), f"ts regressed on {track}: {e}"
        last[track] = e["ts"]
assert last, "no complete (ph=X) span events"
print(f"profile trace ok: {len(events)} events, {len(last)} span track(s)")
PYEOF
    else
        grep -q '"traceEvents"' target/edp_profile_trace.json || {
            echo "edp_top --profile-out: not trace-event JSON" >&2
            exit 1
        }
    fi
}

step_engine_matrix_local() {
    echo "==> cargo test (EDP_SHARDS=4: tier-1 through the sharded engine)"
    # Everything that consults EDP_SHARDS (edp_top's TopOptions default
    # and the determinism suites) reruns on the 4-shard parallel engine;
    # byte-identity with the classic path is asserted by the tests
    # themselves (top_determinism, integration_shards).
    EDP_SHARDS=4 cargo test --offline -q

    echo "==> cargo test (EDP_BURST=32: tier-1 on the burst fast path)"
    # Everything that consults EDP_BURST (TopOptions' default and the
    # sharded engine's sub-window count) reruns with 32-deep bursts;
    # byte-identity with the per-packet path is asserted by the tests
    # themselves (top_determinism, integration_shards).
    EDP_BURST=32 cargo test --offline -q

    echo "==> cargo test (EDP_HORIZON=effects: certificate-aware horizon)"
    # The sharded engine loads per-app effect summaries and extends
    # safe_horizon past certified-local event runs; the determinism
    # suites assert the merged schedule stays byte-identical to classic.
    EDP_HORIZON=effects EDP_SHARDS=4 EDP_BURST=32 cargo test --offline -q
}

step_elision_smoke() {
    echo "==> EDP_HORIZON=effects elision smoke (barrier elision end-to-end)"
    # Runs the barrier-elision suites (traffic-free gaps must cut
    # DriveStats.barriers >=10x with a byte-identical merged schedule;
    # the frontier session must stay rendezvous-free) and then drives a
    # registered app through the 2-shard engine under the effects
    # horizon, checking the JSON report is non-degenerate.
    EDP_HORIZON=effects cargo test --offline --release -q -p edp-netsim barriers
    local out
    out="$(EDP_HORIZON=effects cargo run --offline --release -q -p edp-bench --bin edp_top -- \
        microburst --shards 2 --seeds 1 --duration-ms 2 --json)"
    echo "$out" | grep -q '"app":"microburst"' || {
        echo "effects elision smoke: degenerate edp_top output under EDP_HORIZON=effects" >&2
        exit 1
    }
}

step_clippy() {
    echo "==> cargo clippy (-D warnings)"
    cargo clippy --offline --all-targets -q -- -D warnings
}

step_bench_gate() {
    echo "==> bench_snapshot --smoke (regression gate vs ${baseline})"
    # Telemetry is compiled in but *disabled* here (no session enabled),
    # so this same gate proves the instrumented hot paths cost at most
    # the disabled-path branch: a >${max_regress} throughput drop fails.
    # Smoke scale: verifies the perf harness end-to-end in seconds and
    # fails (exit 1) if a gated metric regressed more than the limit.
    # Writes nothing into the repo; full snapshots are taken manually
    # with `cargo run --release --bin bench_snapshot`.
    cargo run --offline --release -q --bin bench_snapshot -- \
        --smoke --out /tmp/edp_ci_smoke.json \
        --baseline "${baseline}" --max-regress "${max_regress}"
}

case "$mode" in
quick)
    step_fmt
    step_build
    step_test
    step_lint
    step_top_smoke
    ;;
matrix-leg)
    # One leg of the CI engine matrix: the workflow exports EDP_SHARDS
    # and EDP_BURST before calling this, so the whole tier-1 suite runs
    # natively on that engine configuration.
    step_build
    step_test
    ;;
gate)
    # The non-matrixed CI leg: style, static analysis, fixtures, smoke
    # drives and the perf regression gate — everything that only needs
    # to run once per pipeline.
    step_fmt
    step_build
    step_clippy
    step_lint
    step_lint_sarif
    step_top_smoke
    step_profile_smoke
    step_elision_smoke
    step_pcap
    step_bench_gate
    ;;
full)
    step_fmt
    step_build
    step_test
    step_lint
    step_top_smoke
    step_profile_smoke
    step_elision_smoke
    step_pcap
    step_engine_matrix_local
    step_clippy
    step_bench_gate
    ;;
esac

echo "==> CI gate passed (mode: ${mode})"
